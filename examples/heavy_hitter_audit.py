"""Heavy-hitter audit: can an attacker buy a spot in the top-10?

Targeted poisoning's business case is promotion: push an unpopular item
into the server's "popular items" list (the paper quotes app-store-style
abuse).  This example measures exactly that on the Fire-like workload:

1. the attacker picks the five *least* popular unit IDs and runs MGA;
2. we count how many planted items enter the estimated top-10, and the
   top-10 precision against the true heavy hitters;
3. LDPRecover* evicts the planted items and restores the list;
4. the closed-form gain model sizes the attack: how many fake users the
   attacker needed for the observed promotion.

Run with::

    python examples/heavy_hitter_audit.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.gain import mga_expected_gain_oue, users_needed_for_gain
from repro.core.heavyhitters import heavy_hitter_report, top_k_items

K = 10


def main() -> None:
    # OUE at epsilon=1 on the census workload: the clean estimate can
    # resolve a top-10 (per-item noise ~0.004 against head frequencies of
    # 0.02-0.21), which is the regime where heavy-hitter promotion is a
    # meaningful threat.
    data = repro.ipums_like(num_users=150_000)
    protocol = repro.OUE(epsilon=1.0, domain_size=data.domain_size)

    tail = np.argsort(data.frequencies)[:5]
    attack = repro.MGAAttack(domain_size=data.domain_size, targets=tail)
    print(f"attacker promotes the 5 least popular cities: {tail.tolist()}")

    trial = repro.run_trial(data, protocol, attack, beta=0.05, rng=2)
    recovery = repro.recover_frequencies(
        trial.poisoned_frequencies, protocol, target_items=tail
    )
    report = heavy_hitter_report(
        trial.true_frequencies,
        trial.poisoned_frequencies,
        recovery.frequencies,
        k=K,
    )

    true_top = top_k_items(trial.true_frequencies, K)
    poisoned_top = top_k_items(trial.poisoned_frequencies, K)
    print(f"\ntrue top-{K}      : {true_top.tolist()}")
    print(f"poisoned top-{K}  : {poisoned_top.tolist()}")
    print(f"planted items in poisoned top-{K} : {report.planted_poisoned}")
    print(f"planted items after LDPRecover*   : {report.planted_recovered}")
    print(f"top-{K} precision  : {report.precision_poisoned:.2f} -> "
          f"{report.precision_recovered:.2f} after recovery")

    # Closed-form sizing: what did this promotion cost the attacker?
    # (MGA-OUE crafted vectors support every target, so the per-target
    # support probability is 1.)
    predicted = mga_expected_gain_oue(
        data.frequencies[tail], protocol.params, beta=trial.beta
    )
    needed = users_needed_for_gain(
        desired_gain=predicted,
        target_freqs=data.frequencies[tail],
        params=protocol.params,
        support_probs=np.ones(tail.size),
        num_genuine=data.num_users,
    )
    print(f"\nexpected total gain at beta={trial.beta:.2f}: {predicted:+.3f}")
    print(f"fake users the model says that requires : {needed} "
          f"(actual injected: {trial.m})")


if __name__ == "__main__":
    main()
