"""Quickstart: poison an LDP frequency estimate, then recover it.

Runs the paper's headline scenario end to end on the IPUMS-like workload:
a server collects city frequencies under GRR, an attacker injects 5%
malicious users running MGA to promote 10 items, and LDPRecover repairs
the aggregate without knowing anything about the attack.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. The genuine population: 102 cities, ~50k users (scaled surrogate).
    data = repro.ipums_like(num_users=50_000)
    print(f"dataset: {data.name} (d={data.domain_size}, n={data.num_users})")

    # 2. The collection protocol: GRR at the paper's default epsilon.
    protocol = repro.GRR(epsilon=0.5, domain_size=data.domain_size)

    # 3. The attack: MGA promoting 10 random target items, 5% malicious.
    attack = repro.MGAAttack(domain_size=data.domain_size, r=10, rng=1)
    trial = repro.run_trial(data, protocol, attack, beta=0.05, rng=2)
    print(f"injected m={trial.m} malicious users (beta={trial.beta:.3f})")

    # 4. Recovery — the server knows only the protocol parameters.
    result = repro.recover_frequencies(trial.poisoned_frequencies, protocol)

    # 5. With partial knowledge of the target items, LDPRecover* does better.
    star = repro.recover_frequencies(
        trial.poisoned_frequencies, protocol, target_items=attack.target_items
    )

    truth = trial.true_frequencies
    print(f"MSE before recovery   : {repro.mse(truth, trial.poisoned_frequencies):.3e}")
    print(f"MSE after LDPRecover  : {repro.mse(truth, result.frequencies):.3e}")
    print(f"MSE after LDPRecover* : {repro.mse(truth, star.frequencies):.3e}")

    gain = repro.frequency_gain(
        trial.genuine_frequencies, trial.poisoned_frequencies, attack.target_items
    )
    gain_rec = repro.frequency_gain(
        trial.genuine_frequencies, result.frequencies, attack.target_items
    )
    gain_star = repro.frequency_gain(
        trial.genuine_frequencies, star.frequencies, attack.target_items
    )
    print(f"target frequency gain : {gain:+.3f} (poisoned) -> "
          f"{gain_rec:+.3f} (LDPRecover) / {gain_star:+.3f} (LDPRecover*)")


if __name__ == "__main__":
    main()
