"""Detecting and neutralizing a targeted promotion attack with history.

Scenario (the paper's Section V-D partial-knowledge loop): the server has
collected the Fire-style "unit ID" frequencies for several past epochs.
An attacker then launches MGA to promote a handful of unit IDs.  The
server (1) flags the promoted items as statistical outliers against the
historical epochs, and (2) feeds the flagged items into LDPRecover* as
attack knowledge — the full detection-to-recovery pipeline.

Run with::

    python examples/targeted_promotion_defense.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.sim.outliers import ZScoreOutlierDetector


def main() -> None:
    data = repro.fire_like(num_users=60_000)
    protocol = repro.OUE(epsilon=0.5, domain_size=data.domain_size)

    # --- Phase 1: honest history ------------------------------------
    print("collecting 12 historical epochs (no attack)...")
    history = np.array(
        [
            repro.run_trial(data, protocol, None, rng=seed).genuine_frequencies
            for seed in range(12)
        ]
    )
    detector = ZScoreOutlierDetector(threshold=4.0).fit(history)

    # --- Phase 2: the attack epoch -----------------------------------
    attack = repro.MGAAttack(domain_size=data.domain_size, r=10, rng=3)
    trial = repro.run_trial(data, protocol, attack, beta=0.05, rng=99)
    print(f"attack epoch: m={trial.m} malicious users promoting "
          f"{attack.r} unit IDs {attack.target_items.tolist()}")

    # --- Phase 3: outlier-driven target identification ---------------
    detected = detector.detect(trial.poisoned_frequencies)
    true_set = set(attack.target_items.tolist())
    found = sorted(true_set & set(detected.tolist()))
    print(f"outlier detector flagged {detected.size} items; "
          f"{len(found)}/{attack.r} true targets among them")

    # --- Phase 4: recovery -------------------------------------------
    plain = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
    star = repro.recover_frequencies(
        trial.poisoned_frequencies, protocol, target_items=detected
    )

    truth = trial.true_frequencies
    genuine = trial.genuine_frequencies
    print(f"\nMSE poisoned          : {repro.mse(truth, trial.poisoned_frequencies):.3e}")
    print(f"MSE LDPRecover        : {repro.mse(truth, plain.frequencies):.3e}")
    print(f"MSE LDPRecover* (det.): {repro.mse(truth, star.frequencies):.3e}")

    fg = repro.frequency_gain(genuine, trial.poisoned_frequencies, attack.target_items)
    fg_plain = repro.frequency_gain(genuine, plain.frequencies, attack.target_items)
    fg_star = repro.frequency_gain(genuine, star.frequencies, attack.target_items)
    print(f"\npromotion gain        : {fg:+.3f}")
    print(f"after LDPRecover      : {fg_plain:+.3f}")
    print(f"after LDPRecover*     : {fg_star:+.3f}  (detector-supplied targets)")


if __name__ == "__main__":
    main()
