"""Recovering a poisoned LDP *mean* estimate (paper Section VII-A).

Harmony estimates the mean of bounded numeric values by discretizing each
value to a bit and running binary randomized response — i.e. a two-bucket
frequency estimation.  Because LDPRecover operates on frequencies, it
transfers unchanged: recover the bit frequencies, then map back to a mean.

Scenario: smart-device users report battery-health scores in [-1, 1]; an
attacker injects users all claiming +1 to inflate the fleet average.  We
show two recovery levels:

1. plain LDPRecover (no attack knowledge) — trims part of the inflation;
2. the recovery-paradigm hook with the attack's malicious frequency
   vector (a mean-inflation attacker *must* send the +1 bit, so the
   server can write down f_Y exactly) — restores the honest estimate.

One caveat the binary domain makes visible: with only two buckets the
projection cannot absorb an over-estimated eta, so the hook uses an eta
matched to the suspected malicious fraction rather than the 0.2 default.

Run with::

    python examples/mean_estimation.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(0)
    n = 200_000
    # Skewed fleet: most devices are mildly degraded.
    values = np.clip(rng.normal(-0.2, 0.35, size=n), -1.0, 1.0)
    true_mean = float(values.mean())

    harmony = repro.Harmony(epsilon=1.0)
    genuine_reports = harmony.perturb(values, rng)

    beta = 0.05
    m = int(beta * n / (1 - beta))
    poison = harmony.craft_poison_reports(m, bit=1)  # everyone claims +1
    combined = np.concatenate([genuine_reports, poison])

    honest_mean = harmony.estimate_mean(genuine_reports)
    poisoned_mean = harmony.estimate_mean(combined)
    poisoned_freq = harmony.aggregate_frequencies(combined)
    params = harmony.params

    # Level 1: non-knowledge LDPRecover.
    plain = repro.recover_frequencies(poisoned_freq, params, eta=0.2)
    plain_mean = harmony.mean_from_frequencies(plain.frequencies)

    # Level 2: the paradigm hook.  A +1-inflation attacker's report always
    # supports bucket 1, so its aggregated malicious frequencies are known
    # in closed form: f_Y = [(0 - q), (1 - q)] / (p - q).
    p, q = params.p, params.q
    known_fy = np.array([(0.0 - q) / (p - q), (1.0 - q) / (p - q)])
    suspected_eta = beta / (1 - beta)  # the server's malicious-share guess
    informed = repro.recover_frequencies(
        poisoned_freq, params, eta=suspected_eta, malicious_estimate=known_fy
    )
    informed_mean = harmony.mean_from_frequencies(informed.frequencies)

    print(f"population            : n={n}, malicious m={m} (beta={beta})")
    print(f"true mean             : {true_mean:+.4f}")
    print(f"honest LDP estimate   : {honest_mean:+.4f}")
    print(f"poisoned estimate     : {poisoned_mean:+.4f} "
          f"(bias {poisoned_mean - true_mean:+.4f})")
    print(f"LDPRecover (blind)    : {plain_mean:+.4f} "
          f"(bias {plain_mean - true_mean:+.4f})")
    print(f"LDPRecover (informed) : {informed_mean:+.4f} "
          f"(bias {informed_mean - true_mean:+.4f})")

    assert abs(plain_mean - true_mean) < abs(poisoned_mean - true_mean)
    assert abs(informed_mean - true_mean) < abs(plain_mean - true_mean)
    print("\ninformed recovery restores the honest estimate almost exactly.")


if __name__ == "__main__":
    main()
