"""Census-style audit: which protocol should a poisoning-aware server run?

The paper's motivating deployment (Google/Apple-style telemetry) must pick
an LDP protocol *and* survive poisoning.  This example audits all three
protocols on the IPUMS-like census workload under the three attacks
(Manip, MGA, AA), reporting poisoned vs recovered MSE per cell — a local
reproduction of Figure 3 that a practitioner can rerun on their own
parameters.

Run with::

    python examples/census_city_audit.py [--users 40000] [--trials 3]
"""

from __future__ import annotations

import argparse

import repro
from repro.sim import evaluate_recovery, format_table


def build_attack(kind: str, domain_size: int, seed: int):
    if kind == "manip":
        return repro.ManipAttack(domain_size=domain_size, rng=seed)
    if kind == "mga":
        return repro.MGAAttack(domain_size=domain_size, r=10, rng=seed)
    return repro.AdaptiveAttack(domain_size=domain_size, rng=seed)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=40_000)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--beta", type=float, default=0.05)
    args = parser.parse_args()

    data = repro.ipums_like(num_users=args.users)
    rows = []
    for protocol_name in ("grr", "oue", "olh"):
        protocol = repro.make_protocol(
            protocol_name, epsilon=args.epsilon, domain_size=data.domain_size
        )
        for attack_kind in ("manip", "mga", "aa"):
            attack = build_attack(attack_kind, data.domain_size, seed=7)
            evaluation = evaluate_recovery(
                data,
                protocol,
                attack,
                beta=args.beta,
                trials=args.trials,
                rng=11,
            )
            rows.append(
                {
                    "protocol": protocol_name,
                    "attack": attack_kind,
                    "mse_poisoned": evaluation.mse_before,
                    "mse_ldprecover": evaluation.mse_recover,
                    "mse_ldprecover_star": evaluation.mse_recover_star,
                    "improvement": evaluation.mse_before / evaluation.mse_recover,
                }
            )
    print(f"census audit: d={data.domain_size}, n={data.num_users}, "
          f"epsilon={args.epsilon}, beta={args.beta}")
    print(format_table(rows))

    best = max(rows, key=lambda r: r["improvement"])
    print(
        f"\nlargest recovery win: {best['protocol']} under {best['attack']} "
        f"({best['improvement']:.1f}x lower MSE after LDPRecover)"
    )


if __name__ == "__main__":
    main()
