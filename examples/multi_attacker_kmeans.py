"""Advanced defenses: multi-attacker poisoning and input-poisoning + k-means.

Two of the paper's Section VII extensions in one script:

1. **Multi-attacker** (§VII-C): five independent adaptive attackers each
   control a slice of the malicious users; LDPRecover treats them as one
   attacker sampling from the mixture distribution.
2. **Input poisoning + k-means** (§VII-B): when malicious users follow the
   protocol (IPA), the Eq. 21 learned sum no longer applies; the k-means
   subset defense supplies the malicious statistics instead
   (LDPRecover-KM).

Run with::

    python examples/multi_attacker_kmeans.py
"""

from __future__ import annotations

import numpy as np

import repro


def multi_attacker_demo() -> None:
    print("=== multi-attacker adaptive poisoning (Section VII-C) ===")
    data = repro.ipums_like(num_users=60_000)
    protocol = repro.GRR(epsilon=0.5, domain_size=data.domain_size)
    attackers = [
        repro.AdaptiveAttack(domain_size=data.domain_size, rng=i) for i in range(5)
    ]
    attack = repro.MultiAttacker(attackers)
    before, after = [], []
    for seed in range(5):
        trial = repro.run_trial(data, protocol, attack, beta=0.1, rng=seed)
        result = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
        before.append(repro.mse(trial.true_frequencies, trial.poisoned_frequencies))
        after.append(repro.mse(trial.true_frequencies, result.frequencies))
    improvement = 100 * (1 - np.mean(after) / np.mean(before))
    print(f"5 attackers, beta=0.10: MSE {np.mean(before):.3e} -> "
          f"{np.mean(after):.3e}  ({improvement:.1f}% improvement)\n")


def kmeans_ipa_demo() -> None:
    print("=== input poisoning + k-means integration (Section VII-B) ===")
    data = repro.ipums_like(num_users=20_000)
    protocol = repro.GRR(epsilon=0.5, domain_size=data.domain_size)
    mga = repro.MGAAttack(domain_size=data.domain_size, r=10, rng=0)
    attack = repro.InputPoisoningAttack(mga)  # crafted items go through LDP

    before, km_only, km_recover = [], [], []
    for seed in range(3):
        trial = repro.run_trial(
            data, protocol, attack, beta=0.05, mode="sampled", rng=seed
        )
        truth = trial.true_frequencies
        defense = repro.KMeansDefense(sample_rate=0.3, num_subsets=10)
        recovery, km_result = repro.recover_with_kmeans(
            protocol, trial.reports, defense=defense, rng=seed
        )
        before.append(repro.mse(truth, trial.poisoned_frequencies))
        km_only.append(repro.mse(truth, km_result.frequencies))
        km_recover.append(repro.mse(truth, recovery.frequencies))

    print(f"MSE before recovery : {np.mean(before):.3e}")
    print(f"MSE k-means alone   : {np.mean(km_only):.3e}")
    print(f"MSE LDPRecover-KM   : {np.mean(km_recover):.3e}")
    gain = 100 * (1 - np.mean(km_recover) / np.mean(km_only))
    print(f"LDPRecover-KM improves on the k-means defense by {gain:.1f}%")


if __name__ == "__main__":
    multi_attacker_demo()
    kmeans_ipa_demo()
