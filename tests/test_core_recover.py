"""End-to-end tests for LDPRecover / LDPRecover* (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AdaptiveAttack, ManipAttack, MGAAttack
from repro.core.projection import is_probability_vector
from repro.core.recover import DEFAULT_ETA, LDPRecover, recover_frequencies
from repro.datasets import zipf_dataset
from repro.exceptions import RecoveryError
from repro.protocols import GRR
from repro.sim import frequency_gain, mse, run_trial

D = 24
DATASET = zipf_dataset(domain_size=D, num_users=40_000, exponent=1.0, rng=3)


class TestRecoverBasics:
    def test_output_is_probability_vector(self, protocol):
        # protocol fixture has domain 16; build a matching poisoned vector.
        poisoned = np.random.default_rng(0).normal(1 / 16, 0.05, size=16)
        result = recover_frequencies(poisoned, protocol)
        assert is_probability_vector(result.frequencies, atol=1e-8)

    def test_accepts_params_object(self, grr):
        poisoned = np.full(grr.domain_size, 1 / grr.domain_size)
        result = recover_frequencies(poisoned, grr.params)
        assert is_probability_vector(result.frequencies, atol=1e-8)

    def test_rejects_wrong_shape(self, grr):
        with pytest.raises(RecoveryError):
            recover_frequencies(np.zeros(grr.domain_size + 1), grr)

    def test_rejects_wrong_protocol_type(self):
        with pytest.raises(RecoveryError):
            recover_frequencies(np.zeros(4), "grr")

    def test_result_carries_intermediates(self, grr):
        poisoned = np.full(grr.domain_size, 1 / grr.domain_size)
        result = recover_frequencies(poisoned, grr, eta=0.3)
        assert result.eta == 0.3
        assert result.scenario == "non-knowledge"
        assert result.estimated_genuine.shape == poisoned.shape
        assert result.malicious.frequencies.shape == poisoned.shape

    def test_default_eta_is_paper_value(self):
        assert DEFAULT_ETA == 0.2


class TestRecoverEffectiveness:
    @pytest.mark.parametrize("proto_name", ["grr", "oue", "olh"])
    @pytest.mark.parametrize("attack_kind", ["manip", "mga", "aa"])
    def test_recovery_beats_poisoned(self, proto_name, attack_kind):
        """The headline claim: recovered MSE < poisoned MSE everywhere."""
        from repro.protocols import make_protocol

        proto = make_protocol(proto_name, epsilon=0.5, domain_size=D)
        # Stable per-cell seed (builtin hash() is salted per process).
        seed = sum(ord(c) for c in proto_name + attack_kind)
        rng = np.random.default_rng(seed)
        if attack_kind == "manip":
            attack = ManipAttack(domain_size=D, rng=rng)
        elif attack_kind == "mga":
            attack = MGAAttack(domain_size=D, r=4, rng=rng)
        else:
            attack = AdaptiveAttack(domain_size=D, rng=rng)
        before, after = [], []
        for seed in range(5):
            trial = run_trial(DATASET, proto, attack, beta=0.05, rng=seed)
            result = recover_frequencies(trial.poisoned_frequencies, proto)
            before.append(mse(trial.true_frequencies, trial.poisoned_frequencies))
            after.append(mse(trial.true_frequencies, result.frequencies))
        assert np.mean(after) < np.mean(before)

    def test_star_beats_plain_under_mga(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=4, rng=0)
        plain, star = [], []
        for seed in range(8):
            trial = run_trial(DATASET, proto, attack, beta=0.05, rng=seed)
            r1 = recover_frequencies(trial.poisoned_frequencies, proto)
            r2 = recover_frequencies(
                trial.poisoned_frequencies, proto, target_items=attack.target_items
            )
            plain.append(mse(trial.true_frequencies, r1.frequencies))
            star.append(mse(trial.true_frequencies, r2.frequencies))
        assert np.mean(star) < np.mean(plain)

    def test_frequency_gain_suppressed(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=4, rng=0)
        gains_before, gains_after = [], []
        for seed in range(8):
            trial = run_trial(DATASET, proto, attack, beta=0.05, rng=seed)
            result = recover_frequencies(
                trial.poisoned_frequencies, proto, target_items=attack.target_items
            )
            gains_before.append(
                frequency_gain(
                    trial.genuine_frequencies,
                    trial.poisoned_frequencies,
                    attack.target_items,
                )
            )
            gains_after.append(
                frequency_gain(
                    trial.genuine_frequencies, result.frequencies, attack.target_items
                )
            )
        assert np.mean(gains_before) > 0.1
        assert abs(np.mean(gains_after)) < np.mean(gains_before) / 3

    def test_eta_overestimate_is_safe(self):
        # Paper Section VI-A4: eta = 0.2 with true ratio ~0.053 still works.
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = AdaptiveAttack(domain_size=D, rng=1)
        errors = {}
        for eta in (0.053, 0.2, 0.4):
            vals = []
            for seed in range(6):
                trial = run_trial(DATASET, proto, attack, beta=0.05, rng=seed)
                result = recover_frequencies(trial.poisoned_frequencies, proto, eta=eta)
                vals.append(mse(trial.true_frequencies, result.frequencies))
            errors[eta] = float(np.mean(vals))
        baseline = np.mean(
            [
                mse(
                    DATASET.frequencies,
                    run_trial(DATASET, proto, attack, beta=0.05, rng=s).poisoned_frequencies,
                )
                for s in range(6)
            ]
        )
        for eta, err in errors.items():
            assert err < baseline, f"eta={eta} should still beat no recovery"

    def test_external_malicious_estimate_hook(self):
        # The recovery-paradigm hook: a perfect external f_Y estimate plus
        # the true eta recovers essentially the genuine vector.
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=4, rng=0)
        trial = run_trial(DATASET, proto, attack, beta=0.05, rng=3)
        result = recover_frequencies(
            trial.poisoned_frequencies,
            proto,
            eta=trial.true_eta,
            malicious_estimate=trial.malicious_frequencies,
        )
        genuine_err = mse(trial.true_frequencies, trial.genuine_frequencies)
        recovered_err = mse(trial.true_frequencies, result.frequencies)
        assert recovered_err <= genuine_err * 1.5


class TestLDPRecoverClass:
    def test_recover_delegates(self, grr):
        recoverer = LDPRecover(grr, eta=0.1)
        poisoned = np.full(grr.domain_size, 1 / grr.domain_size)
        result = recoverer.recover(poisoned)
        assert result.eta == 0.1
        assert is_probability_vector(result.frequencies, atol=1e-8)

    def test_star_mode(self, grr):
        recoverer = LDPRecover(grr)
        poisoned = np.full(grr.domain_size, 1 / grr.domain_size)
        result = recoverer.recover(poisoned, target_items=[0, 1])
        assert result.scenario == "partial-knowledge"

    def test_invalid_eta(self, grr):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            LDPRecover(grr, eta=-1.0)
