"""Tests for the name-based protocol registry."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.protocols import (
    GRR,
    OLH,
    OUE,
    PROTOCOL_NAMES,
    available_protocols,
    make_protocol,
    register_protocol,
)


class TestMakeProtocol:
    @pytest.mark.parametrize(
        "name,cls", [("grr", GRR), ("oue", OUE), ("olh", OLH)]
    )
    def test_constructs_right_class(self, name, cls):
        proto = make_protocol(name, epsilon=0.5, domain_size=10)
        assert isinstance(proto, cls)
        assert proto.domain_size == 10

    def test_case_insensitive(self):
        assert isinstance(make_protocol("GRR", epsilon=0.5, domain_size=5), GRR)

    def test_whitespace_tolerant(self):
        assert isinstance(make_protocol(" oue ", epsilon=0.5, domain_size=5), OUE)

    def test_kwargs_forwarded(self):
        proto = make_protocol("olh", epsilon=0.5, domain_size=10, g=5)
        assert proto.g == 5

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            make_protocol("rappor", epsilon=0.5, domain_size=10)


class TestRegistry:
    def test_paper_order(self):
        assert PROTOCOL_NAMES == ("grr", "oue", "olh")

    def test_available_contains_builtins(self):
        names = available_protocols()
        assert {"grr", "oue", "olh"}.issubset(set(names))

    def test_register_and_use_custom(self):
        class MyGRR(GRR):
            name = "mygrr-test"

        register_protocol("mygrr-test", MyGRR)
        try:
            proto = make_protocol("mygrr-test", epsilon=0.5, domain_size=4)
            assert isinstance(proto, MyGRR)
        finally:
            from repro.protocols import registry

            registry._FACTORIES.pop("mygrr-test", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_protocol("grr", GRR)
