"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--figure", "fig3"])
        assert args.dataset == "ipums"
        assert args.trials == 5
        assert args.seed == 0

    def test_invalid_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--figure", "fig99"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.protocol == "grr"
        assert args.beta == 0.05


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table1" in out

    def test_run_table1(self, capsys):
        code = main(
            ["run", "--figure", "table1", "--trials", "1", "--num-users", "5000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mse_before_recovery" in out
        assert "grr" in out

    def test_run_fig4_small(self, capsys):
        code = main(
            ["run", "--figure", "fig4", "--trials", "1", "--num-users", "5000"]
        )
        assert code == 0
        assert "fg_before" in capsys.readouterr().out

    def test_run_sweep_parameter(self, capsys):
        code = main(
            [
                "run",
                "--figure",
                "fig5",
                "--parameter",
                "eta",
                "--trials",
                "1",
                "--num-users",
                "5000",
            ]
        )
        assert code == 0
        assert "eta" in capsys.readouterr().out

    def test_demo_runs(self, capsys):
        code = main(["demo", "--num-users", "5000", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MSE after LDPRecover" in out
        assert "frequency gain" in out
