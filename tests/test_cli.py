"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--figure", "fig3"])
        assert args.dataset == "ipums"
        assert args.trials == 5
        assert args.seed == 0

    def test_invalid_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--figure", "fig99"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.protocol == "grr"
        assert args.beta == 0.05

    def test_olh_cohort_flag(self):
        args = build_parser().parse_args(
            ["run", "--figure", "fig7", "--olh-cohort", "256"]
        )
        assert args.olh_cohort == 256
        assert build_parser().parse_args(["run", "--figure", "fig7"]).olh_cohort is None

    def test_cache_flags(self):
        args = build_parser().parse_args(
            ["run", "--figure", "fig5", "--cache-dir", "/tmp/x", "--cache-stats"]
        )
        assert args.cache_dir == "/tmp/x"
        assert args.cache_stats and not args.no_cache

    def test_cache_subcommand(self):
        args = build_parser().parse_args(["cache", "prune", "--older-than-days", "7"])
        assert args.command == "cache"
        assert args.action == "prune"
        assert args.older_than_days == 7.0

    def test_exhibit_is_an_alias_of_figure(self):
        args = build_parser().parse_args(["run", "--exhibit", "kv"])
        assert args.figure == "kv"
        args = build_parser().parse_args(["shard", "run", "--exhibit", "heavyhitter"])
        assert args.figure == "heavyhitter"

    def test_scenario_names_are_figure_choices_too(self):
        assert build_parser().parse_args(["run", "--figure", "kv"]).figure == "kv"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--exhibit", "nope"])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table1" in out

    def test_run_table1(self, capsys):
        code = main(
            ["run", "--figure", "table1", "--trials", "1", "--num-users", "5000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mse_before_recovery" in out
        assert "grr" in out

    def test_run_fig4_small(self, capsys):
        code = main(
            ["run", "--figure", "fig4", "--trials", "1", "--num-users", "5000"]
        )
        assert code == 0
        assert "fg_before" in capsys.readouterr().out

    def test_run_sweep_parameter(self, capsys):
        code = main(
            [
                "run",
                "--figure",
                "fig5",
                "--parameter",
                "eta",
                "--trials",
                "1",
                "--num-users",
                "5000",
            ]
        )
        assert code == 0
        assert "eta" in capsys.readouterr().out

    def test_run_table1_with_olh_cohort(self, capsys):
        code = main(
            [
                "run", "--figure", "table1", "--trials", "1",
                "--num-users", "4000", "--chunk-users", "2000",
                "--olh-cohort", "16", "--no-cache",
            ]
        )
        assert code == 0
        assert "mse_after_recovery" in capsys.readouterr().out

    def test_list_includes_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kv" in out and "heavyhitter" in out

    def test_run_kv_exhibit(self, capsys):
        code = main(
            ["run", "--exhibit", "kv", "--trials", "1", "--num-users", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "freq_mse_recover_star" in out
        assert "kv-mga" in out

    def test_run_heavyhitter_exhibit(self, capsys):
        code = main(
            ["run", "--exhibit", "heavyhitter", "--trials", "1",
             "--num-users", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision_recovered_star" in out
        assert "promoted_poisoned" in out

    def test_chunk_users_note_for_kv(self, capsys):
        code = main(
            ["run", "--exhibit", "kv", "--trials", "1", "--num-users", "2000",
             "--chunk-users", "1000"]
        )
        assert code == 0
        assert "--chunk-users is ignored" in capsys.readouterr().err

    def test_demo_runs(self, capsys):
        code = main(["demo", "--num-users", "5000", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MSE after LDPRecover" in out
        assert "frequency gain" in out


class TestCacheWorkflow:
    """End-to-end: run twice against one cache dir, inspect, prune."""

    ARGS = ["run", "--figure", "table1", "--trials", "2", "--num-users", "4000"]

    def test_second_run_is_all_hits(self, capsys, tmp_path):
        flags = ["--cache-dir", str(tmp_path), "--cache-stats"]
        assert main(self.ARGS + flags) == 0
        first = capsys.readouterr().out
        assert "0 hits, 6 misses, 6 stored" in first
        assert main(self.ARGS + flags) == 0
        second = capsys.readouterr().out
        assert "6 hits, 0 misses, 0 stored (hit rate 100.0%)" in second
        # Identical tables modulo the stats line.
        assert first.splitlines()[:-1] == second.splitlines()[:-1]

    def test_no_cache_bypasses_store(self, capsys, tmp_path):
        flags = ["--cache-dir", str(tmp_path), "--no-cache", "--cache-stats"]
        assert main(self.ARGS + flags) == 0
        out = capsys.readouterr().out
        assert "hits" not in out  # no stats without a cache
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "no cached cells" in capsys.readouterr().out

    def test_cache_ls_verify_prune(self, capsys, tmp_path):
        assert main(self.ARGS + ["--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "6 cells" in out
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "ok: 6 cells verified" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
        assert "pruned 6 cached cells" in capsys.readouterr().out

    def test_verify_reports_corruption(self, capsys, tmp_path):
        from repro.sim.cache import CellCache

        assert main(self.ARGS + ["--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        [first, *_] = CellCache(tmp_path).entries()
        first.path.write_text("garbage", encoding="utf-8")
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "BAD" in err and "1 bad entries found" in err and "5 healthy" in err


class TestShardWorkflow:
    """End-to-end `shard run` / `status` / `merge` over a shared cache dir."""

    SWEEP = ["--figure", "table1", "--trials", "2", "--num-users", "4000"]

    def _flags(self, tmp_path):
        return self.SWEEP + ["--cache-dir", str(tmp_path)]

    def test_static_two_shard_merge_equals_unsharded_run(self, capsys, tmp_path):
        flags = self._flags(tmp_path / "shared")
        assert main(["shard", "run"] + flags + ["--shard-index", "0", "--shard-count", "2"]) == 0
        assert "static-0of2" in capsys.readouterr().out
        # Incomplete: status exits 1 and merge refuses.
        assert main(["shard", "status"] + flags) == 1
        capsys.readouterr()
        assert main(["shard", "merge"] + flags) == 1
        assert "cannot merge" in capsys.readouterr().err
        assert main(["shard", "run"] + flags + ["--shard-index", "1", "--shard-count", "2"]) == 0
        assert main(["shard", "status"] + flags) == 0
        capsys.readouterr()

        merged = tmp_path / "merged.json"
        single = tmp_path / "single.json"
        assert main(["shard", "merge"] + flags + ["--output", str(merged)]) == 0
        capsys.readouterr()
        # The unsharded reference, computed in a *separate* cache dir.
        assert main(
            ["run"] + self.SWEEP
            + ["--cache-dir", str(tmp_path / "solo"), "--output", str(single)]
        ) == 0
        capsys.readouterr()
        assert merged.read_text() == single.read_text(), (
            "merged shard rows must be byte-identical to the unsharded run"
        )

    def test_claims_mode_and_cache_stats(self, capsys, tmp_path):
        flags = self._flags(tmp_path)
        assert main(["shard", "run"] + flags + ["--claims", "--label", "host-a"]) == 0
        out = capsys.readouterr().out
        assert "host-a" in out and "[claims]" in out and "6 run" in out
        assert main(["shard", "run"] + flags + ["--claims", "--label", "host-b",
                                                "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "0 run, 6 served" in out and "6 hits" in out

    def test_mode_validation_exit_code(self, capsys, tmp_path):
        flags = self._flags(tmp_path)
        assert main(["shard", "run"] + flags) == 2
        assert "assignment mode" in capsys.readouterr().err
        assert main(["shard", "run"] + flags + ["--shard-index", "5",
                                                "--shard-count", "2"]) == 2

    def test_invalid_ttl_is_an_error_not_a_traceback(self, capsys, tmp_path):
        flags = self._flags(tmp_path) + ["--claim-ttl", "0"]
        assert main(["shard", "status"] + flags) == 2
        assert "ttl" in capsys.readouterr().err
        assert main(["shard", "run", "--claims"] + flags) == 2
        capsys.readouterr()

    def test_shard_shares_run_cache_entries(self, capsys, tmp_path):
        """`run` warms the cache; a later shard run serves everything."""
        flags = self._flags(tmp_path)
        assert main(["run"] + flags) == 0
        capsys.readouterr()
        assert main(["shard", "run"] + flags + ["--shard-index", "0",
                                                "--shard-count", "1"]) == 0
        assert "0 run, 6 served" in capsys.readouterr().out
