"""Tests for the SUE (basic RAPPOR) and BLH protocols."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.protocols import BLH, OLH, OUE, SUE, counts_to_items, make_protocol

D = 12


class TestSUE:
    def test_probabilities(self):
        eps = 1.0
        sue = SUE(epsilon=eps, domain_size=D)
        half = math.exp(eps / 2)
        assert sue.p == pytest.approx(half / (half + 1))
        assert sue.q == pytest.approx(1 / (half + 1))
        assert sue.p + sue.q == pytest.approx(1.0)

    def test_symmetric_flip_rates(self):
        sue = SUE(epsilon=1.0, domain_size=D)
        rng = np.random.default_rng(0)
        items = np.full(100_000, 3, dtype=np.int64)
        bits = sue.perturb(items, rng)
        # True bit survives with probability p; other bits on with q = 1-p.
        assert float(bits[:, 3].mean()) == pytest.approx(sue.p, abs=0.01)
        assert float(bits[:, 0].mean()) == pytest.approx(sue.q, abs=0.01)

    def test_unbiased_estimate(self):
        sue = SUE(epsilon=1.0, domain_size=D)
        rng = np.random.default_rng(1)
        n = 60_000
        counts = np.zeros(D, dtype=np.int64)
        counts[2] = int(0.4 * n)
        counts[7] = n - counts[2]
        items = counts_to_items(counts, rng)
        freqs = sue.aggregate(sue.perturb(items, rng))
        assert freqs[2] == pytest.approx(0.4, abs=0.03)

    def test_variance_worse_than_oue(self):
        # OUE is the optimized variant; SUE's variance must be >= OUE's.
        sue = SUE(epsilon=0.5, domain_size=D)
        oue = OUE(epsilon=0.5, domain_size=D)
        assert sue.theoretical_variance(1000) >= oue.theoretical_variance(1000)

    def test_empirical_variance_matches(self):
        sue = SUE(epsilon=1.0, domain_size=D)
        counts = np.zeros(D, dtype=np.int64)
        counts[0] = 2000
        estimates = [
            sue.estimate_counts(sue.sample_genuine_counts(counts, s), 2000)[5]
            for s in range(400)
        ]
        assert np.var(estimates) == pytest.approx(
            sue.theoretical_variance(2000), rel=0.3
        )

    def test_registry(self):
        assert isinstance(make_protocol("sue", epsilon=0.5, domain_size=D), SUE)

    def test_recovery_works_on_sue(self):
        from repro.attacks import MGAAttack
        from repro.core.recover import recover_frequencies
        from repro.datasets import zipf_dataset
        from repro.sim import mse, run_trial

        data = zipf_dataset(domain_size=D, num_users=30_000, rng=2)
        sue = SUE(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        before, after = [], []
        for seed in range(4):
            trial = run_trial(data, sue, attack, beta=0.1, rng=seed)
            result = recover_frequencies(trial.poisoned_frequencies, sue)
            before.append(mse(trial.true_frequencies, trial.poisoned_frequencies))
            after.append(mse(trial.true_frequencies, result.frequencies))
        assert np.mean(after) < np.mean(before)


class TestBLH:
    def test_g_is_two(self):
        blh = BLH(epsilon=1.0, domain_size=D)
        assert blh.g == 2
        assert blh.q == pytest.approx(0.5)
        assert blh.p == pytest.approx(math.exp(1.0) / (math.exp(1.0) + 1))

    def test_support_is_about_half_domain(self):
        blh = BLH(epsilon=1.0, domain_size=100)
        rng = np.random.default_rng(0)
        crafted = blh.craft_supporting(rng.integers(0, 100, size=500), rng)
        counts = blh.support_counts(crafted)
        # Each report supports its item plus ~half of the rest.
        assert counts.sum() / 500 == pytest.approx(100 / 2, rel=0.1)

    def test_unbiased_estimate(self):
        blh = BLH(epsilon=1.0, domain_size=D)
        rng = np.random.default_rng(1)
        n = 60_000
        counts = np.zeros(D, dtype=np.int64)
        counts[4] = n
        items = counts_to_items(counts, rng)
        freqs = blh.aggregate(blh.perturb(items, rng))
        assert freqs[4] == pytest.approx(1.0, abs=0.05)

    def test_variance_worse_than_olh(self):
        blh = BLH(epsilon=0.5, domain_size=D)
        olh = OLH(epsilon=0.5, domain_size=D)
        # OLH picks g to minimize variance, so BLH can't beat it (compare
        # via the exact unified form at f=0).
        from repro.analysis import generic_count_variance

        assert generic_count_variance(blh.params, 1000, 0.0) >= generic_count_variance(
            olh.params, 1000, 0.0
        )

    def test_registry(self):
        assert isinstance(make_protocol("blh", epsilon=0.5, domain_size=D), BLH)

    def test_recovery_works_on_blh(self):
        from repro.attacks import AdaptiveAttack
        from repro.core.recover import recover_frequencies
        from repro.datasets import zipf_dataset
        from repro.sim import mse, run_trial

        data = zipf_dataset(domain_size=D, num_users=30_000, rng=3)
        blh = BLH(epsilon=0.5, domain_size=D)
        attack = AdaptiveAttack(domain_size=D, rng=0)
        before, after = [], []
        for seed in range(4):
            trial = run_trial(data, blh, attack, beta=0.1, rng=seed)
            result = recover_frequencies(trial.poisoned_frequencies, blh)
            before.append(mse(trial.true_frequencies, trial.poisoned_frequencies))
            after.append(mse(trial.true_frequencies, result.frequencies))
        assert np.mean(after) < np.mean(before) * 1.2  # at least not worse
