"""Tests for the RNG normalization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import as_generator, derive_seed, spawn, spawn_sequences


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 2**31, size=10)
        b = as_generator(2).integers(0, 2**31, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_numpy_integer_seed(self):
        a = as_generator(np.int64(42)).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_generator(1.5)


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        first = [g.integers(0, 2**31) for g in spawn(7, 3)]
        second = [g.integers(0, 2**31) for g in spawn(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_zero_children(self):
        assert spawn(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(0, -1)

    def test_children_differ_from_each_other(self):
        children = spawn(123, 8)
        draws = [tuple(g.integers(0, 1000, size=4)) for g in children]
        assert len(set(draws)) == 8

    def test_children_are_real_seed_sequence_spawns(self):
        # The docstring contract: children come from SeedSequence.spawn of
        # the parent's sequence, not from raw integers drawn off its stream.
        expected = [
            np.random.default_rng(s).integers(0, 2**31)
            for s in np.random.SeedSequence(7).spawn(3)
        ]
        actual = [g.integers(0, 2**31) for g in spawn(7, 3)]
        assert actual == expected

    def test_generator_parent_spawns_fresh_children_each_call(self):
        gen = np.random.default_rng(0)
        first = [g.integers(0, 2**31) for g in spawn(gen, 2)]
        second = [g.integers(0, 2**31) for g in spawn(gen, 2)]
        assert set(first).isdisjoint(second)


class TestSpawnSequences:
    def test_returns_seed_sequences(self):
        seqs = spawn_sequences(42, 3)
        assert len(seqs) == 3
        assert all(isinstance(s, np.random.SeedSequence) for s in seqs)

    def test_deterministic_for_int_seeds(self):
        a = [s.generate_state(1)[0] for s in spawn_sequences(11, 4)]
        b = [s.generate_state(1)[0] for s in spawn_sequences(11, 4)]
        assert a == b

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_sequences(0, -1)

    def test_children_are_picklable(self):
        import pickle

        seqs = spawn_sequences(3, 2)
        clones = pickle.loads(pickle.dumps(seqs))
        assert [s.generate_state(1)[0] for s in clones] == [
            s.generate_state(1)[0] for s in seqs
        ]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5) == derive_seed(5)

    def test_range(self):
        seed = derive_seed(0)
        assert 0 <= seed < 2**63
