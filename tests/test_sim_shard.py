"""Tests for cache-coordinated multi-machine sharding (repro.sim.shard).

The contract under test (ISSUE 4 acceptance criteria):

* a sweep executed as N shards over one shared cache directory, then
  merged, produces rows **bit-identical** to the unsharded run;
* each cell is simulated **exactly once** across the shards (asserted
  through :data:`repro.sim.engine.TASK_COUNTER` and the per-shard run
  reports) — under static hash-mod partitioning, under claim-based work
  stealing, and under a genuine multi-process claim race;
* enumeration reproduces the exact canonical keys a real run stores,
  without running a single trial;
* crashed claimants release their cells via the stale-claim TTL.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time

import pytest

from repro.exceptions import InvalidParameterError, ShardIncompleteError
from repro.sim.cache import CellCache
from repro.sim.engine import TASK_COUNTER, TrialBudget, Welford
from repro.sim.shard import (
    ClaimQueue,
    ShardReport,
    SweepConfig,
    enumerate_cells,
    merge_sweep,
    merged_cell_seconds,
    run_shard,
    shard_of_key,
    sweep_status,
)

#: A fast sweep: 2 datasets x 3 protocols = 6 row-kind cells, 2 trials each.
CONFIG = SweepConfig(figure="table1", num_users=3_000, trials=2, seed=0)

#: An evaluation-kind sweep: 3 protocols x 5 betas = 15 cells.
EVAL_CONFIG = SweepConfig(figure="fig7", num_users=3_000, trials=2, seed=1)

#: A scenario-exhibit sweep (ISSUE 5): 2 epsilons x 5 betas = 10 kv cells
#: must shard, merge bit-identically and count exactly-once like figures.
KV_CONFIG = SweepConfig(figure="kv", num_users=2_000, trials=2, seed=11)


class TestSweepConfig:
    def test_rejects_unknown_figure(self):
        with pytest.raises(InvalidParameterError):
            SweepConfig(figure="fig99")

    def test_digest_ignores_workers(self):
        base = SweepConfig(figure="fig8", trials=3)
        assert base.digest() == SweepConfig(figure="fig8", trials=3, workers=4).digest()
        assert base.digest() != SweepConfig(figure="fig8", trials=4).digest()

    def test_digest_ignores_flags_the_figure_does_not_consume(self):
        """A worker passing --dataset/--parameter to a figure that ignores
        them still reports under the same digest as everyone else."""
        base = SweepConfig(figure="fig8", trials=3)
        assert base.digest() == SweepConfig(figure="fig8", trials=3, dataset="fire").digest()
        assert base.digest() == SweepConfig(figure="fig8", trials=3, parameter="eta").digest()
        fig9 = SweepConfig(figure="fig9", trials=3)
        assert fig9.digest() == SweepConfig(figure="fig9", trials=3, chunk_users=500).digest()
        # ...but fields the figure does consume stay in.
        assert base.digest() != SweepConfig(figure="fig8", trials=3, chunk_users=500).digest()
        fig3 = SweepConfig(figure="fig3", trials=3)
        assert fig3.digest() != SweepConfig(figure="fig3", trials=3, dataset="fire").digest()

    def test_run_matches_direct_generator_call(self):
        from repro.sim import figures

        direct = figures.table1_rows(num_users=3_000, trials=2, rng=0, workers=1)
        assert CONFIG.run(None) == direct

    def test_digest_without_budget_knobs_is_unchanged(self):
        """Fixed-budget digests must stay byte-identical to pre-adaptive
        versions: the three budget knobs leave the spec when all None, so
        mixed-version fleets running fixed sweeps still agree."""
        base = SweepConfig(figure="fig8", trials=3)
        explicit = SweepConfig(
            figure="fig8", trials=3, target_ci=None, max_trials=None, trial_batch=None
        )
        assert base.digest() == explicit.digest()

    def test_digest_changes_with_every_budget_knob(self):
        budgeted = SweepConfig(figure="fig8", trials=3, target_ci=0.5)
        assert budgeted.digest() != SweepConfig(figure="fig8", trials=3).digest()
        assert budgeted.digest() != dataclasses.replace(budgeted, target_ci=0.25).digest()
        assert budgeted.digest() != dataclasses.replace(budgeted, max_trials=40).digest()
        assert budgeted.digest() != dataclasses.replace(budgeted, trial_batch=2).digest()

    def test_budget_resolution_and_defaults(self):
        assert CONFIG.budget() is None
        resolved = SweepConfig(figure="table1", trials=2, target_ci=0.5).budget()
        assert resolved == TrialBudget(
            target_halfwidth=0.5, min_trials=2, max_trials=20, batch=2
        )
        explicit = SweepConfig(
            figure="table1", trials=2, target_ci=0.5, max_trials=8, trial_batch=3
        ).budget()
        assert explicit == TrialBudget(
            target_halfwidth=0.5, min_trials=2, max_trials=8, batch=3
        )

    def test_inconsistent_budget_knobs_fail_at_construction(self):
        with pytest.raises(InvalidParameterError):
            SweepConfig(figure="table1", trials=4, max_trials=2)
        with pytest.raises(InvalidParameterError):
            SweepConfig(figure="table1", trials=2, target_ci=-0.1)
        with pytest.raises(InvalidParameterError):
            SweepConfig(figure="table1", trials=2, trial_batch=0)


class TestEnumeration:
    def test_enumerates_without_simulating(self):
        TASK_COUNTER.reset()
        cells = enumerate_cells(CONFIG)
        assert TASK_COUNTER.count == 0, "enumeration must not run trials"
        assert len(cells) == 6
        assert len({c.key for c in cells}) == 6
        assert [c.index for c in cells] == list(range(6))

    def test_enumeration_is_deterministic(self):
        assert enumerate_cells(CONFIG) == enumerate_cells(CONFIG)

    def test_keys_match_what_a_real_run_stores(self, tmp_path):
        cache = CellCache(tmp_path)
        CONFIG.run(cache)
        stored = {entry.key for entry in cache.entries()}
        assert {c.key for c in enumerate_cells(CONFIG)} == stored

    def test_evaluation_cells_enumerate_too(self, tmp_path):
        cells = enumerate_cells(EVAL_CONFIG)
        assert len(cells) == 15 and all(c.kind == "evaluation" for c in cells)
        cache = CellCache(tmp_path)
        EVAL_CONFIG.run(cache)
        assert {c.key for c in cells} == {e.key for e in cache.entries()}


class TestStaticSharding:
    def test_partition_is_total_and_disjoint(self):
        cells = enumerate_cells(CONFIG)
        assignment = {c.key: shard_of_key(c.key, 3) for c in cells}
        assert set(assignment.values()) <= {0, 1, 2}
        # Deterministic: every machine computes the same assignment.
        assert assignment == {c.key: shard_of_key(c.key, 3) for c in cells}

    def test_shard_of_key_validates_count(self):
        with pytest.raises(InvalidParameterError):
            shard_of_key("ab" * 32, 0)

    @pytest.mark.parametrize(
        "config", [CONFIG, EVAL_CONFIG, KV_CONFIG], ids=["row", "eval", "scenario-kv"]
    )
    def test_two_shards_merge_bit_identical_exactly_once(self, tmp_path, config):
        single = config.run(None)  # the unsharded reference
        cache = CellCache(tmp_path)
        TASK_COUNTER.reset()
        r0 = run_shard(config, cache, shard_index=0, shard_count=2)
        r1 = run_shard(config, cache, shard_index=1, shard_count=2)
        sharded_tasks = TASK_COUNTER.count
        # Exactly once: every cell ran in exactly one shard, and the task
        # total equals one trial set per cell.
        assert r0.cells_run + r1.cells_run == len(single)
        assert sharded_tasks == len(single) * config.trials
        assert r0.cells_skipped + r0.cells_served == len(single) - r0.cells_run
        # Merging performs zero simulation and reproduces the reference.
        TASK_COUNTER.reset()
        merged = merge_sweep(config, cache)
        assert TASK_COUNTER.count == 0, "merge must render purely from cache"
        assert merged == single

    def test_heavyhitter_cells_expand_to_rows_and_merge_bit_identical(self, tmp_path):
        """The heavy-hitter scenario simulates one cell per (protocol,
        beta) and expands each into one row per k — sharding must count
        cells (not rows) and still merge bit-identically, including the
        placeholder pass-through for foreign cells."""
        config = SweepConfig(figure="heavyhitter", num_users=3_000, trials=1, seed=12)
        single = config.run(None)
        cells = enumerate_cells(config)
        assert len(single) == 2 * len(cells)  # two k values per cell
        cache = CellCache(tmp_path)
        TASK_COUNTER.reset()
        r0 = run_shard(config, cache, shard_index=0, shard_count=2)
        r1 = run_shard(config, cache, shard_index=1, shard_count=2)
        assert r0.cells_run + r1.cells_run == len(cells)
        assert TASK_COUNTER.count == len(cells) * config.trials
        TASK_COUNTER.reset()
        merged = merge_sweep(config, cache)
        assert TASK_COUNTER.count == 0
        assert merged == single

    def test_cold_shard_counts_each_cell_once_in_stats(self, tmp_path):
        """--cache-stats accuracy: one miss per *simulated* cell — cells
        skipped as foreign touch no counter, and nothing is probed twice."""
        cache = CellCache(tmp_path)
        report = run_shard(CONFIG, cache, shard_index=0, shard_count=2)
        assert report.cells_skipped > 0  # the contract is about a real split
        assert cache.stats.misses == report.cells_run
        assert cache.stats.stores == report.cells_run
        assert cache.stats.hits == 0
        # The second shard serves the first's cells as hits, one each.
        second = run_shard(CONFIG, cache, shard_index=1, shard_count=2)
        assert cache.stats.hits == second.cells_served
        assert cache.stats.misses == report.cells_run + second.cells_run

    def test_rerunning_a_finished_shard_is_free(self, tmp_path):
        cache = CellCache(tmp_path)
        run_shard(CONFIG, cache, shard_index=0, shard_count=1)
        TASK_COUNTER.reset()
        again = run_shard(CONFIG, cache, shard_index=0, shard_count=1)
        assert TASK_COUNTER.count == 0
        assert again.cells_run == 0 and again.cells_served == again.cells_total

    def test_mode_validation(self, tmp_path):
        cache = CellCache(tmp_path)
        with pytest.raises(InvalidParameterError):
            run_shard(CONFIG, cache)  # no mode picked
        with pytest.raises(InvalidParameterError):
            run_shard(CONFIG, cache, shard_index=0, shard_count=2, claims=True)
        with pytest.raises(InvalidParameterError):
            run_shard(CONFIG, cache, shard_index=2, shard_count=2)
        with pytest.raises(InvalidParameterError):
            run_shard(CONFIG, cache, shard_index=0)

    def test_workers_differ_across_shards_same_result(self, tmp_path):
        """Shards on different machine shapes share every cell."""
        single = CONFIG.run(None)
        cache = CellCache(tmp_path)
        run_shard(CONFIG, cache, shard_index=0, shard_count=2)
        bigger = dataclasses.replace(CONFIG, workers=2)
        run_shard(bigger, cache, shard_index=1, shard_count=2)
        assert merge_sweep(CONFIG, cache) == single


class TestClaimQueue:
    def test_acquire_release_roundtrip(self, tmp_path):
        queue = ClaimQueue(tmp_path, owner="a")
        assert queue.acquire("k1")
        assert queue.acquire("k1"), "re-acquiring an owned claim must succeed"
        assert not ClaimQueue(tmp_path, owner="b").acquire("k1")
        queue.release("k1")
        assert ClaimQueue(tmp_path, owner="b").acquire("k1")

    def test_release_is_idempotent(self, tmp_path):
        queue = ClaimQueue(tmp_path, owner="a")
        queue.release("never-claimed")  # no error

    def test_stale_claim_is_stolen(self, tmp_path):
        crashed = ClaimQueue(tmp_path, owner="crashed", ttl=10.0)
        assert crashed.acquire("k1")
        # Backdate the claim beyond the TTL (simulating a dead worker).
        path = crashed.path_for("k1")
        record = json.loads(path.read_text(encoding="utf-8"))
        record["claimed_at"] = time.time() - 60.0
        path.write_text(json.dumps(record), encoding="utf-8")
        thief = ClaimQueue(tmp_path, owner="thief", ttl=10.0)
        assert thief.acquire("k1")
        assert thief.peek("k1")["owner"] == "thief"

    def test_live_claim_is_not_stolen(self, tmp_path):
        ClaimQueue(tmp_path, owner="alive", ttl=1000.0).acquire("k1")
        assert not ClaimQueue(tmp_path, owner="thief", ttl=1000.0).acquire("k1")

    def test_corrupt_claim_ages_out_via_mtime(self, tmp_path):
        queue = ClaimQueue(tmp_path, owner="a", ttl=10.0)
        queue.directory.mkdir(parents=True, exist_ok=True)
        path = queue.path_for("k1")
        path.write_text("{ truncated", encoding="utf-8")
        record = queue.peek("k1")
        assert record["owner"] is None
        assert not queue.is_stale(record)  # fresh mtime: maybe mid-write
        os.utime(path, (time.time() - 60.0, time.time() - 60.0))
        assert queue.is_stale(queue.peek("k1"))
        assert queue.acquire("k1")

    def test_active_lists_outstanding_claims(self, tmp_path):
        queue = ClaimQueue(tmp_path, owner="a")
        assert queue.active() == []
        queue.acquire("k1")
        queue.acquire("k2")
        queue.release("k1")
        assert [key for key, _ in queue.active()] == ["k2"]

    def test_ttl_validation(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            ClaimQueue(tmp_path, ttl=0)


class TestClaimSharding:
    def test_single_claim_run_completes_everything(self, tmp_path):
        single = CONFIG.run(None)
        cache = CellCache(tmp_path)
        report = run_shard(CONFIG, cache, claims=True, label="solo")
        assert report.cells_run == len(single) and report.cells_skipped == 0
        # The label is uniquified with the process identity: two workers
        # accidentally launched with the same --label still contend
        # through the queue instead of both "owning" every claim.
        assert report.label.startswith("solo@")
        assert merge_sweep(CONFIG, cache) == single
        # Completed cells released their claims.
        assert sweep_status(CONFIG, cache).claimed == 0

    def test_foreign_claim_skips_cell_and_ttl_releases_it(self, tmp_path):
        cache = CellCache(tmp_path)
        target = enumerate_cells(CONFIG)[0]
        foreign = ClaimQueue(cache.root / "_shard" / "claims", owner="peer", ttl=10.0)
        assert foreign.acquire(target.key)

        report = run_shard(CONFIG, cache, claims=True, label="me", claim_ttl=10.0)
        assert report.cells_run == report.cells_total - 1
        assert report.cells_skipped == 1

        status = sweep_status(CONFIG, cache, claim_ttl=10.0)
        assert status.missing == 1 and status.claimed == 1 and not status.complete
        with pytest.raises(ShardIncompleteError):
            merge_sweep(CONFIG, cache)

        # The peer crashes: its claim goes stale and the next pass steals it.
        path = foreign.path_for(target.key)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["claimed_at"] = time.time() - 60.0
        path.write_text(json.dumps(record), encoding="utf-8")
        second = run_shard(CONFIG, cache, claims=True, label="me", claim_ttl=10.0)
        assert second.cells_run == 1
        assert merge_sweep(CONFIG, cache) == CONFIG.run(None)
        # Both passes' reports persist (no overwrite despite the shared
        # label), so the exactly-once accounting sums to the full sweep.
        reports = sweep_status(CONFIG, cache, claim_ttl=10.0).reports
        assert len(reports) == 2
        assert sum(r.cells_run for r in reports) == report.cells_total

    def test_merge_allow_missing_computes_stragglers(self, tmp_path):
        cache = CellCache(tmp_path)
        run_shard(CONFIG, cache, shard_index=0, shard_count=2)
        rows = merge_sweep(CONFIG, cache, require_complete=False)
        assert rows == CONFIG.run(None)


def _race_worker(cache_dir: str, label: str) -> None:
    """One contender of the multi-process claim race (forked child)."""
    cache = CellCache(cache_dir)
    run_shard(CONFIG, cache, claims=True, label=label, claim_ttl=600.0)


class TestConcurrentClaimRace:
    def test_two_processes_each_cell_exactly_once(self, tmp_path):
        """Two hosts racing over one shared cache dir never duplicate a
        cell: claims arbitrate, reports prove exactly-once, and the merge
        equals the unsharded reference."""
        single = CONFIG.run(None)
        cache = CellCache(tmp_path)
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_race_worker, args=(str(tmp_path), f"racer-{i}"))
            for i in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        status = sweep_status(CONFIG, cache)
        assert status.complete
        # Labels are uniquified with the worker's process identity so two
        # contenders can never share a claim owner (or a report file).
        ran = {r.label: r.cells_run for r in status.reports}
        assert sorted(label.split("@")[0] for label in ran) == ["racer-0", "racer-1"]
        assert sum(ran.values()) == len(single), "each cell simulated exactly once"
        TASK_COUNTER.reset()
        assert merge_sweep(CONFIG, cache) == single
        assert TASK_COUNTER.count == 0
        assert cache.verify() == []


#: Adaptive sweep over the same 6 table1 cells: an unreachable CI target
#: drives every cell to max_trials, in appendable 2-trial blocks.
BUDGET_CONFIG = dataclasses.replace(CONFIG, target_ci=1e-12, max_trials=4, trial_batch=2)

#: The same sweep extended: trials [4, 6) of every cell are the only new work.
TOPUP_CONFIG = dataclasses.replace(BUDGET_CONFIG, max_trials=6)


def _topup_worker(cache_dir: str, label: str) -> None:
    """One contender of the multi-process cell-extension race (forked child)."""
    cache = CellCache(cache_dir)
    run_shard(TOPUP_CONFIG, cache, claims=True, label=label, claim_ttl=600.0)


class TestAdaptiveBudgetSharding:
    def test_sequential_topup_runs_only_missing_blocks(self, tmp_path):
        """A claims shard extending converged-short cells simulates only
        the new trial range and merges bit-identical to a fixed-budget
        run at the final count."""
        cache = CellCache(tmp_path)
        TASK_COUNTER.reset()
        seeded = run_shard(BUDGET_CONFIG, cache, claims=True, label="seed")
        assert seeded.cells_run == 6
        assert TASK_COUNTER.count == 6 * 4  # 2-trial blocks up to max_trials=4
        fresh = CellCache(tmp_path)  # separate stats for the top-up pass
        TASK_COUNTER.reset()
        topup = run_shard(TOPUP_CONFIG, fresh, claims=True, label="extend")
        assert TASK_COUNTER.count == 6 * 2, "only trials [4, 6) are new work"
        assert topup.tasks_run == 6 * 2
        assert fresh.stats.block_trials_reused >= 6 * 4
        TASK_COUNTER.reset()
        merged = merge_sweep(TOPUP_CONFIG, fresh)
        assert TASK_COUNTER.count == 0
        assert merged == TOPUP_CONFIG.run(None)  # unsharded adaptive reference
        assert merged == dataclasses.replace(CONFIG, trials=6).run(None)

    def test_two_processes_extend_each_block_exactly_once(self, tmp_path):
        """Two claims-mode shards topping up the same converged-short
        cells: block-grained claims keep execution exactly-once (asserted
        on tasks, since both shards legitimately visit every cell), and
        the merge equals a single-shard extension bit for bit."""
        cache = CellCache(tmp_path)
        run_shard(BUDGET_CONFIG, cache, claims=True, label="seed")
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_topup_worker, args=(str(tmp_path), f"extender-{i}"))
            for i in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        status = sweep_status(TOPUP_CONFIG, cache)
        assert status.complete
        assert status.claimed == 0  # cell and block claims all released
        racers = [r for r in status.reports if r.label.startswith("extender-")]
        assert len(racers) == 2
        # Exactly-once at the block level: the 6 cells' [4, 6) ranges are
        # 12 new trials total, however they were split between the racers.
        assert sum(r.tasks_run for r in racers) == 6 * 2
        TASK_COUNTER.reset()
        merged = merge_sweep(TOPUP_CONFIG, cache)
        assert TASK_COUNTER.count == 0
        assert merged == dataclasses.replace(CONFIG, trials=6).run(None)
        assert cache.verify() == []


class TestReports:
    def test_report_persists_and_status_reads_it(self, tmp_path):
        cache = CellCache(tmp_path)
        report = run_shard(CONFIG, cache, shard_index=0, shard_count=2)
        [loaded] = sweep_status(CONFIG, cache).reports
        assert loaded == report
        assert loaded.tasks_run == report.cells_run * CONFIG.trials
        assert "cells" in loaded.summary()

    def test_back_to_back_passes_never_overwrite_reports(self, tmp_path):
        """Sub-millisecond fully-cached passes must still accumulate one
        report each — exactly-once accounting may not lose passes."""
        cache = CellCache(tmp_path)
        for _ in range(3):
            run_shard(CONFIG, cache, shard_index=0, shard_count=1)
        reports = sweep_status(CONFIG, cache).reports
        assert len(reports) == 3
        assert sum(r.cells_run for r in reports) == 6  # first pass only

    def test_unreadable_entry_is_healed_and_counted_once(self, tmp_path):
        """Claims mode over a store with one truncated entry: the cell is
        recomputed with exactly one miss+error in the stats."""
        cache = CellCache(tmp_path)
        run_shard(CONFIG, cache, claims=True, label="warm")
        victim = cache.entries()[0]
        victim.path.write_text("{ truncated", encoding="utf-8")
        fresh = CellCache(tmp_path)
        report = run_shard(CONFIG, fresh, claims=True, label="healer")
        assert report.cells_run == 1 and report.cells_served == 5
        assert fresh.stats.misses == 1 and fresh.stats.errors == 1
        assert fresh.stats.hits == 5
        assert fresh.verify() == []  # the recompute healed the entry

    def test_cell_seconds_merge_exactly(self):
        """Per-shard Welford timing states combine via Welford.merge into
        exactly the statistics of the union of the cells."""
        durations = [0.1, 0.2, 0.4, 0.8, 1.6]
        reference = Welford()
        for value in durations:
            reference.add(value)
        shards = []
        for chunk in (durations[:2], durations[2:]):
            acc = Welford()
            for value in chunk:
                acc.add(value)
            shards.append(
                ShardReport(
                    figure="table1", digest="d", label="s", mode="static",
                    cells_total=5, cells_run=len(chunk), cells_served=0,
                    cells_skipped=0, tasks_run=0, seconds=sum(chunk),
                    cell_seconds={"count": acc.count, "mean": acc.mean, "m2": acc.m2},
                )
            )
        merged = merged_cell_seconds(shards)
        assert merged.count == reference.count
        assert merged.mean == pytest.approx(reference.mean, rel=1e-12)
        assert merged.m2 == pytest.approx(reference.m2, rel=1e-12)

    def test_cells_per_second(self):
        report = ShardReport(
            figure="f", digest="d", label="l", mode="static", cells_total=4,
            cells_run=2, cells_served=0, cells_skipped=2, tasks_run=4, seconds=4.0,
        )
        assert report.cells_per_second() == pytest.approx(0.5)
        report.cells_run = 0
        assert report.cells_per_second() is None


class TestCoordinationStateIsInvisibleToCache:
    def test_claims_and_reports_do_not_pollute_entries(self, tmp_path):
        cache = CellCache(tmp_path)
        run_shard(CONFIG, cache, claims=True, label="solo")
        # Leave an unreleased claim behind as well.
        ClaimQueue(cache.root / "_shard" / "claims", owner="x").acquire("orphan")
        assert len(cache.entries()) == 6
        assert cache.verify() == []
        assert cache.count() == 6
