"""Tests for the RIA / RPA baseline attacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import MGAAttack, RIAAttack, RPAAttack
from repro.exceptions import AttackError
from repro.protocols import GRR, OLH, OUE
from repro.protocols.sue import SUE

D = 20


class TestRIA:
    def test_uniform_distribution(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = RIAAttack(domain_size=D)
        probs = attack.item_distribution(proto)
        np.testing.assert_allclose(probs, 1.0 / D)

    def test_domain_validation(self):
        with pytest.raises(AttackError):
            RIAAttack(domain_size=1)

    def test_domain_mismatch(self):
        attack = RIAAttack(domain_size=D)
        with pytest.raises(AttackError):
            attack.item_distribution(GRR(epsilon=0.5, domain_size=D + 1))

    def test_craft_counts(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        reports = RIAAttack(domain_size=D).craft(proto, 500, rng=0)
        assert proto.num_reports(reports) == 500

    def test_weaker_than_mga(self):
        # RIA's uniform sampling cannot concentrate gain like MGA.
        proto = GRR(epsilon=0.5, domain_size=D)
        targets = [0, 1]
        mga = MGAAttack(domain_size=D, targets=targets)
        ria = RIAAttack(domain_size=D)
        mga_reports = mga.craft(proto, 5000, rng=1)
        ria_reports = ria.craft(proto, 5000, rng=1)
        mga_freq = proto.aggregate(mga_reports)[targets].sum()
        ria_freq = proto.aggregate(ria_reports)[targets].sum()
        assert mga_freq > ria_freq * 2


class TestRPA:
    def test_grr_reports_are_uniform_items(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        reports = RPAAttack(domain_size=D).craft(proto, 50_000, rng=0)
        counts = np.bincount(reports, minlength=D)
        np.testing.assert_allclose(counts / 50_000, 1.0 / D, atol=0.01)

    def test_oue_reports_half_on(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        bits = RPAAttack(domain_size=D).craft(proto, 20_000, rng=0)
        assert float(bits.mean()) == pytest.approx(0.5, abs=0.01)

    def test_olh_reports_valid(self):
        proto = OLH(epsilon=0.5, domain_size=D)
        reports = RPAAttack(domain_size=D).craft(proto, 1000, rng=0)
        assert proto.num_reports(reports) == 1000
        assert reports.values.max() < proto.g

    def test_sue_subclass_of_oue_supported(self):
        proto = SUE(epsilon=0.5, domain_size=D)
        bits = RPAAttack(domain_size=D).craft(proto, 100, rng=0)
        assert bits.shape == (100, D)

    def test_unknown_protocol_rejected(self):
        class Fake:
            name = "fake"
            domain_size = D

        with pytest.raises(AttackError):
            RPAAttack(domain_size=D).craft(Fake(), 10)  # type: ignore[arg-type]

    def test_item_shadow_uniform(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = RPAAttack(domain_size=D)
        items = attack.sample_items(proto, 10_000, rng=1)
        counts = np.bincount(items, minlength=D)
        np.testing.assert_allclose(counts / 10_000, 1.0 / D, atol=0.02)

    def test_rpa_distorts_oue_more_than_ria(self):
        # A uniform random bit vector has ~d/2 on-bits, way above genuine
        # rates: stronger untargeted distortion than faithful encodings.
        proto = OUE(epsilon=0.5, domain_size=D)
        rpa_freq = proto.aggregate(RPAAttack(domain_size=D).craft(proto, 5000, rng=2))
        ria_freq = proto.aggregate(RIAAttack(domain_size=D).craft(proto, 5000, rng=2))
        # RIA keeps per-item debiased frequencies near uniform (sum ~1);
        # RPA pushes every item's estimate far above.
        assert rpa_freq.sum() > ria_freq.sum() + 1

    def test_recovery_counters_rpa(self):
        from repro.core.recover import recover_frequencies
        from repro.datasets import zipf_dataset
        from repro.sim import mse, run_trial

        data = zipf_dataset(domain_size=D, num_users=30_000, rng=1)
        proto = OUE(epsilon=0.5, domain_size=D)
        attack = RPAAttack(domain_size=D)
        before, after = [], []
        for seed in range(4):
            trial = run_trial(data, proto, attack, beta=0.05, rng=seed)
            result = recover_frequencies(trial.poisoned_frequencies, proto)
            before.append(mse(trial.true_frequencies, trial.poisoned_frequencies))
            after.append(mse(trial.true_frequencies, result.frequencies))
        assert np.mean(after) < np.mean(before)
