"""Statistical and structural tests for OLH."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocols import OLH, OLHReports, counts_to_items
from repro.protocols import hashing


@pytest.fixture()
def proto() -> OLH:
    return OLH(epsilon=1.0, domain_size=12)


class TestReportsContainer:
    def test_length(self):
        reports = OLHReports(seeds=np.array([1, 2], dtype=np.uint64), values=np.array([0, 1]))
        assert len(reports) == 2

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ProtocolError):
            OLHReports(seeds=np.array([1], dtype=np.uint64), values=np.array([0, 1]))


class TestPerturb:
    def test_values_in_hash_range(self, proto, rng):
        items = rng.integers(0, proto.domain_size, size=5000)
        reports = proto.perturb(items, rng)
        assert reports.values.min() >= 0
        assert reports.values.max() < proto.g

    def test_keep_rate(self, proto, rng):
        n = 200_000
        items = np.full(n, 2, dtype=np.int64)
        reports = proto.perturb(items, rng)
        true_hashes = hashing.hash_items(reports.seeds, np.uint64(2), proto.g)
        keep_rate = float(np.mean(true_hashes == reports.values.astype(np.uint64)))
        assert keep_rate == pytest.approx(proto.p, abs=0.005)

    def test_unique_seeds_per_user(self, proto, rng):
        reports = proto.perturb(rng.integers(0, proto.domain_size, size=2000), rng)
        assert np.unique(reports.seeds).size == 2000


class TestAggregation:
    def test_unbiased_frequency_estimate(self, proto, rng):
        n = 60_000
        counts = np.zeros(proto.domain_size, dtype=np.int64)
        counts[1] = int(0.5 * n)
        counts[8] = n - counts[1]
        items = counts_to_items(counts, rng)
        freqs = proto.aggregate(proto.perturb(items, rng))
        sigma = np.sqrt(proto.theoretical_variance(n)) / n
        assert freqs[1] == pytest.approx(0.5, abs=6 * sigma)
        assert freqs[8] == pytest.approx(0.5, abs=6 * sigma)

    def test_support_counts_definition(self, proto, rng):
        # Cross-check the chunked implementation against a direct loop.
        items = rng.integers(0, proto.domain_size, size=500)
        reports = proto.perturb(items, rng)
        counts = proto.support_counts(reports)
        manual = np.zeros(proto.domain_size, dtype=np.int64)
        for v in range(proto.domain_size):
            hashes = hashing.hash_items(reports.seeds, np.uint64(v), proto.g)
            manual[v] = int(np.sum(hashes == reports.values.astype(np.uint64)))
        np.testing.assert_array_equal(counts, manual)

    def test_support_counts_chunking_boundary(self, proto, rng):
        # Force multiple chunks and verify identical results.
        items = rng.integers(0, proto.domain_size, size=1000)
        reports = proto.perturb(items, rng)
        full = proto.support_counts(reports)
        proto_small = OLH(epsilon=1.0, domain_size=12, chunk_cells=37)  # tiny chunks
        np.testing.assert_array_equal(proto_small.support_counts(reports), full)
        np.testing.assert_array_equal(
            proto.with_chunk_cells(37).support_counts(reports), full
        )

    def test_empty_reports(self, proto):
        empty = OLHReports(
            seeds=np.empty(0, dtype=np.uint64), values=np.empty(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(
            proto.support_counts(empty), np.zeros(proto.domain_size, dtype=np.int64)
        )

    def test_wrong_type_raises(self, proto):
        with pytest.raises(ProtocolError):
            proto.support_counts(np.zeros(10))


class TestFastPath:
    def test_fast_counts_mean(self, proto):
        counts = np.zeros(proto.domain_size, dtype=np.int64)
        counts[3] = 5000
        n = 5000
        draws = np.array(
            [proto.sample_genuine_counts(counts, seed) for seed in range(200)],
            dtype=np.float64,
        )
        expected = counts * proto.p + (n - counts) * proto.q
        np.testing.assert_allclose(draws.mean(axis=0), expected, rtol=0.05)

    def test_fast_matches_sampled_mean(self, proto):
        counts = np.zeros(proto.domain_size, dtype=np.int64)
        counts[3] = 4000
        n = 4000
        fast = [
            proto.estimate_frequencies(proto.sample_genuine_counts(counts, s), n)[3]
            for s in range(30)
        ]
        slow = []
        for s in range(20):
            items = counts_to_items(counts, s)
            slow.append(proto.aggregate(proto.perturb(items, s + 500))[3])
        assert np.mean(fast) == pytest.approx(1.0, abs=0.05)
        assert np.mean(slow) == pytest.approx(1.0, abs=0.05)


class TestCrafting:
    def test_crafted_reports_support_their_items(self, proto, rng):
        items = rng.integers(0, proto.domain_size, size=300)
        crafted = proto.craft_supporting(items, rng)
        hashes = hashing.hash_items(crafted.seeds, items.astype(np.uint64), proto.g)
        np.testing.assert_array_equal(hashes, crafted.values.astype(np.uint64))

    def test_crafted_support_counts_cover_items(self, proto, rng):
        items = np.full(200, 7, dtype=np.int64)
        crafted = proto.craft_supporting(items, rng)
        counts = proto.support_counts(crafted)
        assert counts[7] == 200  # every crafted report supports item 7
        # Other items are supported only by hash collisions (~1/g rate).
        other = np.delete(counts, 7)
        assert other.mean() == pytest.approx(200 / proto.g, rel=0.3)


class TestSeedCohorts:
    """Seed-cohort mode: shared seeds, grouped aggregation, copies."""

    def test_perturb_draws_from_cohort_pool(self, rng):
        proto = OLH(epsilon=1.0, domain_size=12, cohort=8)
        reports = proto.perturb(rng.integers(0, 12, size=5000), rng)
        assert np.unique(reports.seeds).size <= 8
        assert reports.values.min() >= 0 and reports.values.max() < proto.g

    def test_cohort_keep_rate_marginal(self, rng):
        # Marginals are unchanged: the GRR keep rate on the hashed domain
        # is the same p* as in per-user-seed mode.
        proto = OLH(epsilon=1.0, domain_size=12, cohort=16)
        n = 200_000
        reports = proto.perturb(np.full(n, 2, dtype=np.int64), rng)
        true_hashes = hashing.hash_items(reports.seeds, np.uint64(2), proto.g)
        keep_rate = float(np.mean(true_hashes == reports.values.astype(np.uint64)))
        assert keep_rate == pytest.approx(proto.p, abs=0.005)

    def test_grouped_support_counts_equal_grid_scan(self, rng):
        cohort = OLH(epsilon=1.0, domain_size=31, cohort=8)
        per_user = OLH(epsilon=1.0, domain_size=31)
        reports = cohort.perturb(rng.integers(0, 31, size=4000), rng)
        np.testing.assert_array_equal(
            cohort.support_counts(reports), per_user.support_counts(reports)
        )

    def test_grouped_target_counts_equal_grid_scan(self, rng):
        cohort = OLH(epsilon=1.0, domain_size=31, cohort=8)
        per_user = OLH(epsilon=1.0, domain_size=31)
        reports = cohort.perturb(rng.integers(0, 31, size=4000), rng)
        targets = [0, 7, 30]
        np.testing.assert_array_equal(
            cohort.target_support_counts(reports, targets),
            per_user.target_support_counts(reports, targets),
        )
        np.testing.assert_array_equal(
            cohort.reports_supporting_any(reports, targets),
            per_user.reports_supporting_any(reports, targets),
        )

    def test_grouped_path_skipped_for_fresh_seed_batches(self, rng):
        # Crafted reports have one fresh seed each; aggregating them
        # through a cohort-mode oracle must fall back to the grid scan.
        cohort = OLH(epsilon=1.0, domain_size=12, cohort=4)
        crafted = cohort.craft_supporting(rng.integers(0, 12, size=300), rng)
        assert np.unique(crafted.seeds).size == 300
        np.testing.assert_array_equal(
            cohort.support_counts(crafted),
            OLH(epsilon=1.0, domain_size=12).support_counts(crafted),
        )

    def test_with_cohort_preserves_params_and_subclass(self):
        from repro.protocols import BLH

        base = OLH(epsilon=0.7, domain_size=20, g=6, chunk_cells=99)
        cohorted = base.with_cohort(32)
        assert cohorted.cohort == 32 and base.cohort is None
        assert (cohorted.epsilon, cohorted.g, cohorted.chunk_cells) == (0.7, 6, 99)
        assert cohorted.with_cohort(None).cohort is None
        blh = BLH(epsilon=0.5, domain_size=10).with_cohort(4)
        assert isinstance(blh, BLH) and blh.g == 2 and blh.cohort == 4

    def test_validation(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            OLH(epsilon=1.0, domain_size=12, cohort=0)
        with pytest.raises(InvalidParameterError):
            OLH(epsilon=1.0, domain_size=12, chunk_cells=0)
        with pytest.raises(InvalidParameterError):
            OLH(epsilon=1.0, domain_size=12).with_cohort(-3)


class TestReportOps:
    def test_concat(self, proto, rng):
        a = proto.craft_supporting(np.array([0, 1]), rng)
        b = proto.craft_supporting(np.array([2]), rng)
        combined = proto.concat_reports(a, b)
        assert proto.num_reports(combined) == 3

    def test_supporting_any(self, proto, rng):
        crafted = proto.craft_supporting(np.array([5, 9]), rng)
        mask = proto.reports_supporting_any(crafted, [5])
        assert bool(mask[0])  # first report supports 5 by construction

    def test_target_support_counts_matches_loop(self, proto, rng):
        items = rng.integers(0, proto.domain_size, size=100)
        reports = proto.perturb(items, rng)
        targets = [0, 3, 7]
        fast = proto.target_support_counts(reports, targets)
        slow = sum(
            proto.reports_supporting_any(reports, [t]).astype(int) for t in targets
        )
        np.testing.assert_array_equal(fast, slow)

    def test_target_support_counts_chunked_matches_unchunked(self, proto, rng):
        """The bounded-memory target scan is bit-identical to the single
        (n x targets) grid it replaces, across ragged chunk boundaries."""
        items = rng.integers(0, proto.domain_size, size=501)
        reports = proto.perturb(items, rng)
        targets = [1, 4, 8, 11]
        idx = np.asarray(targets, dtype=np.uint64)
        grid = hashing.hash_items(reports.seeds[:, None], idx[None, :], proto.g)
        unchunked = (
            (grid == reports.values[:, None].astype(np.uint64)).sum(axis=1)
        ).astype(np.int64)
        for cells in (1, 7, 501 * len(targets), 10**9):
            chunked = proto.with_chunk_cells(cells)
            np.testing.assert_array_equal(
                chunked.target_support_counts(reports, targets), unchunked
            )
            np.testing.assert_array_equal(
                chunked.reports_supporting_any(reports, targets), unchunked > 0
            )

    def test_empty_targets_and_reports(self, proto, rng):
        reports = proto.perturb(rng.integers(0, proto.domain_size, size=5), rng)
        assert proto.target_support_counts(reports, []).shape == (5,)
        assert not proto.reports_supporting_any(reports, []).any()
        empty = OLHReports(
            seeds=np.empty(0, dtype=np.uint64), values=np.empty(0, dtype=np.int64)
        )
        assert proto.target_support_counts(empty, [1, 2]).shape == (0,)

    def test_select_reports(self, proto, rng):
        reports = proto.perturb(rng.integers(0, proto.domain_size, size=10), rng)
        kept = proto.select_reports(reports, np.arange(10) % 2 == 0)
        assert proto.num_reports(kept) == 5
