"""Edge cases and failure injection across the stack.

Production concerns: degenerate domains, extreme privacy budgets, hostile
recovery inputs, zero/maximal attack strengths, and pathological
poisoned vectors.  Every case must either work or fail with a library
exception — never a silent wrong answer or a bare numpy error.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.projection import is_probability_vector
from repro.exceptions import ReproError


class TestDegenerateDomains:
    def test_minimal_domain_grr(self):
        proto = repro.GRR(epsilon=1.0, domain_size=2)
        reports = proto.perturb(np.array([0, 1, 0]), rng=0)
        assert proto.support_counts(reports).sum() == 3

    def test_minimal_domain_recovery(self):
        proto = repro.GRR(epsilon=1.0, domain_size=2)
        result = repro.recover_frequencies(np.array([0.7, 0.3]), proto)
        assert is_probability_vector(result.frequencies, atol=1e-9)

    def test_single_user_dataset(self):
        data = repro.Dataset(name="one", counts=np.array([1, 0, 0]))
        proto = repro.GRR(epsilon=1.0, domain_size=3)
        trial = repro.run_trial(data, proto, None, rng=0)
        assert trial.n == 1

    def test_olh_g_larger_than_domain(self):
        # g > d is legal (hash range larger than the domain).
        proto = repro.OLH(epsilon=1.0, domain_size=3, g=16)
        reports = proto.perturb(np.array([0, 1, 2]), rng=0)
        counts = proto.support_counts(reports)
        assert counts.shape == (3,)


class TestExtremePrivacyBudgets:
    def test_tiny_epsilon(self):
        proto = repro.GRR(epsilon=1e-4, domain_size=5)
        assert proto.p > proto.q  # still a valid oracle
        result = repro.recover_frequencies(np.full(5, 0.2), proto)
        assert is_probability_vector(result.frequencies, atol=1e-8)

    def test_huge_epsilon(self):
        proto = repro.GRR(epsilon=20.0, domain_size=5)
        reports = proto.perturb(np.full(1000, 3), rng=0)
        # Essentially no perturbation at eps=20.
        assert float(np.mean(reports == 3)) > 0.99

    def test_oue_huge_epsilon_q_tiny(self):
        proto = repro.OUE(epsilon=20.0, domain_size=5)
        assert proto.q < 1e-8


class TestHostileRecoveryInputs:
    def test_nan_poisoned_vector(self, grr):
        poisoned = np.full(grr.domain_size, 1.0 / grr.domain_size)
        poisoned[0] = np.nan
        with pytest.raises(ReproError):
            repro.recover_frequencies(poisoned, grr)

    def test_inf_poisoned_vector(self, grr):
        poisoned = np.full(grr.domain_size, 1.0 / grr.domain_size)
        poisoned[0] = np.inf
        with pytest.raises(ReproError):
            repro.recover_frequencies(poisoned, grr)

    def test_huge_magnitude_vector(self, grr):
        poisoned = np.full(grr.domain_size, 1e12)
        result = repro.recover_frequencies(poisoned, grr)
        assert is_probability_vector(result.frequencies, atol=1e-6)

    def test_all_zero_vector(self, grr):
        result = repro.recover_frequencies(np.zeros(grr.domain_size), grr)
        assert is_probability_vector(result.frequencies, atol=1e-9)

    def test_eta_at_extremes(self, grr):
        poisoned = np.full(grr.domain_size, 1.0 / grr.domain_size)
        for eta in (0.0, 10.0):
            result = repro.recover_frequencies(poisoned, grr, eta=eta)
            assert is_probability_vector(result.frequencies, atol=1e-8)


class TestAttackStrengthExtremes:
    def test_beta_zero_is_noop(self, grr, small_dataset):
        attack = repro.AdaptiveAttack(domain_size=grr.domain_size, rng=0)
        trial = repro.run_trial(small_dataset, grr, attack, beta=0.0, rng=1)
        assert trial.m == 0
        np.testing.assert_array_equal(
            trial.poisoned_frequencies, trial.genuine_frequencies
        )

    def test_beta_near_one_rejected(self, grr, small_dataset):
        attack = repro.AdaptiveAttack(domain_size=grr.domain_size, rng=0)
        with pytest.raises(ReproError):
            repro.run_trial(small_dataset, grr, attack, beta=1.0)

    def test_massive_beta_still_recovers_shape(self, grr, small_dataset):
        attack = repro.MGAAttack(domain_size=grr.domain_size, r=2, rng=0)
        trial = repro.run_trial(small_dataset, grr, attack, beta=0.5, rng=1)
        result = repro.recover_frequencies(
            trial.poisoned_frequencies, grr, eta=1.0, target_items=attack.target_items
        )
        assert is_probability_vector(result.frequencies, atol=1e-8)

    def test_zero_malicious_users_craft(self, grr):
        attack = repro.MGAAttack(domain_size=grr.domain_size, r=2, rng=0)
        reports = attack.craft(grr, 0, rng=1)
        assert grr.num_reports(reports) == 0

    def test_all_targets_attack(self, grr):
        # MGA with every item targeted: legal for crafting, but partial
        # knowledge covering the whole domain must be rejected.
        attack = repro.MGAAttack(
            domain_size=grr.domain_size, targets=np.arange(grr.domain_size)
        )
        reports = attack.craft(grr, 10, rng=0)
        assert grr.num_reports(reports) == 10
        with pytest.raises(ReproError):
            repro.recover_frequencies(
                np.full(grr.domain_size, 1.0 / grr.domain_size),
                grr,
                target_items=np.arange(grr.domain_size),
            )


class TestDetectionEdges:
    def test_single_target(self, grr):
        reports = grr.perturb(np.zeros(100, dtype=np.int64), rng=0)
        from repro.core.detection import detect_and_aggregate

        result = detect_and_aggregate(grr, reports, target_items=[5])
        assert result.kept + result.removed == 100

    def test_targets_cover_whole_domain_grr(self, grr):
        # Every GRR report matches some target -> everything removed.
        from repro.core.detection import detect_and_aggregate

        reports = grr.perturb(np.zeros(50, dtype=np.int64), rng=0)
        with pytest.raises(ReproError):
            detect_and_aggregate(grr, reports, np.arange(grr.domain_size))


class TestHarmonyEdges:
    def test_constant_values(self):
        harmony = repro.Harmony(epsilon=1.0)
        reports = harmony.perturb(np.full(50_000, 1.0), rng=0)
        assert harmony.estimate_mean(reports) == pytest.approx(1.0, abs=0.02)

    def test_empty_values(self):
        harmony = repro.Harmony(epsilon=1.0)
        bits = harmony.discretize(np.array([]), rng=0)
        assert bits.size == 0


class TestNumericalStability:
    def test_projection_with_denormals(self):
        vec = np.array([1e-310, 1e-310, 1.0])
        from repro.core.projection import project_onto_simplex_kkt

        result = project_onto_simplex_kkt(vec)
        assert is_probability_vector(result, atol=1e-9)

    def test_learned_sum_large_domain(self):
        # d = 100k with OUE: the learned sum is huge and negative but
        # finite, and the uniform split stays finite.
        params = repro.OUE(epsilon=0.5, domain_size=100_000).params
        from repro.core.malicious import uniform_malicious_estimate

        poisoned = np.full(100_000, 1e-5)
        estimate = uniform_malicious_estimate(poisoned, params)
        assert np.all(np.isfinite(estimate))
