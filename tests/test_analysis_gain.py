"""Tests for the closed-form MGA frequency-gain analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.gain import (
    expected_gain_from_support,
    mga_expected_gain_grr,
    mga_expected_gain_olh,
    mga_expected_gain_oue,
    users_needed_for_gain,
)
from repro.attacks import MGAAttack
from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR, OUE
from repro.sim import frequency_gain, run_trial

D = 30
DATASET = zipf_dataset(domain_size=D, num_users=60_000, exponent=1.0, rng=9)


class TestClosedForms:
    def test_gain_zero_without_attackers(self):
        params = GRR(epsilon=0.5, domain_size=D).params
        f = np.array([0.01, 0.02])
        assert expected_gain_from_support(np.array([0.5, 0.5]), f, params, 0.0) == 0.0

    def test_gain_monotone_in_beta(self):
        params = GRR(epsilon=0.5, domain_size=D).params
        f = np.array([0.01, 0.02])
        s = np.array([0.5, 0.5])
        g1 = expected_gain_from_support(s, f, params, 0.05)
        g2 = expected_gain_from_support(s, f, params, 0.10)
        assert g2 == pytest.approx(2 * g1)

    def test_validation(self):
        params = GRR(epsilon=0.5, domain_size=D).params
        with pytest.raises(InvalidParameterError):
            expected_gain_from_support(np.array([0.5]), np.array([0.1, 0.2]), params, 0.05)
        with pytest.raises(InvalidParameterError):
            expected_gain_from_support(np.array([0.5]), np.array([0.1]), params, 1.0)

    def test_oue_gain_scales_with_r_grr_gain_does_not(self):
        # MGA-OUE supports all r targets per report, so the total gain is
        # ~linear in r; MGA-GRR splits one supported item over r targets,
        # so the total gain barely moves with r.
        grr_params = GRR(epsilon=0.5, domain_size=D).params
        oue_params = OUE(epsilon=0.5, domain_size=D).params
        oue_small = mga_expected_gain_oue(np.full(2, 0.01), oue_params, 0.05)
        oue_large = mga_expected_gain_oue(np.full(10, 0.01), oue_params, 0.05)
        assert oue_large > 4 * oue_small
        grr_small = mga_expected_gain_grr(np.full(2, 0.01), grr_params, 0.05)
        grr_large = mga_expected_gain_grr(np.full(10, 0.01), grr_params, 0.05)
        assert grr_large < 1.5 * grr_small

    def test_olh_coverage_validation(self):
        params = GRR(epsilon=0.5, domain_size=D).params
        with pytest.raises(InvalidParameterError):
            mga_expected_gain_olh(np.full(5, 0.01), params, 0.05, mean_coverage=0.0)

    def test_olh_gain_between_grr_and_oue_shapes(self):
        params = OUE(epsilon=0.5, domain_size=D).params
        f = np.full(5, 0.01)
        partial = mga_expected_gain_olh(f, params, 0.05, mean_coverage=3.0)
        full = mga_expected_gain_olh(f, params, 0.05, mean_coverage=5.0)
        assert full > partial


class TestEmpiricalMatch:
    def test_grr_gain_matches_simulation(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=5, rng=1)
        beta = 0.05
        targets = attack.target_items
        predicted = mga_expected_gain_grr(
            DATASET.frequencies[targets], proto.params, beta
        )
        gains = []
        for seed in range(20):
            trial = run_trial(DATASET, proto, attack, beta=beta, rng=seed)
            gains.append(
                frequency_gain(
                    trial.genuine_frequencies, trial.poisoned_frequencies, targets
                )
            )
        assert np.mean(gains) == pytest.approx(predicted, rel=0.15)

    def test_oue_gain_matches_simulation(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=5, rng=2)
        beta = 0.05
        targets = attack.target_items
        predicted = mga_expected_gain_oue(
            DATASET.frequencies[targets], proto.params, beta
        )
        gains = []
        for seed in range(20):
            trial = run_trial(DATASET, proto, attack, beta=beta, rng=seed)
            gains.append(
                frequency_gain(
                    trial.genuine_frequencies, trial.poisoned_frequencies, targets
                )
            )
        assert np.mean(gains) == pytest.approx(predicted, rel=0.15)


class TestUsersNeeded:
    def test_inversion_consistency(self):
        params = GRR(epsilon=0.5, domain_size=D).params
        f = np.full(5, 0.01)
        support = np.full(5, 1 / 5)
        n = 100_000
        m = users_needed_for_gain(0.1, f, params, support, n)
        assert m > 0
        beta = m / (n + m)
        realized = expected_gain_from_support(support, f, params, beta)
        assert realized == pytest.approx(0.1, rel=0.01)

    def test_unreachable_gain(self):
        params = GRR(epsilon=0.5, domain_size=D).params
        f = np.full(5, 0.01)
        support = np.full(5, 1 / 5)
        assert users_needed_for_gain(1000.0, f, params, support, 100) == -1

    def test_validation(self):
        params = GRR(epsilon=0.5, domain_size=D).params
        with pytest.raises(InvalidParameterError):
            users_needed_for_gain(0.0, np.full(2, 0.1), params, np.full(2, 0.5), 10)
