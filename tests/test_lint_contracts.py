"""Runtime REP003 tests: live fingerprint-coverage cross-referencing."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.lint.contracts import (
    check_bespoke_fingerprint,
    check_contracts,
    check_fingerprint_object,
)


class TestRealTree:
    def test_every_shipped_class_is_covered(self):
        """The acceptance contract: protocols, attacks, kv and dataset
        classes all fingerprint every result-shaping attribute."""
        assert check_contracts() == []


class _PlantedCallable:
    """Stores a callable the fingerprint silently skips: must be flagged."""

    def __init__(self):
        self.epsilon = 1.0
        self.transform = lambda x: x + 1


class _PlantedAddressRepr:
    """Stores an object whose fingerprint is a memory-address repr."""

    def __init__(self):
        self.epsilon = 1.0
        self.blob = object()


class _ExcludedCallable:
    """The callable is declared execution-only: not a violation."""

    FINGERPRINT_EXCLUDE = frozenset({"transform"})

    def __init__(self):
        self.epsilon = 1.0
        self.transform = lambda x: x + 1


class _RngHolder:
    """Construction-time RNG state is the documented, allowed skip."""

    def __init__(self):
        self.epsilon = 1.0
        self.rng = np.random.default_rng(7)


class TestPlantedViolations:
    def test_callable_attribute_detected(self):
        findings = list(
            check_fingerprint_object("planted.callable", _PlantedCallable())
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "REP003"
        assert "'transform'" in finding.message
        assert finding.path.endswith("test_lint_contracts.py")
        assert finding.line > 0

    def test_address_repr_detected(self):
        findings = list(
            check_fingerprint_object("planted.repr", _PlantedAddressRepr())
        )
        assert len(findings) == 1
        assert "memory-address repr" in findings[0].message

    def test_excluded_callable_accepted(self):
        assert list(check_fingerprint_object("ok.excluded", _ExcludedCallable())) == []

    def test_rng_machinery_accepted(self):
        assert list(check_fingerprint_object("ok.rng", _RngHolder())) == []

    def test_planted_violations_flow_through_check_contracts(self):
        def planted():
            yield "planted.callable", _PlantedCallable()

        findings = check_contracts(extra_objects=planted)
        assert [f.rule for f in findings] == ["REP003"]


@dataclasses.dataclass(frozen=True)
class _GrownPopulation:
    """A bespoke-fingerprint class that grew a field the fingerprint missed."""

    name: str
    frequencies: tuple
    clipping: float  # the drift: added without extending the fingerprint


class TestBespokeFingerprints:
    def test_missing_dataclass_field_detected(self):
        obj = _GrownPopulation(name="x", frequencies=(0.5, 0.5), clipping=1.0)
        stale_fingerprint = {"name": "x", "frequencies": "sha256:..."}
        findings = list(
            check_bespoke_fingerprint("planted.grown", obj, stale_fingerprint)
        )
        assert len(findings) == 1
        assert "'clipping'" in findings[0].message

    def test_complete_fingerprint_accepted(self):
        obj = _GrownPopulation(name="x", frequencies=(0.5, 0.5), clipping=1.0)
        full = {"name": "x", "frequencies": "sha256:...", "clipping": 1.0}
        assert list(check_bespoke_fingerprint("ok.grown", obj, full)) == []

    def test_address_repr_in_bespoke_fingerprint_detected(self):
        obj = _GrownPopulation(name="x", frequencies=(0.5, 0.5), clipping=1.0)
        fingerprint = {
            "name": "x",
            "frequencies": repr(object()),
            "clipping": 1.0,
        }
        findings = list(
            check_bespoke_fingerprint("planted.repr", obj, fingerprint)
        )
        assert len(findings) == 1
        assert "memory-address repr" in findings[0].message


class TestDeterminism:
    def test_contract_scan_is_deterministic(self):
        """Two scans produce identical findings (the scan seeds itself)."""
        assert check_contracts() == check_contracts()

    def test_scan_does_not_touch_os_entropy(self, monkeypatch):
        """Factories pin every rng argument; none may fall back to None."""
        import repro._rng as rng_module

        original = rng_module.as_generator

        def guarded(rng=None):
            assert rng is not None, "contract factory drew OS entropy"
            return original(rng)

        monkeypatch.setattr(rng_module, "as_generator", guarded)
        check_contracts()
