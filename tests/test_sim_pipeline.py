"""Tests for the end-to-end poisoning trial pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AdaptiveAttack, MGAAttack
from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.sim.pipeline import malicious_count, run_trial

D = 16
DATASET = zipf_dataset(domain_size=D, num_users=8_000, exponent=1.0, rng=6)


class TestMaliciousCount:
    def test_paper_relation(self):
        # beta = m/(n+m)  =>  m = beta*n/(1-beta)
        assert malicious_count(1000, 0.05) == round(0.05 * 1000 / 0.95)

    def test_zero_beta(self):
        assert malicious_count(1000, 0.0) == 0

    def test_invalid_beta(self):
        with pytest.raises(InvalidParameterError):
            malicious_count(1000, 1.0)
        with pytest.raises(InvalidParameterError):
            malicious_count(1000, -0.1)

    def test_realized_beta_matches(self):
        n = 100_000
        m = malicious_count(n, 0.05)
        assert m / (n + m) == pytest.approx(0.05, abs=1e-4)

    def test_warns_when_beta_rounds_to_zero(self):
        """beta > 0 with m = 0 silently de-poisons a cell; it must warn."""
        with pytest.warns(RuntimeWarning, match="m=0"):
            assert malicious_count(40, 0.005) == 0

    def test_strict_raises_when_beta_rounds_to_zero(self):
        with pytest.raises(InvalidParameterError, match="m=0"):
            malicious_count(40, 0.005, strict=True)

    def test_no_warning_for_zero_beta_or_positive_m(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert malicious_count(1000, 0.0) == 0
            assert malicious_count(1000, 0.05) > 0


class TestRunTrial:
    def test_unpoisoned_trial(self, grr):
        data = DATASET
        trial = run_trial(data, grr, None, beta=0.05, rng=0)
        assert trial.m == 0
        np.testing.assert_array_equal(
            trial.poisoned_frequencies, trial.genuine_frequencies
        )
        assert trial.malicious_frequencies is None

    def test_population_sizes(self, grr):
        attack = AdaptiveAttack(domain_size=D, rng=0)
        trial = run_trial(DATASET, grr, attack, beta=0.1, rng=1)
        assert trial.n == DATASET.num_users
        assert trial.m == malicious_count(trial.n, 0.1)
        assert trial.beta == pytest.approx(0.1, abs=1e-3)
        assert trial.true_eta == pytest.approx(trial.m / trial.n)

    def test_domain_mismatch_raises(self, grr):
        bad = zipf_dataset(domain_size=D + 1, num_users=100, rng=0)
        with pytest.raises(InvalidParameterError):
            run_trial(bad, grr, None)

    def test_invalid_mode(self, grr):
        with pytest.raises(InvalidParameterError):
            run_trial(DATASET, grr, None, mode="warp")

    def test_fast_mode_has_no_reports(self, grr):
        attack = AdaptiveAttack(domain_size=D, rng=0)
        trial = run_trial(DATASET, grr, attack, beta=0.05, mode="fast", rng=1)
        assert trial.reports is None
        assert trial.malicious_mask is None

    def test_sampled_mode_reports_and_mask(self, protocol):
        attack = AdaptiveAttack(domain_size=D, rng=0)
        trial = run_trial(DATASET, protocol, attack, beta=0.05, mode="sampled", rng=1)
        assert protocol.num_reports(trial.reports) == trial.n + trial.m
        assert trial.malicious_mask.sum() == trial.m
        # Malicious reports are the tail of the concatenation.
        assert trial.malicious_mask[-1]
        assert not trial.malicious_mask[0]

    def test_mixture_identity(self, grr):
        # Poisoned frequencies are exactly the Eq. 14 mixture of the
        # genuine and malicious aggregates (they share support counts).
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        trial = run_trial(DATASET, grr, attack, beta=0.1, rng=2)
        n, m = trial.n, trial.m
        mixed = (n * trial.genuine_frequencies + m * trial.malicious_frequencies) / (n + m)
        np.testing.assert_allclose(trial.poisoned_frequencies, mixed, atol=1e-10)

    def test_deterministic_given_seed(self, grr):
        attack = AdaptiveAttack(domain_size=D, rng=0)
        t1 = run_trial(DATASET, grr, attack, beta=0.05, rng=7)
        t2 = run_trial(DATASET, grr, attack, beta=0.05, rng=7)
        np.testing.assert_array_equal(t1.poisoned_frequencies, t2.poisoned_frequencies)

    def test_fast_and_sampled_agree_statistically(self, grr):
        attack = MGAAttack(domain_size=D, targets=[0], rng=0)
        fast = [
            run_trial(DATASET, grr, attack, beta=0.05, mode="fast", rng=s)
            .poisoned_frequencies[0]
            for s in range(20)
        ]
        sampled = [
            run_trial(DATASET, grr, attack, beta=0.05, mode="sampled", rng=s)
            .poisoned_frequencies[0]
            for s in range(20)
        ]
        assert np.mean(fast) == pytest.approx(np.mean(sampled), abs=0.02)

    def test_genuine_estimate_near_truth(self, protocol):
        trial = run_trial(DATASET, protocol, None, rng=3)
        # Unpoisoned aggregation is unbiased; per-item errors stay within
        # a few theoretical standard deviations.
        sigma = (
            np.sqrt(protocol.theoretical_variance(trial.n, 0.3)) / trial.n
        )
        err = np.abs(trial.genuine_frequencies - trial.true_frequencies).max()
        assert err < 5 * sigma
