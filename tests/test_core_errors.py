"""Tests for the Berry-Esseen approximation error bounds (Thms 4-5)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.errors import (
    BERRY_ESSEEN_C,
    BERRY_ESSEEN_SHIFT,
    berry_esseen_bound,
    genuine_cdf_error_bound,
    malicious_cdf_error_bound,
    per_report_moments,
)
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR


@pytest.fixture()
def params():
    return GRR(epsilon=0.5, domain_size=16).params


class TestPerReportMoments:
    def test_mean_formula(self, params):
        s = 0.3
        moments = per_report_moments(s, params.p, params.q)
        assert moments.mean == pytest.approx((s - params.q) / (params.p - params.q))

    def test_degenerate_zero_variance(self, params):
        # s = 0: the estimate is the constant -q/(p-q).
        moments = per_report_moments(0.0, params.p, params.q)
        assert moments.variance == pytest.approx(0.0, abs=1e-18)
        assert moments.third_absolute == pytest.approx(0.0, abs=1e-18)

    def test_third_moment_positive(self, params):
        moments = per_report_moments(0.5, params.p, params.q)
        assert moments.third_absolute > 0

    def test_invalid_support_prob(self, params):
        with pytest.raises(InvalidParameterError):
            per_report_moments(-0.1, params.p, params.q)

    def test_moments_match_monte_carlo(self, params):
        s = 0.4
        rng = np.random.default_rng(0)
        supported = rng.random(2_000_000) < s
        gap = params.p - params.q
        values = np.where(supported, (1 - params.q) / gap, -params.q / gap)
        moments = per_report_moments(s, params.p, params.q)
        # Tolerances sized to ~4x the Monte-Carlo standard error.
        assert values.mean() == pytest.approx(moments.mean, abs=0.05)
        assert values.var() == pytest.approx(moments.variance, rel=0.02)
        third = np.mean(np.abs(values - values.mean()) ** 3)
        assert third == pytest.approx(moments.third_absolute, rel=0.02)


class TestBounds:
    def test_theorem4_shape(self, params):
        bound = malicious_cdf_error_bound(0.3, params, m=100)
        assert bound > 0

    def test_rate_is_inverse_sqrt(self, params):
        b1 = malicious_cdf_error_bound(0.3, params, m=100)
        b2 = malicious_cdf_error_bound(0.3, params, m=10_000)
        assert b2 == pytest.approx(b1 / 10)

    def test_theorem5_rate(self, params):
        b1 = genuine_cdf_error_bound(0.2, params, n=400)
        b2 = genuine_cdf_error_bound(0.2, params, n=40_000)
        assert b2 == pytest.approx(b1 / 10)

    def test_degenerate_gives_infinity(self, params):
        assert malicious_cdf_error_bound(0.0, params, m=100) == float("inf")

    def test_invalid_num_reports(self, params):
        moments = per_report_moments(0.5, params.p, params.q)
        with pytest.raises(InvalidParameterError):
            berry_esseen_bound(moments, 0)

    def test_constants_match_paper(self):
        assert BERRY_ESSEEN_C == pytest.approx(0.33554)
        assert BERRY_ESSEEN_SHIFT == pytest.approx(0.415)

    def test_bound_dominates_empirical_cdf_distance(self, params):
        """The whole point of Theorems 4-5: the true CDF of the aggregated
        malicious frequency stays within the bound of the normal CDF."""
        s, m = 0.3, 200
        gap = params.p - params.q
        rng = np.random.default_rng(1)
        trials = 4000
        supported = rng.random((trials, m)) < s
        per_report = np.where(supported, (1 - params.q) / gap, -params.q / gap)
        estimates = per_report.mean(axis=1)  # the aggregated frequency f_Y(v)
        moments = per_report_moments(s, params.p, params.q)
        mu = moments.mean
        sigma = moments.std / np.sqrt(m)
        # Empirical sup-distance between the sample CDF and N(mu, sigma^2).
        xs = np.sort(estimates)
        empirical = np.arange(1, trials + 1) / trials
        normal = stats.norm.cdf(xs, loc=mu, scale=sigma)
        distance = float(np.max(np.abs(empirical - normal)))
        bound = malicious_cdf_error_bound(s, params, m)
        # Allow Monte-Carlo slack (DKW fluctuation ~ sqrt(ln/2/trials)).
        slack = np.sqrt(np.log(2 / 0.01) / (2 * trials))
        assert distance <= bound + slack

    def test_bound_decreases_in_support_prob_symmetry(self, params):
        # The bound is driven by skewness: symmetric (s=0.5) beats extreme s.
        mid = malicious_cdf_error_bound(0.5, params, m=100)
        edge = malicious_cdf_error_bound(0.01, params, m=100)
        assert mid < edge
