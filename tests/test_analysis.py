"""Tests for the closed-form analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    compare_protocols,
    eta_mismatch_bias,
    expected_poisoned_frequency,
    generic_count_variance,
    grr_count_variance,
    grr_crossover_domain_size,
    learned_sums_by_protocol,
    matched_eta,
    oue_count_variance,
    olh_count_variance,
    poisoning_bias,
)
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR, OLH, OUE


class TestVarianceFormulas:
    def test_grr_matches_protocol_method(self):
        proto = GRR(epsilon=0.5, domain_size=50)
        assert grr_count_variance(0.5, 50, 1000, 0.2) == pytest.approx(
            proto.theoretical_variance(1000, 0.2)
        )

    def test_oue_matches_protocol_method(self):
        proto = OUE(epsilon=0.5, domain_size=50)
        assert oue_count_variance(0.5, 1000) == pytest.approx(
            proto.theoretical_variance(1000)
        )

    def test_olh_equals_oue_leading_term(self):
        assert olh_count_variance(0.5, 1000) == oue_count_variance(0.5, 1000)

    def test_generic_variance_positive(self):
        params = GRR(epsilon=0.5, domain_size=10).params
        assert generic_count_variance(params, 100, 0.3) > 0

    def test_generic_variance_validation(self):
        params = GRR(epsilon=0.5, domain_size=10).params
        with pytest.raises(InvalidParameterError):
            generic_count_variance(params, 0, 0.3)
        with pytest.raises(InvalidParameterError):
            generic_count_variance(params, 10, 1.5)

    def test_generic_matches_empirical_oue(self):
        # The unified support model gives the exact finite-n variance.
        proto = OUE(epsilon=1.0, domain_size=8)
        n, f = 3000, 0.5
        counts = np.zeros(8, dtype=np.int64)
        counts[0] = int(f * n)
        counts[1] = n - counts[0]
        estimates = [
            proto.estimate_counts(proto.sample_genuine_counts(counts, s), n)[0]
            for s in range(400)
        ]
        theory = generic_count_variance(proto.params, n, f)
        assert np.var(estimates) == pytest.approx(theory, rel=0.3)


class TestComparison:
    def test_small_domain_grr_wins(self):
        comparison = compare_protocols(epsilon=1.0, domain_size=3, n=1000)
        assert comparison.best() == "grr"

    def test_large_domain_grr_loses(self):
        comparison = compare_protocols(epsilon=0.5, domain_size=500, n=1000)
        assert comparison.best() in ("oue", "olh")

    def test_crossover_formula(self):
        import math

        eps = 0.8
        crossover = grr_crossover_domain_size(eps)
        assert crossover == pytest.approx(3 * math.exp(eps) + 2)
        below = compare_protocols(eps, int(crossover) - 2, 1000)
        above = compare_protocols(eps, int(crossover) + 3, 1000)
        assert below.grr < below.oue
        assert above.grr > above.oue


class TestPoisoningTheory:
    def _setup(self):
        params = GRR(epsilon=0.5, domain_size=8).params
        truth = np.array([0.3, 0.2, 0.2, 0.1, 0.1, 0.05, 0.03, 0.02])
        attack = np.zeros(8)
        attack[0] = 1.0
        return params, truth, attack

    def test_expected_poisoned_mixture(self):
        params, truth, attack = self._setup()
        expected = expected_poisoned_frequency(truth, attack, params, beta=0.0)
        np.testing.assert_allclose(expected, truth)

    def test_poisoning_bias_zero_without_attackers(self):
        params, truth, attack = self._setup()
        np.testing.assert_allclose(
            poisoning_bias(truth, attack, params, beta=0.0), 0.0, atol=1e-12
        )

    def test_bias_direction(self):
        params, truth, attack = self._setup()
        bias = poisoning_bias(truth, attack, params, beta=0.1)
        assert bias[0] > 0  # promoted item gains
        assert np.all(bias[1:] < 0)  # others lose

    def test_bias_matches_empirical(self):
        from repro.attacks import AdaptiveAttack
        from repro.datasets import Dataset
        from repro.sim import run_trial

        params_proto = GRR(epsilon=0.5, domain_size=8)
        truth_counts = np.array([3000, 2000, 2000, 1000, 1000, 500, 300, 200])
        data = Dataset(name="t", counts=truth_counts)
        attack_probs = np.zeros(8)
        attack_probs[0] = 1.0
        attack = AdaptiveAttack(domain_size=8, probabilities=attack_probs)
        beta = 0.1
        trials = [
            run_trial(data, params_proto, attack, beta=beta, rng=s).poisoned_frequencies
            for s in range(60)
        ]
        empirical = np.mean(trials, axis=0)
        expected = expected_poisoned_frequency(
            data.frequencies, attack_probs, params_proto.params, beta
        )
        np.testing.assert_allclose(empirical, expected, atol=0.02)

    def test_shape_mismatch(self):
        params, truth, _ = self._setup()
        with pytest.raises(InvalidParameterError):
            expected_poisoned_frequency(truth, np.zeros(5), params, 0.1)

    def test_beta_validation(self):
        params, truth, attack = self._setup()
        with pytest.raises(InvalidParameterError):
            expected_poisoned_frequency(truth, attack, params, 1.0)


class TestEtaMismatch:
    def test_zero_at_matched_eta(self):
        params = GRR(epsilon=0.5, domain_size=8).params
        truth = np.full(8, 1 / 8)
        attack = np.zeros(8)
        attack[2] = 1.0
        beta = 0.05
        residual = eta_mismatch_bias(truth, attack, params, beta, matched_eta(beta))
        np.testing.assert_allclose(residual, 0.0, atol=1e-12)

    def test_grows_with_mismatch(self):
        params = GRR(epsilon=0.5, domain_size=8).params
        truth = np.full(8, 1 / 8)
        attack = np.zeros(8)
        attack[2] = 1.0
        beta = 0.05
        small = np.abs(eta_mismatch_bias(truth, attack, params, beta, 0.06)).max()
        large = np.abs(eta_mismatch_bias(truth, attack, params, beta, 0.4)).max()
        assert large > small

    def test_matched_eta_formula(self):
        assert matched_eta(0.05) == pytest.approx(0.05 / 0.95)
        assert matched_eta(0.0) == 0.0

    def test_matched_eta_validation(self):
        with pytest.raises(InvalidParameterError):
            matched_eta(1.0)

    def test_negative_eta_rejected(self):
        params = GRR(epsilon=0.5, domain_size=8).params
        with pytest.raises(InvalidParameterError):
            eta_mismatch_bias(np.full(8, 1 / 8), np.full(8, 1 / 8), params, 0.05, -0.1)


class TestLearnedSums:
    def test_by_protocol(self):
        protos = [
            GRR(epsilon=0.5, domain_size=102).params,
            OUE(epsilon=0.5, domain_size=102).params,
            OLH(epsilon=0.5, domain_size=102).params,
        ]
        sums = learned_sums_by_protocol(protos)
        assert sums["grr"] == pytest.approx(1.0)
        assert sums["oue"] < 0
        assert "olh" in sums
