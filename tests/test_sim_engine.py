"""Tests for the parallel, memory-bounded experiment engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AdaptiveAttack, MGAAttack
from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.sim import engine
from repro.sim.engine import (
    MetricStats,
    Welford,
    aggregate_metrics,
    chunked_genuine_counts,
    chunked_malicious_counts,
    chunked_support_counts,
    parallel_map,
    resolve_workers,
    run_chunked_trial,
)
from repro.sim.experiment import evaluate_recovery
from repro.sim.pipeline import run_trial

D = 16
DATASET = zipf_dataset(domain_size=D, num_users=10_000, exponent=1.0, rng=8)


class TestWelford:
    def test_matches_numpy(self):
        values = np.random.default_rng(0).normal(3.0, 2.0, size=97)
        acc = Welford()
        for v in values:
            acc.add(float(v))
        assert acc.count == values.size
        assert acc.mean == pytest.approx(float(np.mean(values)), rel=1e-12)
        assert acc.variance == pytest.approx(float(np.var(values, ddof=1)), rel=1e-12)

    def test_merge_equals_sequential(self):
        values = np.random.default_rng(1).normal(size=50)
        whole = Welford()
        for v in values:
            whole.add(float(v))
        left, right = Welford(), Welford()
        for v in values[:17]:
            left.add(float(v))
        for v in values[17:]:
            right.add(float(v))
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean, rel=1e-12)
        assert left.variance == pytest.approx(whole.variance, rel=1e-12)

    def test_merge_empty_sides(self):
        acc = Welford()
        acc.add(2.0)
        acc.merge(Welford())
        assert acc.count == 1 and acc.mean == 2.0
        empty = Welford()
        empty.merge(acc)
        assert empty.count == 1 and empty.mean == 2.0

    def test_small_counts_have_no_variance(self):
        acc = Welford()
        assert acc.variance is None and acc.stderr is None
        acc.add(1.0)
        assert acc.variance is None
        snap = acc.snapshot()
        assert isinstance(snap, MetricStats)
        assert snap.ci95_halfwidth is None

    def test_ci95(self):
        acc = Welford()
        for v in (1.0, 2.0, 3.0, 4.0):
            acc.add(v)
        snap = acc.snapshot()
        assert snap.ci95_halfwidth == pytest.approx(1.96 * snap.stderr)


class TestAggregateMetrics:
    def test_missing_metrics_are_absent(self):
        stats = aggregate_metrics([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert stats["a"].count == 2 and stats["a"].mean == 2.0
        assert stats["b"].count == 1
        assert "c" not in stats


def _double(x: float) -> float:
    """Module-level doubling helper (picklable across the pool)."""
    return 2.0 * x


class TestParallelMap:
    def test_inline_and_pool_agree(self):
        tasks = [float(i) for i in range(7)]
        assert parallel_map(_double, tasks, workers=1) == parallel_map(
            _double, tasks, workers=3
        )

    def test_order_preserved(self):
        assert parallel_map(_double, [3.0, 1.0, 2.0], workers=2) == [6.0, 2.0, 4.0]

    def test_workers_validation(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(InvalidParameterError):
            resolve_workers(-2)


class TestAvailableCpuCount:
    """``workers=0`` must mean the CPUs *available to this process* —
    affinity and cgroup-quota aware — not the machine total, so CI
    containers and shared shard hosts are never oversubscribed."""

    @pytest.fixture(autouse=True)
    def _no_host_quota(self, monkeypatch):
        """Pin the host's own cgroup quota out of these tests."""
        monkeypatch.setattr(engine, "_cgroup_cpu_quota", lambda root="": None)

    def test_prefers_process_cpu_count(self, monkeypatch):
        monkeypatch.setattr(
            engine.os, "process_cpu_count", lambda: 3, raising=False
        )
        assert engine.available_cpu_count() == 3
        assert resolve_workers(0) == 3
        assert resolve_workers(None) == 3

    def test_affinity_mask_beats_cpu_count(self, monkeypatch):
        monkeypatch.delattr(engine.os, "process_cpu_count", raising=False)
        monkeypatch.setattr(
            engine.os, "sched_getaffinity", lambda pid: {0, 1}, raising=False
        )
        monkeypatch.setattr(engine.os, "cpu_count", lambda: 64)
        assert engine.available_cpu_count() == 2, (
            "a taskset/cpuset-restricted process must not claim every core"
        )
        assert resolve_workers(0) == 2

    def test_cgroup_quota_caps_the_affinity_count(self, monkeypatch):
        """A --cpus=2 container keeps a full affinity mask: the CFS quota
        must bound the count anyway."""
        monkeypatch.delattr(engine.os, "process_cpu_count", raising=False)
        monkeypatch.setattr(
            engine.os, "sched_getaffinity", lambda pid: set(range(64)), raising=False
        )
        monkeypatch.setattr(engine, "_cgroup_cpu_quota", lambda root="": 2)
        assert engine.available_cpu_count() == 2
        assert resolve_workers(0) == 2

    def test_cpu_count_is_the_last_resort(self, monkeypatch):
        monkeypatch.delattr(engine.os, "process_cpu_count", raising=False)
        monkeypatch.delattr(engine.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(engine.os, "cpu_count", lambda: 5)
        assert engine.available_cpu_count() == 5

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(engine.os, "process_cpu_count", raising=False)
        monkeypatch.delattr(engine.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(engine.os, "cpu_count", lambda: None)
        assert engine.available_cpu_count() == 1

    def test_explicit_workers_bypass_detection(self, monkeypatch):
        monkeypatch.setattr(
            engine.os, "process_cpu_count", lambda: 2, raising=False
        )
        assert resolve_workers(7) == 7


class TestCgroupCpuQuota:
    """Parsing of the cgroup v2 / v1 CFS quota files."""

    def _v2(self, tmp_path, content):
        (tmp_path / "cpu.max").write_text(content, encoding="ascii")
        return engine._cgroup_cpu_quota(root=str(tmp_path))

    def test_v2_quota(self, tmp_path):
        assert self._v2(tmp_path, "200000 100000\n") == 2

    def test_v2_fractional_quota_rounds_up(self, tmp_path):
        assert self._v2(tmp_path, "150000 100000\n") == 2
        assert self._v2(tmp_path, "50000 100000\n") == 1

    def test_v2_unlimited(self, tmp_path):
        assert self._v2(tmp_path, "max 100000\n") is None

    def test_v2_garbage_is_no_quota(self, tmp_path):
        assert self._v2(tmp_path, "not-a-number\n") is None

    def test_v1_quota(self, tmp_path):
        base = tmp_path / "cpu"
        base.mkdir()
        (base / "cpu.cfs_quota_us").write_text("300000\n", encoding="ascii")
        (base / "cpu.cfs_period_us").write_text("100000\n", encoding="ascii")
        assert engine._cgroup_cpu_quota(root=str(tmp_path)) == 3

    def test_v1_unlimited(self, tmp_path):
        base = tmp_path / "cpu"
        base.mkdir()
        (base / "cpu.cfs_quota_us").write_text("-1\n", encoding="ascii")
        (base / "cpu.cfs_period_us").write_text("100000\n", encoding="ascii")
        assert engine._cgroup_cpu_quota(root=str(tmp_path)) is None

    def test_missing_files_is_no_quota(self, tmp_path):
        assert engine._cgroup_cpu_quota(root=str(tmp_path)) is None


class TestParallelDeterminism:
    """workers=1 and workers=N must produce bit-identical evaluations."""

    @pytest.mark.parametrize("mode", ["fast", "chunked"])
    def test_workers_bit_identical(self, grr, mode):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        kwargs = dict(beta=0.05, eta=0.2, trials=4, mode=mode, rng=77)
        if mode == "chunked":
            kwargs["chunk_users"] = 1_000
        serial = evaluate_recovery(DATASET, grr, attack, workers=1, **kwargs)
        pooled = evaluate_recovery(DATASET, grr, attack, workers=4, **kwargs)
        for metric in (
            "mse_before",
            "mse_recover",
            "mse_recover_star",
            "fg_before",
            "fg_recover",
            "mse_malicious_estimate",
        ):
            assert getattr(serial, metric) == getattr(pooled, metric), metric
        assert serial.stats.keys() == pooled.stats.keys()
        for key in serial.stats:
            assert serial.stats[key] == pooled.stats[key], key

    def test_sampled_mode_parallel(self, grr):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        serial = evaluate_recovery(
            DATASET, grr, attack, trials=2, mode="sampled", with_detection=True,
            rng=5, workers=1,
        )
        pooled = evaluate_recovery(
            DATASET, grr, attack, trials=2, mode="sampled", with_detection=True,
            rng=5, workers=2,
        )
        assert serial.mse_detection == pooled.mse_detection
        assert serial.fg_detection == pooled.fg_detection

    def test_stats_carry_confidence_intervals(self, grr):
        attack = AdaptiveAttack(domain_size=D, rng=1)
        ev = evaluate_recovery(DATASET, grr, attack, trials=5, rng=3)
        assert ev.stats["mse_before"].count == 5
        assert ev.ci95("mse_before") is not None and ev.ci95("mse_before") > 0
        assert ev.ci95("nonexistent") is None


class TestChunkedSupportCounts:
    """Chunked aggregation must equal the unchunked path exactly."""

    N = 1_037  # deliberately not divisible by the chunk size

    @pytest.mark.parametrize("chunk", [100, 256, 1_037, 5_000])
    def test_oue_equals_unchunked(self, oue, chunk):
        items = np.random.default_rng(3).integers(0, D, size=self.N)
        reports = oue.perturb(items, np.random.default_rng(4))
        np.testing.assert_array_equal(
            chunked_support_counts(oue, reports, chunk), oue.support_counts(reports)
        )

    @pytest.mark.parametrize("chunk", [100, 256, 1_037, 5_000])
    def test_olh_equals_unchunked(self, olh, chunk):
        items = np.random.default_rng(3).integers(0, D, size=self.N)
        reports = olh.perturb(items, np.random.default_rng(4))
        np.testing.assert_array_equal(
            chunked_support_counts(olh, reports, chunk), olh.support_counts(reports)
        )

    def test_grr_equals_unchunked(self, grr):
        items = np.random.default_rng(3).integers(0, D, size=self.N)
        reports = grr.perturb(items, np.random.default_rng(4))
        np.testing.assert_array_equal(
            chunked_support_counts(grr, reports, 64), grr.support_counts(reports)
        )

    def test_invalid_chunk(self, oue):
        reports = oue.perturb(np.zeros(4, dtype=np.int64), 0)
        with pytest.raises(InvalidParameterError):
            chunked_support_counts(oue, reports, 0)


class TestChunkedGenuineCounts:
    def test_population_conserved_for_grr(self, grr):
        # Every GRR report supports exactly one item, so the chunked total
        # must conserve the population even across ragged chunk boundaries.
        counts = chunked_genuine_counts(grr, DATASET.counts, rng=0, chunk_users=999)
        assert int(counts.sum()) == DATASET.num_users

    def test_deterministic(self, oue):
        a = chunked_genuine_counts(oue, DATASET.counts, rng=11, chunk_users=777)
        b = chunked_genuine_counts(oue, DATASET.counts, rng=11, chunk_users=777)
        np.testing.assert_array_equal(a, b)

    def test_estimates_recover_truth(self, oue):
        counts = chunked_genuine_counts(oue, DATASET.counts, rng=2, chunk_users=1_000)
        est = oue.estimate_frequencies(counts, DATASET.num_users)
        assert float(np.mean((est - DATASET.frequencies) ** 2)) < 5e-3


class TestChunkedTrial:
    def test_matches_run_trial_dispatch(self, oue):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        direct = run_chunked_trial(DATASET, oue, attack, beta=0.05, rng=9, chunk_users=640)
        via_mode = run_trial(
            DATASET, oue, attack, beta=0.05, mode="chunked", rng=9, chunk_users=640
        )
        np.testing.assert_array_equal(
            direct.poisoned_frequencies, via_mode.poisoned_frequencies
        )
        np.testing.assert_array_equal(
            direct.malicious_frequencies, via_mode.malicious_frequencies
        )

    def test_no_reports_retained(self, oue):
        trial = run_chunked_trial(DATASET, oue, None, beta=0.0, rng=1, chunk_users=512)
        assert trial.reports is None and trial.malicious_mask is None

    def test_malicious_chunking_covers_all_users(self, grr):
        attack = MGAAttack(domain_size=D, targets=[2], rng=0)
        counts = chunked_malicious_counts(grr, attack, 1_003, rng=0, chunk_users=100)
        # Every crafted GRR report is the target item itself.
        assert counts[2] == 1_003 and int(counts.sum()) == 1_003

    def test_non_iid_attacks_are_not_split(self, grr):
        """Regression: MultiAttacker's deterministic weight split re-rounds
        per craft call, so chunking its crafting would starve low-weight
        attackers; the chunked path must craft it in one batch."""
        from repro.attacks import MultiAttacker

        attack = MultiAttacker(
            [
                MGAAttack(domain_size=D, targets=[1], rng=0),
                MGAAttack(domain_size=D, targets=[2], rng=0),
            ],
            weights=[0.99, 0.01],
        )
        assert not attack.iid_reports
        counts = chunked_malicious_counts(grr, attack, 1_000, rng=0, chunk_users=10)
        # The 1%-weight attacker keeps its 10 users despite 10-user chunks.
        assert counts[2] == 10 and counts[1] == 990

    def test_non_iid_crafted_batch_then_chunked_grid(self, oue):
        """Regression pin (ISSUE 3): an ``iid_reports=False`` attack is
        crafted in exactly ONE batch of all ``m`` reports — only the
        support counting is chunked — so the result is bit-identical to
        aggregating the single crafted batch directly."""
        from repro.attacks import MultiAttacker

        calls: list[int] = []

        class _Recording(MultiAttacker):
            """MultiAttacker that logs every craft batch size."""

            def craft(self, protocol, m, rng=None):
                """Record ``m`` then delegate."""
                calls.append(m)
                return super().craft(protocol, m, rng)

        def make():
            return _Recording(
                [
                    MGAAttack(domain_size=D, targets=[1], rng=0),
                    MGAAttack(domain_size=D, targets=[2], rng=0),
                ],
                weights=[0.99, 0.01],
            )

        counts = chunked_malicious_counts(oue, make(), 1_000, rng=5, chunk_users=64)
        assert calls == [1_000], "non-iid attack must be crafted exactly once"
        expected = oue.support_counts(
            make().craft(oue, 1_000, np.random.default_rng(5))
        )
        np.testing.assert_array_equal(counts, expected)

    def test_ipa_inherits_iid_flag(self):
        from repro.attacks import InputPoisoningAttack, MultiAttacker

        iid_inner = MGAAttack(domain_size=D, targets=[1], rng=0)
        assert InputPoisoningAttack(iid_inner).iid_reports
        multi = MultiAttacker([iid_inner])
        assert not InputPoisoningAttack(multi).iid_reports

    def test_chunk_users_rejected_outside_chunked_mode(self, grr):
        with pytest.raises(InvalidParameterError):
            run_trial(DATASET, grr, None, mode="fast", rng=0, chunk_users=100)

    def test_chunk_users_incompatible_with_sampled_cell(self, grr):
        with pytest.raises(InvalidParameterError):
            evaluate_recovery(
                DATASET, grr, None, trials=1, mode="sampled", chunk_users=100
            )

    def test_chunk_users_upgrades_fast_mode(self, grr):
        # chunk_users on a fast-mode cell silently selects the exact path.
        ev = evaluate_recovery(DATASET, grr, None, trials=1, rng=0, chunk_users=5_000)
        assert ev.mse_before > 0


class TestStrictBeta:
    def test_warns_when_m_rounds_to_zero(self, grr):
        tiny = zipf_dataset(domain_size=D, num_users=40, exponent=1.0, rng=1)
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        with pytest.warns(RuntimeWarning, match="m=0"):
            evaluate_recovery(tiny, grr, attack, beta=0.005, trials=1, rng=0)

    def test_strict_raises(self, grr):
        tiny = zipf_dataset(domain_size=D, num_users=40, exponent=1.0, rng=1)
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        with pytest.raises(InvalidParameterError, match="m=0"):
            evaluate_recovery(
                tiny, grr, attack, beta=0.005, trials=1, rng=0, strict_beta=True
            )


class TestBoundScan:
    """The engine's chunk_users knob caps OLH's internal grid budget."""

    def test_caps_olh_scan_budget(self, olh):
        bounded = engine._bound_scan(olh, 10)
        assert bounded.chunk_cells == 10 * olh.domain_size
        assert olh.chunk_cells == olh._CHUNK_CELLS  # original untouched

    def test_no_op_when_chunk_is_larger(self, olh):
        assert engine._bound_scan(olh, 10**9) is olh

    def test_pass_through_for_protocols_without_hook(self, grr):
        assert engine._bound_scan(grr, 10) is grr

    def test_bounded_scan_results_identical(self, olh):
        items = np.random.default_rng(3).integers(0, D, size=1_037)
        reports = olh.perturb(items, np.random.default_rng(4))
        np.testing.assert_array_equal(
            chunked_support_counts(olh, reports, 5), olh.support_counts(reports)
        )


class TestEngineDefaults:
    def test_default_chunk_size_is_bounded(self):
        assert engine.DEFAULT_CHUNK_USERS >= 1
