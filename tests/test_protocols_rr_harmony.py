"""Tests for binary randomized response and Harmony mean estimation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.protocols import BinaryRandomizedResponse, Harmony
from repro.protocols.rr import sample_binary_reports


class TestBinaryRR:
    def test_probabilities(self):
        rr = BinaryRandomizedResponse(epsilon=1.0)
        e = math.exp(1.0)
        assert rr.p == pytest.approx(e / (e + 1))
        assert rr.q == pytest.approx(1 / (e + 1))
        assert rr.p + rr.q == pytest.approx(1.0)

    def test_keep_probability_static(self):
        assert BinaryRandomizedResponse.keep_probability(1.0) == pytest.approx(
            math.exp(1.0) / (math.exp(1.0) + 1)
        )

    def test_flip_probability(self):
        rr = BinaryRandomizedResponse(epsilon=2.0)
        assert rr.flip_probability() == pytest.approx(rr.q)

    def test_debias_mean_recovers_truth(self):
        rr = BinaryRandomizedResponse(epsilon=1.0)
        rng = np.random.default_rng(0)
        true_bits = (rng.random(200_000) < 0.3).astype(np.int64)
        reported = rr.perturb_bits(true_bits, rng)
        assert rr.debias_mean(reported) == pytest.approx(0.3, abs=0.01)

    def test_sample_binary_reports_shape(self):
        reports = sample_binary_reports(np.array([0, 1, 1]), epsilon=1.0, rng=0)
        assert reports.shape == (3,)
        assert set(np.unique(reports)).issubset({0, 1})


class TestHarmony:
    def test_discretize_unbiased(self):
        harmony = Harmony(epsilon=1.0)
        rng = np.random.default_rng(1)
        values = np.full(200_000, 0.4)
        bits = harmony.discretize(values, rng)
        # Pr[bit=1] = (1+0.4)/2 = 0.7
        assert float(bits.mean()) == pytest.approx(0.7, abs=0.01)

    def test_discretize_bounds_enforced(self):
        harmony = Harmony(epsilon=1.0)
        with pytest.raises(InvalidParameterError):
            harmony.discretize(np.array([1.5]))

    def test_end_to_end_mean_estimate(self):
        harmony = Harmony(epsilon=2.0)
        rng = np.random.default_rng(2)
        values = rng.uniform(-0.5, 0.9, size=300_000)
        reports = harmony.perturb(values, rng)
        estimate = harmony.estimate_mean(reports)
        assert estimate == pytest.approx(float(values.mean()), abs=0.02)

    def test_mean_from_frequencies(self):
        assert Harmony.mean_from_frequencies(np.array([0.25, 0.75])) == pytest.approx(0.5)
        assert Harmony.mean_from_frequencies(np.array([0.5, 0.5])) == pytest.approx(0.0)

    def test_mean_from_frequencies_shape_check(self):
        with pytest.raises(InvalidParameterError):
            Harmony.mean_from_frequencies(np.array([0.2, 0.3, 0.5]))

    def test_craft_poison_reports(self):
        harmony = Harmony(epsilon=1.0)
        reports = harmony.craft_poison_reports(100, bit=1)
        assert reports.shape == (100,)
        assert np.all(reports == 1)

    def test_craft_poison_invalid_bit(self):
        with pytest.raises(InvalidParameterError):
            Harmony(epsilon=1.0).craft_poison_reports(10, bit=2)

    def test_poisoning_shifts_mean_up(self):
        harmony = Harmony(epsilon=1.0)
        rng = np.random.default_rng(3)
        values = np.full(50_000, -0.4)
        genuine = harmony.perturb(values, rng)
        poison = harmony.craft_poison_reports(5_000, bit=1)
        combined = np.concatenate([genuine, poison])
        assert harmony.estimate_mean(combined) > harmony.estimate_mean(genuine)

    def test_params_exposes_rr(self):
        harmony = Harmony(epsilon=1.0)
        assert harmony.params.domain_size == 2
        assert harmony.params.name == "rr"
