"""Tests for the Detection comparison baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import MGAAttack
from repro.core.detection import detect_and_aggregate
from repro.datasets import zipf_dataset
from repro.exceptions import RecoveryError
from repro.protocols import GRR, OLH, OUE
from repro.sim import frequency_gain, mse, run_trial

D = 20
DATASET = zipf_dataset(domain_size=D, num_users=20_000, exponent=1.0, rng=2)


class TestDetectionMechanics:
    def test_grr_removes_exactly_target_reports(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        reports = np.array([0, 1, 2, 1, 1, 5])
        result = detect_and_aggregate(proto, reports, target_items=[1])
        assert result.removed == 3
        assert result.kept == 3
        assert result.removal_rate == pytest.approx(0.5)

    def test_oue_threshold_uses_half_targets(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        targets = [0, 1, 2, 3]
        # One report supports all targets (MGA signature), one supports a
        # single target (genuine-looking), one supports none.
        bits = proto.craft_bit_vectors([[0, 1, 2, 3], [0], [7]])
        result = detect_and_aggregate(proto, bits, target_items=targets)
        assert result.removed == 1
        assert result.kept == 2

    def test_custom_fraction(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        targets = [0, 1, 2, 3]
        bits = proto.craft_bit_vectors([[0, 1, 2, 3], [0], [7]])
        strict = detect_and_aggregate(
            proto, bits, target_items=targets, min_support_fraction=0.25
        )
        assert strict.removed == 2  # both target-touching reports go

    def test_empty_targets_rejected(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        with pytest.raises(RecoveryError):
            detect_and_aggregate(proto, np.array([0, 1]), target_items=[])

    def test_bad_fraction_rejected(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        with pytest.raises(RecoveryError):
            detect_and_aggregate(
                proto, np.array([0, 1]), target_items=[0], min_support_fraction=0.0
            )

    def test_all_removed_raises(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        with pytest.raises(RecoveryError):
            detect_and_aggregate(proto, np.array([1, 1, 1]), target_items=[1])


class TestDetectionBehaviour:
    @pytest.mark.parametrize("proto_cls", [GRR, OUE, OLH])
    def test_detection_removes_most_mga_reports(self, proto_cls):
        proto = proto_cls(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=5, rng=0)
        trial = run_trial(DATASET, proto, attack, beta=0.1, mode="sampled", rng=1)
        result = detect_and_aggregate(proto, trial.reports, attack.target_items)
        # Flagging recall on the actual malicious tail must be high.
        support = proto.target_support_counts(trial.reports, attack.target_items)
        import math

        cap = min(attack.target_items.size, proto.max_report_support())
        threshold = max(1, math.ceil(0.5 * cap))
        flagged = support >= threshold
        malicious_flagged = flagged[trial.malicious_mask].mean()
        assert malicious_flagged > 0.9

    def test_detection_over_removes_genuine_grr(self):
        # The paper's criticism: genuine users holding target items are
        # removed too, deflating target frequencies (negative FG).
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, targets=[0], rng=0)  # head item
        trial = run_trial(DATASET, proto, attack, beta=0.05, mode="sampled", rng=1)
        result = detect_and_aggregate(proto, trial.reports, attack.target_items)
        fg = frequency_gain(
            trial.genuine_frequencies, result.frequencies, attack.target_items
        )
        assert fg < 0  # over-correction

    def test_ldprecover_beats_detection_in_mse(self):
        from repro.core.recover import recover_frequencies

        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=5, rng=0)
        det_mse, rec_mse = [], []
        for seed in range(5):
            trial = run_trial(DATASET, proto, attack, beta=0.05, mode="sampled", rng=seed)
            detection = detect_and_aggregate(proto, trial.reports, attack.target_items)
            recovery = recover_frequencies(
                trial.poisoned_frequencies, proto, target_items=attack.target_items
            )
            det_mse.append(mse(trial.true_frequencies, detection.frequencies))
            rec_mse.append(mse(trial.true_frequencies, recovery.frequencies))
        assert np.mean(rec_mse) < np.mean(det_mse)
