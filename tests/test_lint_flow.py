"""Tests for the REP2xx whole-program flow rules and their machinery.

Four layers, mirroring the subsystem:

* **fixtures** — every REP201–REP205 fixture under
  ``tests/fixtures/lint/flow/`` is run through the real runner with its
  rule selected and compared (line, rule)-exactly against the inline
  ``LINT`` markers, so the planted violations *and* the clean twins are
  both pinned;
* **call graph** — :class:`repro.lint.callgraph.ProjectIndex` unit tests
  for alias resolution, re-export chains, assignment aliases, method
  attribution and the subclass closure;
* **runner plumbing** — tier gating, fixtures-dir skipping, diff-aware
  ``changed_only``, scan determinism;
* **output & baseline** — SARIF 2.1.0 rendering + the structural
  validator, and the occurrence-slot baseline matcher.
"""

from __future__ import annotations

import json
import pathlib
import re
import shutil
import subprocess

import pytest

from repro.exceptions import InvalidParameterError
from repro.lint import BaselineEntry, Finding, apply_baseline, lint_paths, load_baseline
from repro.lint.callgraph import ModuleTable, ProjectContext, ProjectIndex, module_name_for
from repro.lint.context import ModuleContext
from repro.lint.runner import discover_files, file_tier
from repro.lint.sarif import sarif_document, validate_sarif

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FLOW_FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint" / "flow"

_MARKER = re.compile(r"#\s*LINT:\s*([A-Z0-9,\s]+)")

#: fixture -> (rule under test, companion modules scanned alongside).
FLOW_CASES = {
    "rep201.py": ("REP201", ()),
    "rep202.py": ("REP202", ()),
    "rep203.py": ("REP203", ()),
    "rep204.py": ("REP204", ()),
    "rep205.py": ("REP205", ("rep205_helpers.py",)),
}


def _markers(paths) -> list[tuple[str, int, str]]:
    out = []
    for path in paths:
        for number, line in enumerate(path.read_text().splitlines(), start=1):
            match = _MARKER.search(line)
            if match:
                for rule in match.group(1).split(","):
                    out.append((path.name, number, rule.strip()))
    return sorted(out)


def _findings(paths, select) -> list[tuple[str, int, str]]:
    report = lint_paths(
        paths, select=select, use_baseline=False, run_contracts=False
    )
    return sorted(
        (pathlib.Path(f.path).name, f.line, f.rule) for f in report.findings
    )


class TestFlowFixtures:
    @pytest.mark.parametrize("name", sorted(FLOW_CASES))
    def test_fixture_matches_markers_exactly(self, name):
        """The rule reports exactly the marked (file, line) pairs — every
        planted violation caught, every clean twin silent."""
        rule, extras = FLOW_CASES[name]
        paths = [FLOW_FIXTURES / name] + [FLOW_FIXTURES / e for e in extras]
        assert _findings(paths, [rule]) == _markers(paths)

    def test_every_flow_rule_has_planted_violations(self):
        covered = {
            rule
            for name, (r, extras) in FLOW_CASES.items()
            for _, _, rule in _markers(
                [FLOW_FIXTURES / name] + [FLOW_FIXTURES / e for e in extras]
            )
        }
        assert covered == {"REP201", "REP202", "REP203", "REP204", "REP205"}

    def test_rep205_does_not_double_fire_on_direct_calls(self):
        """A direct time.time() call is REP002's finding only."""
        source = (FLOW_FIXTURES / "rep205.py").read_text().splitlines()
        flagged = {
            line for _, line, _ in _findings(
                [FLOW_FIXTURES / "rep205.py", FLOW_FIXTURES / "rep205_helpers.py"],
                ["REP205"],
            )
        }
        for number in flagged:
            assert "time.time()" not in source[number - 1]


def _ctx(tmp_path: pathlib.Path, name: str, source: str) -> ModuleContext:
    path = tmp_path / name
    path.write_text(source)
    return ModuleContext(path, source, name)


class TestCallGraph:
    def test_module_naming(self, tmp_path):
        repro_dir = tmp_path / "repro" / "sim"
        repro_dir.mkdir(parents=True)
        engine = repro_dir / "engine.py"
        engine.write_text("x = 1\n")
        ctx = ModuleContext(engine, "x = 1\n", "src/repro/sim/engine.py")
        assert module_name_for(ctx) == "repro.sim.engine"
        fixture = _ctx(tmp_path, "helpers.py", "x = 1\n")
        assert module_name_for(fixture) == "helpers"

    def test_import_alias_resolves_external(self, tmp_path):
        ctx = _ctx(tmp_path, "a.py", "from time import time as now\n")
        index = ProjectIndex([ctx])
        res = index.resolve("a", ("now",))
        assert res.kind == "external"
        assert res.dotted == ("time", "time")

    def test_assignment_alias_chain_across_modules(self, tmp_path):
        helpers = _ctx(tmp_path, "helpers.py", "import time\nclock = time.time\n")
        user = _ctx(tmp_path, "user.py", "from helpers import clock\n")
        index = ProjectIndex([helpers, user])
        assert index.external_name("user", ("clock",)) == ("time", "time")

    def test_reexported_project_function_resolves_home(self, tmp_path):
        engine = _ctx(tmp_path, "engine.py", "def parallel_map(f, xs):\n    return list(map(f, xs))\n")
        pkg = _ctx(tmp_path, "pkg.py", "from engine import parallel_map\n")
        user = _ctx(tmp_path, "user.py", "from pkg import parallel_map\n")
        index = ProjectIndex([engine, pkg, user])
        res = index.resolve("user", ("parallel_map",))
        assert res.kind == "function"
        assert (res.module, res.qualname) == ("engine", "parallel_map")

    def test_method_attribution_and_reachability(self, tmp_path):
        ctx = _ctx(
            tmp_path,
            "graph.py",
            "class Task:\n"
            "    def __call__(self):\n"
            "        return self.step()\n"
            "    def step(self):\n"
            "        return leaf()\n"
            "def leaf():\n"
            "    return 1\n"
            "def untouched():\n"
            "    return 2\n",
        )
        index = ProjectIndex([ctx])
        edges = index.edges()
        assert "graph:Task.step" in edges["graph:Task.__call__"]
        assert "graph:leaf" in edges["graph:Task.step"]
        reached = index.reachable({"graph:Task.__call__"})
        assert "graph:leaf" in reached
        assert "graph:untouched" not in reached

    def test_typed_local_method_attribution(self, tmp_path):
        ctx = _ctx(
            tmp_path,
            "typed.py",
            "class Worker:\n"
            "    def run(self):\n"
            "        return 1\n"
            "def driver():\n"
            "    w = Worker()\n"
            "    return w.run()\n",
        )
        index = ProjectIndex([ctx])
        assert "typed:Worker.run" in index.edges()["typed:driver"]

    def test_subclass_closure_accumulates_excludes(self, tmp_path):
        ctx = _ctx(
            tmp_path,
            "oracles.py",
            "class FrequencyOracle:\n    pass\n"
            "class Mid(FrequencyOracle):\n"
            "    FINGERPRINT_EXCLUDE = ('hits',)\n"
            "class Leaf(Mid):\n"
            "    FINGERPRINT_EXCLUDE = ('cache',)\n",
        )
        index = ProjectIndex([ctx])
        closure = index.subclass_closure(frozenset({"FrequencyOracle"}))
        assert closure["oracles:Mid"] == frozenset({"hits"})
        assert closure["oracles:Leaf"] == frozenset({"hits", "cache"})
        assert "oracles:FrequencyOracle" not in closure

    def test_resolution_cycle_does_not_hang(self, tmp_path):
        a = _ctx(tmp_path, "a.py", "from b import thing\n")
        b = _ctx(tmp_path, "b.py", "from a import thing\n")
        index = ProjectIndex([a, b])
        res = index.resolve("a", ("thing",))
        assert res.kind == "external"

    def test_project_context_orders_by_display(self, tmp_path):
        zz = _ctx(tmp_path, "zz.py", "x = 1\n")
        aa = _ctx(tmp_path, "aa.py", "y = 2\n")
        pc = ProjectContext.build([zz, aa])
        assert [c.display_path for c in pc.contexts] == ["aa.py", "zz.py"]
        assert set(pc.by_display) == {"aa.py", "zz.py"}

    def test_module_table_collects_symbols(self, tmp_path):
        ctx = _ctx(
            tmp_path,
            "syms.py",
            "import time\n"
            "now = time.time\n"
            "def f():\n    pass\n"
            "class C:\n"
            "    def m(self):\n        pass\n",
        )
        table = ModuleTable("syms", ctx)
        assert set(table.functions) == {"f", "C.m"}
        assert set(table.classes) == {"C"}
        assert set(table.assigns) == {"now"}


class TestRunnerPlumbing:
    def test_fixtures_dirs_skipped_on_recursion(self):
        files = discover_files([REPO_ROOT / "tests"])
        assert files, "expected test files"
        assert not any("fixtures" in f.parts for f in files)

    def test_explicit_fixture_file_still_scans(self):
        files = discover_files([FLOW_FIXTURES / "rep202.py"])
        assert len(files) == 1

    def test_fixtures_dir_as_root_still_scans(self):
        files = discover_files([FLOW_FIXTURES])
        assert any(f.name == "rep202.py" for f in files)

    def test_file_tiers(self):
        assert file_tier("src/repro/sim/engine.py") == "src"
        assert file_tier("tests/test_engine.py") == "tests"
        assert file_tier("benchmarks/bench_cache.py") == "benchmarks"

    def test_tests_tier_exempt_from_contract_rules(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        module = tests_dir / "test_clocky.py"
        module.write_text("import time\n\ndef test_x():\n    return time.time()\n")
        report = lint_paths([tests_dir], use_baseline=False, run_contracts=False)
        assert report.findings == []
        # The same file passed explicitly bypasses tier gating.
        report = lint_paths([module], use_baseline=False, run_contracts=False)
        assert [f.rule for f in report.findings] == ["REP002"]

    def test_scan_is_deterministic(self):
        """Two scans of the same tree yield identical findings."""
        first = lint_paths(
            [REPO_ROOT / "src" / "repro"], use_baseline=False, run_contracts=False
        )
        second = lint_paths(
            [REPO_ROOT / "src" / "repro"], use_baseline=False, run_contracts=False
        )
        assert first.findings == second.findings
        assert [f.code for f in first.findings] == [f.code for f in second.findings]

    @pytest.mark.skipif(shutil.which("git") is None, reason="git not on PATH")
    def test_changed_only_reports_only_changed_files(self, tmp_path, monkeypatch):
        def git(*argv):
            subprocess.run(
                ["git", *argv],
                cwd=tmp_path,
                check=True,
                capture_output=True,
                env={
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@example.invalid",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@example.invalid",
                    "HOME": str(tmp_path),
                    "PATH": "/usr/bin:/bin:/usr/local/bin",
                },
            )

        git("init", "-q")
        (tmp_path / "old.py").write_text("import time\nSTAMP = time.time()\n")
        git("add", "old.py")
        git("commit", "-qm", "seed")
        (tmp_path / "new.py").write_text("import time\nSTAMP = time.time()\n")
        monkeypatch.chdir(tmp_path)
        full = lint_paths([tmp_path], use_baseline=False, run_contracts=False)
        assert {pathlib.Path(f.path).name for f in full.findings} == {
            "old.py",
            "new.py",
        }
        diffed = lint_paths(
            [tmp_path],
            use_baseline=False,
            run_contracts=False,
            changed_only="HEAD",
        )
        assert {pathlib.Path(f.path).name for f in diffed.findings} == {"new.py"}
        assert diffed.files_scanned == 1

    def test_changed_only_bad_ref_raises(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        with pytest.raises(InvalidParameterError, match="changed-only"):
            lint_paths(
                [REPO_ROOT / "src" / "repro" / "_rng.py"],
                use_baseline=False,
                run_contracts=False,
                changed_only="no-such-ref-anywhere",
            )


class TestSarif:
    def _report(self):
        return lint_paths(
            [FLOW_FIXTURES / "rep202.py"],
            select=["REP202"],
            use_baseline=False,
            run_contracts=False,
        )

    def test_document_validates_and_carries_findings(self):
        report = self._report()
        assert report.findings, "fixture should produce findings"
        doc = sarif_document(report)
        assert validate_sarif(doc) == []
        results = doc["runs"][0]["results"]
        assert len(results) == len(report.findings)
        rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"REP202", "REP201", "REP000"} <= rules
        first = results[0]
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_render_roundtrips_through_json(self):
        report = self._report()
        doc = json.loads(report.render("sarif"))
        assert validate_sarif(doc) == []

    def test_validator_rejects_structural_breakage(self):
        report = self._report()
        doc = sarif_document(report)
        assert validate_sarif({"version": "1.0", "runs": []})
        bad_version = json.loads(json.dumps(doc))
        bad_version["version"] = "2.0.0"
        assert any("version" in e for e in validate_sarif(bad_version))
        bad_message = json.loads(json.dumps(doc))
        bad_message["runs"][0]["results"][0]["message"] = {}
        assert any("message" in e for e in validate_sarif(bad_message))
        bad_region = json.loads(json.dumps(doc))
        bad_region["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "region"
        ]["startLine"] = 0
        assert any("startLine" in e for e in validate_sarif(bad_region))
        bad_rule = json.loads(json.dumps(doc))
        bad_rule["runs"][0]["results"][0]["ruleIndex"] = 9999
        assert any("ruleIndex" in e for e in validate_sarif(bad_rule))

    def test_stale_baseline_entries_become_results(self):
        report = self._report()
        report.stale_baseline = [
            BaselineEntry(
                rule="REP202",
                path="src/gone.py",
                code="x = 1",
                justification="was real once",
            )
        ]
        doc = sarif_document(report)
        assert validate_sarif(doc) == []
        stale = [
            r for r in doc["runs"][0]["results"] if r["ruleId"] == "REP901"
        ]
        assert len(stale) == 1


def _finding(rule, path, code, line):
    return Finding(path=path, line=line, col=0, rule=rule, message="m", code=code)


class TestBaselineOccurrences:
    def test_one_entry_cannot_absorb_two_occurrences(self):
        findings = [
            _finding("REP002", "a.py", "t = time.time()", 3),
            _finding("REP002", "a.py", "t = time.time()", 9),
        ]
        entry = BaselineEntry("REP002", "a.py", "t = time.time()", "why")
        kept, stale = apply_baseline(findings, [entry])
        assert [f.line for f in kept] == [9]
        assert stale == []

    def test_occurrence_index_targets_a_specific_slot(self):
        findings = [
            _finding("REP002", "a.py", "t = time.time()", 3),
            _finding("REP002", "a.py", "t = time.time()", 9),
        ]
        entry = BaselineEntry(
            "REP002", "a.py", "t = time.time()", "second copy only", occurrence=1
        )
        kept, stale = apply_baseline(findings, [entry])
        assert [f.line for f in kept] == [3]
        assert stale == []

    def test_partially_matched_entry_is_stale(self):
        """count=2 with one surviving occurrence is stale — the old budget
        matcher would silently keep absorbing."""
        findings = [_finding("REP002", "a.py", "t = time.time()", 3)]
        entry = BaselineEntry("REP002", "a.py", "t = time.time()", "why", count=2)
        kept, stale = apply_baseline(findings, [entry])
        assert kept == []
        assert stale == [entry]

    def test_disjoint_entries_cover_disjoint_slots(self):
        findings = [
            _finding("REP002", "a.py", "t = time.time()", 3),
            _finding("REP002", "a.py", "t = time.time()", 9),
        ]
        entries = [
            BaselineEntry("REP002", "a.py", "t = time.time()", "first"),
            BaselineEntry(
                "REP002", "a.py", "t = time.time()", "second", occurrence=1
            ),
        ]
        kept, stale = apply_baseline(findings, entries)
        assert kept == [] and stale == []

    def test_overlapping_slots_rejected_at_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "REP002",
                            "path": "a.py",
                            "code": "x",
                            "justification": "one",
                            "count": 2,
                        },
                        {
                            "rule": "REP002",
                            "path": "a.py",
                            "code": "x",
                            "justification": "two",
                            "occurrence": 1,
                        },
                    ]
                }
            )
        )
        with pytest.raises(InvalidParameterError, match="duplicates"):
            load_baseline(path)

    def test_invalid_occurrence_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "REP002",
                            "path": "a.py",
                            "code": "x",
                            "justification": "why",
                            "occurrence": -1,
                        }
                    ]
                }
            )
        )
        with pytest.raises(InvalidParameterError, match="occurrence"):
            load_baseline(path)
