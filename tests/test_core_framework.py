"""Tests for the analytical framework (Lemmas 1-2, Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import (
    decompose_poisoned_frequency,
    genuine_frequency_law,
    malicious_frequency_law,
    mixture_frequency,
    per_report_estimate_moments,
    poisoned_frequency_law,
    support_probability,
)
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR


@pytest.fixture()
def params():
    return GRR(epsilon=0.5, domain_size=16).params


class TestMixture:
    def test_eq14_weights(self):
        genuine = np.array([0.5, 0.5])
        malicious = np.array([1.0, 0.0])
        mixed = mixture_frequency(genuine, malicious, n=900, m=100)
        np.testing.assert_allclose(mixed, [0.55, 0.45])

    def test_zero_malicious(self):
        genuine = np.array([0.3, 0.7])
        np.testing.assert_allclose(
            mixture_frequency(genuine, np.zeros(2), n=10, m=0), genuine
        )

    def test_invalid_populations(self):
        with pytest.raises(InvalidParameterError):
            mixture_frequency(np.zeros(2), np.zeros(2), n=0, m=1)

    def test_decompose_inverts_mixture(self):
        genuine = np.array([0.2, 0.8])
        malicious = np.array([0.9, 0.1])
        n, m = 1000, 200
        mixed = mixture_frequency(genuine, malicious, n, m)
        recovered = decompose_poisoned_frequency(mixed, malicious, eta=m / n)
        np.testing.assert_allclose(recovered, genuine, atol=1e-12)


class TestSupportProbability:
    def test_extremes(self, params):
        assert support_probability(1.0, params.p, params.q) == pytest.approx(params.p)
        assert support_probability(0.0, params.p, params.q) == pytest.approx(params.q)

    def test_linear_in_frequency(self, params):
        lo = support_probability(0.2, params.p, params.q)
        hi = support_probability(0.8, params.p, params.q)
        mid = support_probability(0.5, params.p, params.q)
        assert mid == pytest.approx((lo + hi) / 2)


class TestPerReportMoments:
    def test_two_point_law(self, params):
        law = per_report_estimate_moments(params.q, params.p, params.q)
        # With s = q the mean is exactly 0 (true frequency 0).
        assert law.mean == pytest.approx(0.0, abs=1e-12)
        assert law.variance > 0

    def test_invalid_support_prob(self, params):
        with pytest.raises(InvalidParameterError):
            per_report_estimate_moments(1.5, params.p, params.q)

    def test_degenerate_protocol(self):
        with pytest.raises(InvalidParameterError):
            per_report_estimate_moments(0.5, 0.3, 0.3)


class TestGenuineLaw:
    def test_lemma2_mean(self, params):
        law = genuine_frequency_law(0.25, params, n=1000)
        assert law.mean == pytest.approx(0.25)

    def test_lemma2_variance_formula(self, params):
        f, n = 0.25, 1000
        law = genuine_frequency_law(f, params, n)
        p, q = params.p, params.q
        expected = q * (1 - q) / (n * (p - q) ** 2) + f * (1 - p - q) / (n * (p - q))
        assert law.variance == pytest.approx(expected)

    def test_variance_shrinks_with_n(self, params):
        v1 = genuine_frequency_law(0.1, params, n=100).variance
        v2 = genuine_frequency_law(0.1, params, n=10_000).variance
        assert v2 == pytest.approx(v1 / 100)

    def test_empirical_match(self):
        # Monte-Carlo check: empirical frequency estimates follow Lemma 2.
        proto = GRR(epsilon=1.0, domain_size=8)
        f, n = 0.5, 4000
        counts = np.zeros(8, dtype=np.int64)
        counts[0] = int(f * n)
        counts[1] = n - counts[0]
        estimates = [
            proto.estimate_frequencies(proto.sample_genuine_counts(counts, s), n)[0]
            for s in range(400)
        ]
        law = genuine_frequency_law(f, proto.params, n)
        assert np.mean(estimates) == pytest.approx(law.mean, abs=4 * law.std / 20)
        assert np.var(estimates) == pytest.approx(law.variance, rel=0.3)

    def test_invalid_n(self, params):
        with pytest.raises(InvalidParameterError):
            genuine_frequency_law(0.1, params, n=0)


class TestMaliciousLaw:
    def test_lemma1_mean(self, params):
        # A crafted report supporting v with probability P(v) = 0.3.
        law = malicious_frequency_law(0.3, params, m=500)
        expected_mean = (0.3 - params.q) / (params.p - params.q)
        assert law.mean == pytest.approx(expected_mean)

    def test_variance_scales_inverse_m(self, params):
        v1 = malicious_frequency_law(0.3, params, m=100).variance
        v2 = malicious_frequency_law(0.3, params, m=400).variance
        assert v2 == pytest.approx(v1 / 4)

    def test_empirical_match(self):
        proto = GRR(epsilon=0.5, domain_size=16)
        m = 2000
        probs = np.zeros(16)
        probs[3] = 0.6
        probs[4] = 0.4
        rng = np.random.default_rng(0)
        estimates = []
        for _ in range(300):
            items = rng.choice(16, size=m, p=probs)
            crafted = proto.craft_supporting(items)
            estimates.append(proto.aggregate(crafted)[3])
        law = malicious_frequency_law(0.6, proto.params, m)
        assert np.mean(estimates) == pytest.approx(law.mean, abs=0.02)
        assert np.var(estimates) == pytest.approx(law.variance, rel=0.3)

    def test_invalid_m(self, params):
        with pytest.raises(InvalidParameterError):
            malicious_frequency_law(0.3, params, m=0)


class TestPoisonedLaw:
    def test_theorem1_composition(self, params):
        genuine = genuine_frequency_law(0.2, params, n=1000)
        malicious = malicious_frequency_law(0.5, params, m=100)
        eta = 0.1
        law = poisoned_frequency_law(genuine, malicious, eta)
        scale = 1 + eta
        assert law.mean == pytest.approx(genuine.mean / scale + eta * malicious.mean / scale)
        assert law.variance == pytest.approx(
            genuine.variance / scale**2 + eta**2 * malicious.variance / scale**2
        )

    def test_eta_zero_is_genuine(self, params):
        genuine = genuine_frequency_law(0.2, params, n=1000)
        malicious = malicious_frequency_law(0.5, params, m=100)
        law = poisoned_frequency_law(genuine, malicious, eta=0.0)
        assert law.mean == pytest.approx(genuine.mean)
        assert law.variance == pytest.approx(genuine.variance)

    def test_negative_eta_rejected(self, params):
        genuine = genuine_frequency_law(0.2, params, n=1000)
        malicious = malicious_frequency_law(0.5, params, m=100)
        with pytest.raises(InvalidParameterError):
            poisoned_frequency_law(genuine, malicious, eta=-0.1)
