"""Statistical property tests for the key-value protocol and recovery.

Every tolerance here derives from the *analytic* variance of the
estimator under test — the GRR and binary-RR closed forms — scaled by a
fixed z-multiple and the Monte-Carlo trial count, never from an eyeballed
magic number.  All seeds are pinned, so the tests are deterministic: a
failure means the estimator (or its variance model) changed, not that a
die rolled badly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kv import KeyValueProtocol, KVPoisoningAttack, recover_key_value
from repro.sim.metrics import mse

K = 8
FREQ = np.array([0.30, 0.20, 0.15, 0.12, 0.10, 0.06, 0.04, 0.03])
MEANS = np.array([0.5, -0.3, 0.0, 0.8, -0.6, 0.2, -0.1, 0.4])

#: Monte-Carlo trials and per-trial population of the unbiasedness tests.
TRIALS = 16
N = 25_000


@pytest.fixture(scope="module")
def protocol() -> KeyValueProtocol:
    return KeyValueProtocol(eps_key=2.0, eps_value=2.0, num_keys=K)


def _draw_population(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """One genuine population whose per-key value means equal MEANS exactly.

    Values are two-point draws (+1 w.p. (1+mean)/2, else -1), the extreme
    -point decomposition every [-1, 1] value distribution reduces to under
    the protocol's stochastic rounding — so the analytic truth carries no
    sampling-model bias of its own.
    """
    keys = rng.choice(K, size=N, p=FREQ)
    up = rng.random(N) < (1.0 + MEANS[keys]) / 2.0
    return keys, np.where(up, 1.0, -1.0)


@pytest.fixture(scope="module")
def mc_averages(protocol) -> tuple[np.ndarray, np.ndarray]:
    """Frequency and mean estimates averaged over TRIALS pinned rounds."""
    freq_sum = np.zeros(K)
    mean_sum = np.zeros(K)
    for trial in range(TRIALS):
        rng = np.random.default_rng(1000 + trial)
        keys, values = _draw_population(rng)
        aggregate = protocol.aggregate(protocol.perturb(keys, values, rng))
        freq_sum += aggregate.frequencies
        mean_sum += aggregate.means
    return freq_sum / TRIALS, mean_sum / TRIALS


class TestKeyFrequencyUnbiasedness:
    """E[f_hat] = f, with tolerance from the exact GRR estimator variance."""

    def test_monte_carlo_mean_within_analytic_ci(self, protocol, mc_averages):
        favg, _ = mc_averages
        p, q = protocol.key_oracle.p, protocol.key_oracle.q
        # f_hat_k = (C_k / n - q) / (p - q) with C_k ~ Binomial(n, claim_k),
        # claim_k = f_k p + (1 - f_k) q, so the estimator's exact variance is
        # claim_k (1 - claim_k) / (n (p - q)^2); averaging T independent
        # trials divides it by T.  z = 5 on a pinned stream.
        claim = FREQ * p + (1.0 - FREQ) * q
        sd = np.sqrt(claim * (1.0 - claim) / (N * (p - q) ** 2))
        tolerance = 5.0 * sd / np.sqrt(TRIALS)
        np.testing.assert_array_less(np.abs(favg - FREQ), tolerance)

    def test_tolerance_is_meaningful(self, protocol):
        """The analytic CI must actually constrain the estimate (i.e. be far
        tighter than the trivial |f_hat - f| <= 1 bound)."""
        p, q = protocol.key_oracle.p, protocol.key_oracle.q
        claim = FREQ * p + (1.0 - FREQ) * q
        sd = np.sqrt(claim * (1.0 - claim) / (N * (p - q) ** 2))
        assert (5.0 * sd / np.sqrt(TRIALS)).max() < 0.02


class TestPerKeyMeanUnbiasedness:
    """E[mean_hat_k] = mean_k, tolerance from the RR debias delta method."""

    @staticmethod
    def _mean_sd_bound(protocol: KeyValueProtocol) -> np.ndarray:
        """Analytic per-key standard deviation bound of the mean estimator.

        mean_k = 2 b_k - 1 with b_k = (debiased_k - (1 - a_k) b_bar) / a_k,
        a_k the genuine claimant share.  Bit indicators have variance at
        most 1/4, so with D = p_rr - q_rr and c_k = n * claim_k expected
        claimants: Var(debiased_k) <= 1 / (4 c_k D^2) and Var(b_bar) <=
        1 / (4 n D^2), giving sd(mean_k) <= (2 / a_k) * sqrt(Var(debiased_k)
        + (1 - a_k)^2 Var(b_bar)).  The plug-in frequency estimate inside
        a_k adds a second-order term, absorbed by doubling the bound.
        """
        p, q = protocol.key_oracle.p, protocol.key_oracle.q
        D = protocol.value_rr.p - protocol.value_rr.q
        claim = FREQ * p + (1.0 - FREQ) * q
        share = FREQ * p / claim
        claimants = N * claim
        sd = (2.0 / share) * np.sqrt(
            1.0 / (4.0 * claimants * D**2) + (1.0 - share) ** 2 / (4.0 * N * D**2)
        )
        return 2.0 * sd

    def test_monte_carlo_mean_within_analytic_ci(self, protocol, mc_averages):
        _, mavg = mc_averages
        tolerance = 6.0 * self._mean_sd_bound(protocol) / np.sqrt(TRIALS)
        np.testing.assert_array_less(np.abs(mavg - MEANS), tolerance)

    def test_tolerance_is_meaningful(self, protocol):
        """Even the loosest per-key bound must rule out a sign flip of the
        largest true mean."""
        tolerance = 6.0 * self._mean_sd_bound(protocol) / np.sqrt(TRIALS)
        assert tolerance.max() < 2.0 * np.abs(MEANS).max()


class TestTargetKnowledgeStrictlyWins:
    """recover_key_value(target_keys=...) must strictly beat the
    no-knowledge path on a poisoned aggregate — on the recovered key
    frequencies *and* on the attacked keys' means — for every pinned seed."""

    BETA = 0.1
    ETA = 0.2
    USERS = 60_000

    def _poisoned(self, protocol, seed):
        rng = np.random.default_rng(seed)
        keys = rng.choice(K, size=self.USERS, p=FREQ)
        up = rng.random(self.USERS) < (1.0 + MEANS[keys]) / 2.0
        values = np.where(up, 1.0, -1.0)
        genuine = protocol.perturb(keys, values, rng)
        attack = KVPoisoningAttack(num_keys=K, targets=[6, 7], target_bit=1)
        m = int(round(self.BETA * self.USERS / (1.0 - self.BETA)))
        malicious = attack.craft(protocol, m, rng)
        poisoned = protocol.aggregate(KeyValueProtocol.concat(genuine, malicious))
        return attack, poisoned, self.USERS + m

    @pytest.mark.parametrize("seed", range(4))
    def test_star_frequencies_strictly_better(self, protocol, seed):
        attack, poisoned, total = self._poisoned(protocol, seed)
        plain = recover_key_value(protocol, poisoned, total, eta=self.ETA)
        star = recover_key_value(
            protocol, poisoned, total, eta=self.ETA, target_keys=attack.target_keys
        )
        assert mse(FREQ, star.frequencies) < mse(FREQ, plain.frequencies)

    @pytest.mark.parametrize("seed", range(4))
    def test_star_target_means_strictly_better(self, protocol, seed):
        attack, poisoned, total = self._poisoned(protocol, seed)
        plain = recover_key_value(protocol, poisoned, total, eta=self.ETA)
        star = recover_key_value(
            protocol, poisoned, total, eta=self.ETA, target_keys=attack.target_keys
        )
        targets = attack.target_keys
        bias_plain = np.abs(plain.means[targets] - MEANS[targets]).mean()
        bias_star = np.abs(star.means[targets] - MEANS[targets]).mean()
        assert bias_star < bias_plain
