"""Statistical and structural tests for OUE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocols import OUE, counts_to_items


@pytest.fixture()
def proto() -> OUE:
    return OUE(epsilon=1.0, domain_size=10)


class TestPerturb:
    def test_shape_and_dtype(self, proto, rng):
        items = rng.integers(0, proto.domain_size, size=100)
        bits = proto.perturb(items, rng)
        assert bits.shape == (100, proto.domain_size)
        assert bits.dtype == bool

    def test_true_bit_rate_is_half(self, proto, rng):
        n = 100_000
        items = np.full(n, 4, dtype=np.int64)
        bits = proto.perturb(items, rng)
        assert float(bits[:, 4].mean()) == pytest.approx(0.5, abs=0.01)

    def test_other_bit_rate_is_q(self, proto, rng):
        n = 100_000
        items = np.full(n, 4, dtype=np.int64)
        bits = proto.perturb(items, rng)
        for j in (0, 7, 9):
            assert float(bits[:, j].mean()) == pytest.approx(proto.q, abs=0.01)

    def test_bits_independent_across_items(self, proto, rng):
        n = 150_000
        items = np.full(n, 0, dtype=np.int64)
        bits = proto.perturb(items, rng)
        # Joint on-rate of two non-true bits should be ~ q^2.
        joint = float((bits[:, 1] & bits[:, 2]).mean())
        assert joint == pytest.approx(proto.q**2, abs=0.01)


class TestAggregation:
    def test_unbiased_frequency_estimate(self, proto, rng):
        n = 80_000
        counts = np.zeros(proto.domain_size, dtype=np.int64)
        counts[0] = int(0.3 * n)
        counts[9] = n - counts[0]
        items = counts_to_items(counts, rng)
        freqs = proto.aggregate(proto.perturb(items, rng))
        sigma = np.sqrt(proto.theoretical_variance(n)) / n
        assert freqs[0] == pytest.approx(0.3, abs=5 * sigma)
        assert freqs[9] == pytest.approx(0.7, abs=5 * sigma)

    def test_support_counts_column_sums(self, proto):
        bits = np.zeros((4, proto.domain_size), dtype=bool)
        bits[0, 1] = bits[1, 1] = bits[2, 5] = True
        counts = proto.support_counts(bits)
        assert counts[1] == 2
        assert counts[5] == 1
        assert counts.sum() == 3

    def test_wrong_width_raises(self, proto):
        with pytest.raises(ProtocolError):
            proto.support_counts(np.zeros((3, proto.domain_size + 1), dtype=bool))

    def test_1d_reports_raise(self, proto):
        with pytest.raises(ProtocolError):
            proto.support_counts(np.zeros(proto.domain_size, dtype=bool))


class TestFastPath:
    def test_fast_counts_match_theory_mean(self, proto):
        counts = np.zeros(proto.domain_size, dtype=np.int64)
        counts[2] = 4000
        counts[7] = 6000
        n = 10_000
        draws = np.array(
            [proto.sample_genuine_counts(counts, seed) for seed in range(200)],
            dtype=np.float64,
        )
        expected = counts * proto.p + (n - counts) * proto.q
        np.testing.assert_allclose(draws.mean(axis=0), expected, rtol=0.05)

    def test_empirical_variance_matches_eq7(self, proto):
        counts = np.zeros(proto.domain_size, dtype=np.int64)
        counts[0] = 2000
        n = 2000
        estimates = [
            proto.estimate_counts(proto.sample_genuine_counts(counts, seed), n)[3]
            for seed in range(400)
        ]
        theory = proto.theoretical_variance(n)
        assert np.var(estimates) == pytest.approx(theory, rel=0.3)

    def test_fast_matches_sampled_mean(self, proto):
        counts = np.zeros(proto.domain_size, dtype=np.int64)
        counts[5] = 3000
        n = 3000
        fast = [
            proto.estimate_frequencies(proto.sample_genuine_counts(counts, s), n)[5]
            for s in range(30)
        ]
        slow = []
        for s in range(30):
            items = counts_to_items(counts, s)
            slow.append(proto.aggregate(proto.perturb(items, s + 999))[5])
        assert np.mean(fast) == pytest.approx(1.0, abs=0.05)
        assert np.mean(slow) == pytest.approx(1.0, abs=0.05)


class TestCrafting:
    def test_one_hot(self, proto):
        crafted = proto.craft_one_hot(np.array([3, 3, 0]))
        assert crafted.shape == (3, proto.domain_size)
        assert crafted.sum() == 3
        assert crafted[0, 3] and crafted[1, 3] and crafted[2, 0]

    def test_craft_supporting_sets_item_bit(self, proto):
        crafted = proto.craft_supporting(np.array([3, 3, 0]), rng=0)
        assert crafted[:, 3][:2].all() and crafted[2, 0]

    def test_craft_supporting_noise_rate_is_q(self, proto):
        items = np.full(50_000, 0, dtype=np.int64)
        crafted = proto.craft_supporting(items, rng=1)
        # Non-chosen bits blend at the genuine rate q.
        other_rate = float(crafted[:, 1:].mean())
        assert other_rate == pytest.approx(proto.q, abs=0.01)

    def test_craft_bit_vectors(self, proto):
        bits = proto.craft_bit_vectors([[0, 1], [5], []])
        assert bits[0, 0] and bits[0, 1]
        assert bits[1, 5]
        assert bits[2].sum() == 0


class TestReportOps:
    def test_concat(self, proto):
        a = proto.craft_supporting(np.array([0]))
        b = proto.craft_supporting(np.array([1, 2]))
        combined = proto.concat_reports(a, b)
        assert proto.num_reports(combined) == 3

    def test_supporting_any(self, proto):
        bits = proto.craft_bit_vectors([[0, 1], [5], [2]])
        mask = proto.reports_supporting_any(bits, [1, 2])
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_supporting_any_empty_targets(self, proto):
        bits = proto.craft_bit_vectors([[0]])
        mask = proto.reports_supporting_any(bits, [])
        np.testing.assert_array_equal(mask, [False])

    def test_target_support_counts(self, proto):
        bits = proto.craft_bit_vectors([[0, 1, 2], [2], []])
        counts = proto.target_support_counts(bits, [0, 1, 2])
        np.testing.assert_array_equal(counts, [3, 1, 0])

    def test_select_reports(self, proto):
        bits = proto.craft_bit_vectors([[0], [1], [2]])
        kept = proto.select_reports(bits, np.array([False, True, True]))
        assert proto.num_reports(kept) == 2
        assert kept[0, 1] and kept[1, 2]
