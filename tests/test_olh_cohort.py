"""Seed-cohort OLH: statistics, engine integration, and cache-key contract.

The contract under test (ISSUE 3 acceptance criteria):

* cohort mode preserves per-item estimate mean and keeps variance within
  theory bounds (marginals unchanged; small-K correlation inflation only);
* the engine's chunked path draws a fresh cohort per chunk and stays
  ``workers=N`` bit-identical to ``workers=1``;
* ``olh_cohort`` enters the canonical cell-spec hash (a cohort run never
  hits a per-user-seed cache entry), while OLH's ``chunk_cells`` scan
  budget — an execution-only knob — does not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import MGAAttack
from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR, OLH
from repro.sim.cache import CellCache, canonical_key, evaluation_cell_spec
from repro.sim.engine import TASK_COUNTER, chunked_genuine_counts
from repro.sim.experiment import evaluate_recovery

D = 16
DATASET = zipf_dataset(domain_size=D, num_users=8_000, exponent=1.0, rng=6)


class TestCohortStatistics:
    """Cohort mode preserves estimate mean/variance within theory bounds."""

    TRIALS = 150
    N = 4_000
    COHORT = 32

    def _estimates(self) -> np.ndarray:
        proto = OLH(epsilon=1.0, domain_size=D, cohort=self.COHORT)
        counts = zipf_dataset(
            domain_size=D, num_users=self.N, exponent=1.0, rng=2
        ).counts
        seeds = np.random.SeedSequence(42).spawn(self.TRIALS)
        rows = []
        for seed in seeds:
            gen = np.random.default_rng(seed)
            support = chunked_genuine_counts(proto, counts, rng=gen, chunk_users=1_000)
            rows.append(proto.estimate_frequencies(support, self.N))
        return np.asarray(rows)

    def test_mean_and_variance_within_theory(self):
        proto = OLH(epsilon=1.0, domain_size=D)
        truth = (
            zipf_dataset(domain_size=D, num_users=self.N, exponent=1.0, rng=2).counts
            / self.N
        )
        estimates = self._estimates()

        # Unbiasedness: every per-item trial mean within 5 sigma-of-the-mean.
        sigma = np.sqrt(proto.theoretical_variance(self.N)) / self.N
        tolerance = 5.0 * sigma / np.sqrt(self.TRIALS)
        np.testing.assert_allclose(estimates.mean(axis=0), truth, atol=tolerance)

        # Variance: within theory bounds.  Shared seeds correlate same-item
        # users, so a mild inflation over Eq. (10) is expected for small K;
        # it must stay bounded (and not collapse below theory either).
        theory = proto.theoretical_variance(self.N) / self.N**2
        ratio = estimates.var(axis=0, ddof=1) / theory
        assert float(ratio.min()) > 0.4
        assert float(ratio.max()) < 3.0


class TestCohortEngine:
    def test_chunked_cell_workers_bit_identical(self):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        kwargs = dict(
            beta=0.05, trials=4, rng=11, chunk_users=1_000, olh_cohort=16
        )
        serial = evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), attack, workers=1, **kwargs
        )
        pooled = evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), attack, workers=4, **kwargs
        )
        assert serial == pooled

    def test_fresh_cohort_per_chunk(self):
        # Two chunks of the same trial must not share seed pools: perturb
        # draws a fresh cohort per call, so a 2-chunk run sees up to 2K
        # distinct seeds.  (Observed through perturb directly.)
        proto = OLH(epsilon=0.5, domain_size=D, cohort=4)
        gen = np.random.default_rng(0)
        first = proto.perturb(np.zeros(100, dtype=np.int64), gen)
        second = proto.perturb(np.zeros(100, dtype=np.int64), gen)
        assert not np.intersect1d(first.seeds, second.seeds).size

    def test_invalid_cohort_raises_in_every_mode(self):
        # The fast-mode no-op must still validate the value.
        with pytest.raises(InvalidParameterError, match="cohort"):
            evaluate_recovery(
                DATASET, OLH(epsilon=0.5, domain_size=D), None,
                trials=1, rng=0, olh_cohort=0,
            )
        with pytest.raises(InvalidParameterError, match="cohort"):
            evaluate_recovery(
                DATASET, OLH(epsilon=0.5, domain_size=D), None,
                trials=1, rng=0, olh_cohort=-4, chunk_users=1_000,
            )

    def test_olh_cohort_requires_cohort_capable_protocol(self):
        with pytest.raises(InvalidParameterError, match="cohort-capable"):
            evaluate_recovery(
                DATASET, GRR(epsilon=0.5, domain_size=D), None,
                trials=1, rng=0, olh_cohort=8,
            )

    def test_cohort_estimates_recover_truth(self):
        ev = evaluate_recovery(
            DATASET, OLH(epsilon=1.0, domain_size=D), None,
            trials=3, rng=5, chunk_users=2_000, olh_cohort=32,
        )
        assert 0 < ev.mse_before < 5e-3


class TestCohortCacheKey:
    """olh_cohort is part of the cell identity; chunk_cells is not."""

    def _spec(self, protocol):
        return evaluation_cell_spec(
            DATASET, protocol, None,
            beta=0.0, eta=0.2, trials=2, mode="chunked",
            with_star=True, with_detection=False, aa_top_k=5,
            seeds=np.random.SeedSequence(1).spawn(2),
        )

    def test_cohort_changes_key(self):
        base = canonical_key(self._spec(OLH(epsilon=0.5, domain_size=D)))
        k16 = canonical_key(self._spec(OLH(epsilon=0.5, domain_size=D, cohort=16)))
        k8 = canonical_key(self._spec(OLH(epsilon=0.5, domain_size=D, cohort=8)))
        assert len({base, k16, k8}) == 3

    def test_chunk_cells_is_execution_only(self):
        base = canonical_key(self._spec(OLH(epsilon=0.5, domain_size=D)))
        tuned = canonical_key(
            self._spec(OLH(epsilon=0.5, domain_size=D, chunk_cells=1_234))
        )
        assert base == tuned

    def test_fast_mode_cohort_is_a_no_op_and_key_neutral(self, tmp_path):
        """mode='fast' samples marginals, which cohorts cannot change: the
        knob must neither fork the cache key nor re-simulate."""
        cache = CellCache(tmp_path)
        kwargs = dict(trials=2, rng=3, cache=cache)  # mode stays "fast"
        plain = evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), None, **kwargs
        )
        TASK_COUNTER.reset()
        cohorted = evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), None, olh_cohort=8, **kwargs
        )
        assert TASK_COUNTER.count == 0, "fast-mode cohort must share the cache entry"
        assert cohorted == plain

    def test_cohort_chunk_schedule_enters_key(self, tmp_path):
        """Cohort-mode chunked cells draw one fresh cohort per chunk, so
        the resolved chunk size shapes the distribution and must fork the
        key — while non-cohort OLH chunked cells stay chunk-invariant."""
        cache = CellCache(tmp_path)
        kwargs = dict(trials=2, rng=3, olh_cohort=8, cache=cache)
        evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), None,
            chunk_users=1_000, **kwargs,
        )
        TASK_COUNTER.reset()
        evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), None,
            chunk_users=4_000, **kwargs,
        )
        assert TASK_COUNTER.count > 0, "a different cohort schedule must re-simulate"
        assert cache.stats.misses == 2
        # Without a cohort, OLH chunked cells keep the chunk-invariant key.
        plain = CellCache(tmp_path / "plain")
        evaluate_recovery(DATASET, OLH(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=3, chunk_users=1_000, cache=plain)
        TASK_COUNTER.reset()
        evaluate_recovery(DATASET, OLH(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=3, chunk_users=4_000, cache=plain)
        assert TASK_COUNTER.count == 0 and plain.stats.hits == 1

    def test_cohort_run_never_hits_per_user_entry(self, tmp_path):
        cache = CellCache(tmp_path)
        kwargs = dict(trials=2, rng=3, chunk_users=1_000, cache=cache)
        per_user = evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), None, **kwargs
        )
        TASK_COUNTER.reset()
        cohorted = evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), None, olh_cohort=8, **kwargs
        )
        assert TASK_COUNTER.count > 0, "cohort cell must not hit the per-user entry"
        assert cache.stats.hits == 0 and cache.stats.misses == 2
        assert cohorted.mse_before != per_user.mse_before  # different streams
        # A warm cohort rerun is served from its own entry.
        TASK_COUNTER.reset()
        warm = evaluate_recovery(
            DATASET, OLH(epsilon=0.5, domain_size=D), None, olh_cohort=8, **kwargs
        )
        assert TASK_COUNTER.count == 0 and warm == cohorted
