"""Tests for heavy-hitter identification on recovered frequencies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heavyhitters import (
    HeavyHitterReport,
    heavy_hitter_report,
    promoted_items,
    tail_items,
    top_k_items,
    top_k_precision,
    top_k_recall,
)
from repro.exceptions import InvalidParameterError


class TestTopK:
    def test_basic(self):
        freq = np.array([0.1, 0.5, 0.05, 0.35])
        np.testing.assert_array_equal(top_k_items(freq, 2), [1, 3])

    def test_sorted_by_item_id(self):
        freq = np.array([0.4, 0.1, 0.5])
        result = top_k_items(freq, 2)
        assert np.all(np.diff(result) > 0)

    def test_deterministic_tie_break(self):
        freq = np.array([0.25, 0.25, 0.25, 0.25])
        np.testing.assert_array_equal(top_k_items(freq, 2), [0, 1])

    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            top_k_items(np.array([0.5, 0.5]), 0)
        with pytest.raises(InvalidParameterError):
            top_k_items(np.array([0.5, 0.5]), 3)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            top_k_items(np.array([]), 1)

    def test_k_equals_domain_returns_every_item(self):
        freq = np.array([0.1, 0.5, 0.05, 0.35])
        np.testing.assert_array_equal(top_k_items(freq, 4), [0, 1, 2, 3])
        assert top_k_precision(freq, np.zeros(4) + 0.25, 4) == 1.0
        assert promoted_items(freq, np.array([0.4, 0.1, 0.1, 0.4]), 4).size == 0

    def test_all_tied_breaks_toward_smaller_ids(self):
        freq = np.full(6, 1.0 / 6.0)
        for k in (1, 3, 6):
            np.testing.assert_array_equal(top_k_items(freq, k), np.arange(k))


class TestTailItems:
    def test_least_frequent_sorted_by_id(self):
        freq = np.array([0.1, 0.5, 0.05, 0.35])
        np.testing.assert_array_equal(tail_items(freq, 2), [0, 2])

    def test_ties_break_toward_smaller_ids(self):
        freq = np.full(5, 0.2)
        np.testing.assert_array_equal(tail_items(freq, 3), [0, 1, 2])

    def test_r_equals_domain_is_complement_of_top_k(self):
        freq = np.array([0.4, 0.1, 0.3, 0.2])
        np.testing.assert_array_equal(tail_items(freq, 4), top_k_items(freq, 4))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            tail_items(np.array([0.5, 0.5]), 0)
        with pytest.raises(InvalidParameterError):
            tail_items(np.array([0.5, 0.5]), 3)
        with pytest.raises(InvalidParameterError):
            tail_items(np.array([]), 1)


class TestPrecisionRecall:
    def test_perfect_match(self):
        freq = np.array([0.5, 0.3, 0.1, 0.1])
        assert top_k_precision(freq, freq, 2) == 1.0
        assert top_k_recall(freq, freq, 2) == 1.0

    def test_half_overlap(self):
        truth = np.array([0.5, 0.3, 0.1, 0.1])
        est = np.array([0.5, 0.0, 0.4, 0.1])
        assert top_k_precision(truth, est, 2) == 0.5

    def test_no_overlap(self):
        truth = np.array([0.5, 0.5, 0.0, 0.0])
        est = np.array([0.0, 0.0, 0.5, 0.5])
        assert top_k_precision(truth, est, 2) == 0.0


class TestPromotedItems:
    def test_identifies_planted(self):
        truth = np.array([0.5, 0.3, 0.15, 0.05])
        poisoned = np.array([0.4, 0.1, 0.1, 0.4])  # item 3 planted into top-2
        np.testing.assert_array_equal(promoted_items(truth, poisoned, 2), [3])

    def test_empty_when_clean(self):
        truth = np.array([0.5, 0.3, 0.15, 0.05])
        assert promoted_items(truth, truth, 2).size == 0

    def test_empty_when_attack_fails_to_break_in(self):
        """A boost that reorders the top-k without displacing a true heavy
        hitter promotes nothing — the attack failed."""
        truth = np.array([0.5, 0.3, 0.15, 0.05])
        failed = np.array([0.35, 0.4, 0.2, 0.05])  # item 3 boosted, still last
        assert promoted_items(truth, failed, 2).size == 0
        assert promoted_items(truth, failed, 3).size == 0


class TestReport:
    def test_fields_and_gain(self):
        truth = np.array([0.5, 0.3, 0.15, 0.05])
        poisoned = np.array([0.3, 0.1, 0.1, 0.5])
        recovered = np.array([0.45, 0.3, 0.2, 0.05])
        report = heavy_hitter_report(truth, poisoned, recovered, k=2)
        assert isinstance(report, HeavyHitterReport)
        assert report.precision_poisoned == 0.5
        assert report.precision_recovered == 1.0
        assert report.planted_poisoned == 1
        assert report.planted_recovered == 0
        assert report.precision_gain == pytest.approx(0.5)


class TestEndToEnd:
    def test_mga_pollutes_top_k_and_recovery_repairs_it(self):
        """The attack's actual goal: planting items in the popular list."""
        import repro

        data = repro.ipums_like(num_users=60_000)
        protocol = repro.GRR(epsilon=0.5, domain_size=data.domain_size)
        # Target unpopular items so promotion is visible in the top-10.
        tail_items = np.argsort(data.frequencies)[:5]
        attack = repro.MGAAttack(domain_size=data.domain_size, targets=tail_items)
        polluted, repaired = [], []
        for seed in range(4):
            trial = repro.run_trial(data, protocol, attack, beta=0.1, rng=seed)
            recovery = repro.recover_frequencies(
                trial.poisoned_frequencies, protocol, target_items=tail_items
            )
            report = heavy_hitter_report(
                trial.true_frequencies,
                trial.poisoned_frequencies,
                recovery.frequencies,
                k=10,
            )
            polluted.append(report.planted_poisoned)
            repaired.append(report.planted_recovered)
        assert np.mean(polluted) >= 2, "MGA should plant items into the top-10"
        assert np.mean(repaired) < np.mean(polluted), "recovery should evict them"
