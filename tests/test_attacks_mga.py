"""Tests for the MGA targeted attack across all three protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import MGAAttack
from repro.attacks.base import resolve_target_items
from repro.exceptions import AttackError
from repro.protocols import GRR, OLH, OUE
from repro.protocols import hashing

D = 30


class TestTargetSelection:
    def test_random_targets(self):
        attack = MGAAttack(domain_size=D, r=5, rng=0)
        assert attack.target_items.size == 5
        assert attack.r == 5
        assert np.all(attack.target_items < D)

    def test_explicit_targets(self):
        attack = MGAAttack(domain_size=D, targets=[2, 8, 8])
        np.testing.assert_array_equal(attack.target_items, [2, 8])

    def test_resolve_requires_r_or_targets(self):
        with pytest.raises(AttackError):
            resolve_target_items(None, None, D)

    def test_resolve_r_too_large(self):
        with pytest.raises(AttackError):
            resolve_target_items(None, D + 1, D)

    def test_resolve_out_of_range(self):
        with pytest.raises(AttackError):
            resolve_target_items(np.array([D]), None, D)

    def test_targeted_flag(self):
        assert MGAAttack(domain_size=D, r=3, rng=0).targeted is True

    def test_item_distribution_uniform_over_targets(self):
        attack = MGAAttack(domain_size=D, targets=[1, 2, 3, 4])
        probs = attack.item_distribution(GRR(epsilon=0.5, domain_size=D))
        assert probs[1] == pytest.approx(0.25)
        assert probs[0] == 0.0

    def test_deterministic_targets(self):
        a = MGAAttack(domain_size=D, r=7, rng=11).target_items
        b = MGAAttack(domain_size=D, r=7, rng=11).target_items
        np.testing.assert_array_equal(a, b)


class TestMGAGRR:
    def test_reports_are_targets(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, targets=[4, 9], rng=0)
        reports = attack.craft(proto, 1000, rng=1)
        assert set(np.unique(reports)).issubset({4, 9})

    def test_uniform_over_targets(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, targets=[4, 9], rng=0)
        reports = attack.craft(proto, 50_000, rng=1)
        assert float(np.mean(reports == 4)) == pytest.approx(0.5, abs=0.01)


class TestMGAOUE:
    def test_all_target_bits_set(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, targets=[0, 5, 9], rng=0)
        bits = attack.craft(proto, 200, rng=1)
        assert bits[:, [0, 5, 9]].all()

    def test_padding_matches_expected_ones(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, targets=[0], rng=0)
        bits = attack.craft(proto, 500, rng=1)
        expected = round(proto.p + (D - 1) * proto.q)
        np.testing.assert_array_equal(bits.sum(axis=1), expected)

    def test_padding_distinct_bits(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, targets=[0], rng=0)
        bits = attack.craft(proto, 100, rng=1)
        # Each row: exact count implies distinct pad bits (bool matrix).
        assert bits.dtype == bool

    def test_no_padding_option(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, targets=[0, 1], pad_oue=False, rng=0)
        bits = attack.craft(proto, 50, rng=1)
        np.testing.assert_array_equal(bits.sum(axis=1), 2)

    def test_padding_avoids_targets(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        targets = [3, 4]
        attack = MGAAttack(domain_size=D, targets=targets, rng=0)
        bits = attack.craft(proto, 300, rng=1)
        # Target columns are always on; if padding ever landed on a target
        # the row's total on-bit count would fall short of the expected
        # value (bool matrix absorbs double-sets).
        assert bits[:, targets].all()
        expected = round(proto.p + (D - 1) * proto.q)
        np.testing.assert_array_equal(bits.sum(axis=1), expected)


class TestMGAOLH:
    def test_reports_support_many_targets(self):
        proto = OLH(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=10, seed_candidates=512, rng=0)
        reports = attack.craft(proto, 300, rng=1)
        support = proto.target_support_counts(reports, attack.target_items)
        # Random (seed, value) pairs support ~ r/g targets on average; the
        # searched pairs must beat that clearly.
        baseline = attack.r / proto.g
        assert support.mean() > baseline * 1.3

    def test_search_returns_best_coverage_pairs(self):
        proto = OLH(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=6, seed_candidates=128, rng=0)
        gen = np.random.default_rng(2)
        seeds, values = attack._search_olh_reports(proto, gen)
        assert seeds.size == values.size >= 1
        # Every winner must achieve identical (maximal) coverage.
        coverages = []
        for seed, value in zip(seeds, values):
            hashes = hashing.hash_items(
                seed, attack.target_items.astype(np.uint64), proto.g
            )
            coverages.append(int(np.sum(hashes == value)))
        assert len(set(coverages)) == 1

    def test_craft_count(self):
        proto = OLH(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=4, rng=0)
        reports = attack.craft(proto, 123, rng=1)
        assert proto.num_reports(reports) == 123


class TestMGAMisc:
    def test_invalid_seed_candidates(self):
        with pytest.raises(AttackError):
            MGAAttack(domain_size=D, r=3, seed_candidates=0, rng=0)

    def test_negative_m(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        with pytest.raises(AttackError):
            attack.craft(proto, -1)

    def test_describe_mentions_r(self):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        assert "r=3" in attack.describe()

    def test_frequency_gain_realized(self):
        # End-to-end: MGA inflates its targets' estimated frequencies.
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, targets=[0], rng=0)
        rng = np.random.default_rng(3)
        genuine_items = rng.integers(0, D, size=20_000)
        genuine = proto.perturb(genuine_items, rng)
        malicious = attack.craft(proto, 2_000, rng)
        combined = proto.concat_reports(genuine, malicious)
        freq_before = proto.aggregate(genuine)
        freq_after = proto.aggregate(combined)
        assert freq_after[0] > freq_before[0] + 0.02
