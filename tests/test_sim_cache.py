"""Tests for the persistent experiment-cell cache (repro.sim.cache).

The contract under test (ISSUE 2 acceptance criteria):

* cache keys are the canonical hash of the *full* cell spec — changing
  any spec field (dataset content, protocol/attack parameters, beta, eta,
  trials, mode, seeds, evaluation switches) changes the key;
* execution knobs that cannot change results (``workers``,
  ``chunk_users``) do NOT change the key;
* re-running any figure generation against a warm cache performs zero
  simulation trials (asserted through the engine's task counter);
* the store survives interruption artifacts: truncated/corrupt entries
  read as misses, ``verify`` flags them, ``prune`` reclaims space.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.attacks import AdaptiveAttack, MGAAttack, MultiAttacker
from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR, OLH, OUE
from repro.sim import figures
from repro.sim.cache import (
    CellCache,
    cache_tag,
    canonical_key,
    default_cache_dir,
    evaluation_cell_spec,
    fingerprint_dataset,
    fingerprint_object,
    fingerprint_seed_sequences,
    resolve_cache,
    source_digest,
)
from repro.sim.engine import TASK_COUNTER
from repro.sim.experiment import evaluate_recovery

D = 16
DATASET = zipf_dataset(domain_size=D, num_users=5_000, exponent=1.0, rng=7)


def _spec(**overrides):
    """A baseline evaluation spec with optional field overrides."""
    base = dict(
        dataset=DATASET,
        protocol=GRR(epsilon=0.5, domain_size=D),
        attack=MGAAttack(domain_size=D, r=3, rng=0),
        beta=0.05,
        eta=0.2,
        trials=3,
        mode="fast",
        with_star=True,
        with_detection=False,
        aa_top_k=5,
        seeds=np.random.SeedSequence(1).spawn(3),
    )
    base.update(overrides)
    dataset = base.pop("dataset")
    protocol = base.pop("protocol")
    attack = base.pop("attack")
    return evaluation_cell_spec(dataset, protocol, attack, **base)


class TestCanonicalKey:
    def test_key_is_deterministic(self):
        assert canonical_key(_spec()) == canonical_key(_spec())

    @pytest.mark.parametrize(
        "override",
        [
            {"beta": 0.1},
            {"eta": 0.4},
            {"trials": 4, "seeds": np.random.SeedSequence(1).spawn(4)},
            {"mode": "chunked"},
            {"with_star": False},
            {"with_detection": True},
            {"aa_top_k": 7},
            {"seeds": np.random.SeedSequence(2).spawn(3)},
            {"dataset": zipf_dataset(domain_size=D, num_users=5_001, exponent=1.0, rng=7)},
            {"protocol": GRR(epsilon=0.6, domain_size=D)},
            {"protocol": OUE(epsilon=0.5, domain_size=D)},
            {"attack": MGAAttack(domain_size=D, r=4, rng=0)},
            {"attack": MGAAttack(domain_size=D, r=3, rng=1)},  # different targets
            {"attack": AdaptiveAttack(domain_size=D, rng=0)},
            {"attack": None},
        ],
    )
    def test_key_sensitive_to_every_spec_field(self, override):
        assert canonical_key(_spec(**override)) != canonical_key(_spec())

    def test_key_invariant_to_seed_order_changes_is_false(self):
        seeds = np.random.SeedSequence(1).spawn(3)
        reordered = [seeds[1], seeds[0], seeds[2]]
        assert canonical_key(_spec(seeds=reordered)) != canonical_key(_spec())

    def test_protocol_class_disambiguates(self):
        # OLH and OUE at the same epsilon produce distinct fingerprints via
        # both the class name and the (p, q, g) attributes.
        a = fingerprint_object(OLH(epsilon=0.5, domain_size=D))
        b = fingerprint_object(OUE(epsilon=0.5, domain_size=D))
        assert a["__type__"] != b["__type__"]

    def test_multi_attacker_fingerprint_recurses(self):
        children = [AdaptiveAttack(domain_size=D, rng=i) for i in range(2)]
        fp = fingerprint_object(MultiAttacker(children))
        assert len(fp["attacks"]) == 2
        assert fp["attacks"][0] != fp["attacks"][1]

    def test_rng_state_is_not_part_of_identity(self):
        # Two attack instances with identical parameters but different
        # leftover construction generators fingerprint identically.
        a = MGAAttack(domain_size=D, targets=[1, 2, 3], rng=0)
        b = MGAAttack(domain_size=D, targets=[1, 2, 3], rng=99)
        assert fingerprint_object(a) == fingerprint_object(b)

    def test_dataset_fingerprint_hashes_content(self):
        same = zipf_dataset(domain_size=D, num_users=5_000, exponent=1.0, rng=7)
        assert fingerprint_dataset(same) == fingerprint_dataset(DATASET)

    def test_seed_fingerprint_captures_spawn_key(self):
        parent = np.random.SeedSequence(5)
        first, second = parent.spawn(1), parent.spawn(1)
        assert fingerprint_seed_sequences(first) != fingerprint_seed_sequences(second)


class TestEvaluateRecoveryCaching:
    def test_roundtrip_is_exact(self, tmp_path):
        cache = CellCache(tmp_path)
        kwargs = dict(beta=0.05, eta=0.2, trials=3, rng=1)
        cold = evaluate_recovery(
            DATASET, GRR(epsilon=0.5, domain_size=D),
            MGAAttack(domain_size=D, r=3, rng=0), cache=cache, **kwargs,
        )
        warm = evaluate_recovery(
            DATASET, GRR(epsilon=0.5, domain_size=D),
            MGAAttack(domain_size=D, r=3, rng=0), cache=cache, **kwargs,
        )
        assert warm == cold  # includes the full per-metric stats dict
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_warm_hit_runs_zero_trials(self, tmp_path):
        cache = CellCache(tmp_path)
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=3, rng=1, cache=cache)
        TASK_COUNTER.reset()
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=3, rng=1, cache=cache)
        assert TASK_COUNTER.count == 0

    def test_key_invariant_to_workers(self, tmp_path):
        cache = CellCache(tmp_path)
        serial = evaluate_recovery(DATASET, OUE(epsilon=0.5, domain_size=D), None,
                                   trials=2, rng=3, workers=1, cache=cache)
        TASK_COUNTER.reset()
        pooled = evaluate_recovery(DATASET, OUE(epsilon=0.5, domain_size=D), None,
                                   trials=2, rng=3, workers=2, cache=cache)
        assert TASK_COUNTER.count == 0, "workers must not change the cache key"
        assert pooled == serial

    def test_key_invariant_to_chunk_size_but_not_mode(self, tmp_path):
        cache = CellCache(tmp_path)
        chunked = evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                                    trials=2, rng=3, chunk_users=500, cache=cache)
        TASK_COUNTER.reset()
        rechunked = evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                                      trials=2, rng=3, chunk_users=2_000, cache=cache)
        assert TASK_COUNTER.count == 0, "chunk_users must not change the cache key"
        assert rechunked == chunked
        # ...but fast mode is a different spec field, hence a different cell.
        fast = evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                                 trials=2, rng=3, cache=cache)
        assert cache.stats.misses == 2
        assert fast.mse_before != chunked.mse_before

    def test_rng_generator_spawn_position_matters(self, tmp_path):
        # The same generator passed twice spawns different children, so the
        # second call is a different cell — no false hits.
        cache = CellCache(tmp_path)
        gen = np.random.default_rng(11)
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=gen, cache=cache)
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=gen, cache=cache)
        assert cache.stats.hits == 0 and cache.stats.misses == 2


FIG_KWARGS = dict(num_users=4_000, trials=2, rng=0)


class TestFigureCaching:
    @pytest.mark.parametrize(
        "generate",
        [
            lambda cache: figures.sweep_rows(
                "ipums", "beta", values=(0.01, 0.05), cache=cache, **FIG_KWARGS
            ),
            lambda cache: figures.figure7_rows(cache=cache, **FIG_KWARGS),
            lambda cache: figures.figure8_rows(cache=cache, **FIG_KWARGS),
            lambda cache: figures.figure9_rows(cache=cache, **FIG_KWARGS),
            lambda cache: figures.figure10_rows(cache=cache, **FIG_KWARGS),
            lambda cache: figures.table1_rows(cache=cache, **FIG_KWARGS),
        ],
        ids=["sweep", "fig7", "fig8", "fig9", "fig10", "table1"],
    )
    def test_warm_cache_regenerates_without_simulation(self, tmp_path, generate):
        cache = CellCache(tmp_path)
        cold = generate(cache)
        assert cache.stats.stores == len(cold)
        TASK_COUNTER.reset()
        warm = generate(cache)
        assert TASK_COUNTER.count == 0, "warm figure must perform zero trials"
        assert warm == cold

    def test_interrupted_sweep_resumes_from_completed_cells(self, tmp_path):
        """A rerun after interruption only simulates the missing cells."""
        cache = CellCache(tmp_path)
        run = lambda: figures.sweep_rows(
            "ipums", "beta", values=(0.01, 0.05), cache=cache, **FIG_KWARGS
        )
        full = run()
        # Simulate a Ctrl-C that landed after 4 of the 6 cells completed.
        entries = cache.entries()
        for entry in entries[:2]:
            entry.path.unlink()
        resumed = run()
        assert resumed == full
        assert cache.stats.stores == len(full) + 2  # only the missing cells re-ran

    def test_ci_columns_follow_metric_columns(self, tmp_path):
        rows = figures.table1_rows(cache=None, **FIG_KWARGS)
        cols = list(rows[0].keys())
        assert cols.index("mse_before_recovery±") == cols.index("mse_before_recovery") + 1
        assert all(row["mse_before_recovery±"] > 0 for row in rows)


class TestStoreMaintenance:
    def _fill(self, tmp_path, n=3):
        cache = CellCache(tmp_path)
        for seed in range(n):
            evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                              trials=2, rng=seed, cache=cache)
        return cache

    def test_entries_and_summary_rows(self, tmp_path):
        cache = self._fill(tmp_path)
        entries = cache.entries()
        assert len(entries) == 3
        row = entries[0].summary_row()
        assert row["dataset"] == "zipf" and row["trials"] == 2

    def test_prune_all(self, tmp_path):
        cache = self._fill(tmp_path)
        assert cache.prune() == 3
        assert cache.entries() == []

    def test_prune_respects_age_horizon(self, tmp_path):
        cache = self._fill(tmp_path)
        assert cache.prune(older_than_days=1.0) == 0  # all entries are fresh
        assert len(cache.entries()) == 3

    def test_prune_rejects_negative_horizon(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            CellCache(tmp_path).prune(older_than_days=-1)

    def test_prune_all_tags_sweeps_other_versions(self, tmp_path):
        self._fill(tmp_path)
        stale = CellCache(tmp_path, tag="v0-repro-0.9.9")
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=9, cache=stale)
        fresh = CellCache(tmp_path)
        assert fresh.prune() == 3  # current tag only
        assert fresh.prune(all_tags=True) == 1  # the stale tag's entry

    def test_corrupt_entry_is_a_miss_and_verify_flags_it(self, tmp_path):
        cache = self._fill(tmp_path, n=1)
        [entry] = cache.entries()
        entry.path.write_text("{ truncated", encoding="utf-8")
        TASK_COUNTER.reset()
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=0, cache=cache)
        assert TASK_COUNTER.count > 0  # recomputed, not served from garbage
        assert cache.stats.errors == 1

        # The recompute healed the entry; corrupt it again and verify.
        entry.path.write_text("{ truncated", encoding="utf-8")
        problems = cache.verify()
        assert len(problems) == 1 and "unreadable" in problems[0][1]
        assert cache.verify(delete=True) == problems
        assert cache.verify() == []

    def test_stale_payload_shape_is_a_miss(self, tmp_path):
        """A same-tag entry whose payload predates a RecoveryEvaluation
        field rename is recomputed, not raised (the in-place-edit caveat
        documented in the README)."""
        cache = self._fill(tmp_path, n=1)
        [entry] = cache.entries()
        data = json.loads(entry.path.read_text(encoding="utf-8"))
        data["payload"]["metric_from_the_future"] = data["payload"].pop("mse_before")
        entry.path.write_text(json.dumps(data), encoding="utf-8")
        TASK_COUNTER.reset()
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=0, cache=cache)
        assert TASK_COUNTER.count > 0  # recomputed
        assert cache.stats.hits == 0 and cache.stats.errors == 1

    def test_verify_detects_tampered_spec(self, tmp_path):
        cache = self._fill(tmp_path, n=1)
        [entry] = cache.entries()
        data = json.loads(entry.path.read_text(encoding="utf-8"))
        data["spec"]["beta"] = 0.99
        entry.path.write_text(json.dumps(data), encoding="utf-8")
        problems = cache.verify()
        assert len(problems) == 1 and "key does not match" in problems[0][1]

    def test_version_tag_isolates_schema_changes(self, tmp_path):
        old = CellCache(tmp_path, tag="v0-repro-0.0.1")
        new = CellCache(tmp_path)
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=1, cache=old)
        TASK_COUNTER.reset()
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=1, cache=new)
        assert TASK_COUNTER.count > 0  # other version's entries are invisible
        assert new.stats.misses == 1


class TestTrialBlockIntegrity:
    """Appendable trial blocks (ISSUE 7): integrity of the block chain.

    A budgeted cell's trials persist as contiguous ``[start, stop)``
    blocks; any violation — corrupt file, gap, overlap, tampered Welford
    payload — must turn the *whole cell* into a miss (never a partial
    hit), be reported by ``verify``, and never break the summary-entry
    store the blocks live beside.
    """

    SPEC = {"kind": "trial-stream", "suite": "block-integrity"}

    def _store(self, root):
        cache = CellCache(root)
        return cache, cache.block_store(self.SPEC)

    def _fill(self, store, stop=6, batch=2):
        for start in range(0, stop, batch):
            per_trial = [{"x": float(i)} for i in range(start, start + batch)]
            assert store.append(start, start + batch, per_trial) is not None

    def test_roundtrip_preserves_trials_and_counts_reuse(self, tmp_path):
        cache, store = self._store(tmp_path)
        self._fill(store)
        chain = store.load()
        assert [(start, stop) for start, stop, _ in chain] == [(0, 2), (2, 4), (4, 6)]
        values = [m["x"] for _, _, chunk in chain for m in chunk]
        assert values == [float(i) for i in range(6)]
        assert cache.stats.block_hits == 3
        assert cache.stats.block_trials_reused == 6
        assert cache.stats.block_stores == 3

    def test_corrupt_block_is_a_whole_cell_miss(self, tmp_path):
        _, store = self._store(tmp_path)
        self._fill(store)
        store._block_path(2, 4).write_text("{ truncated", encoding="utf-8")
        cache, store = self._store(tmp_path)  # fresh stats
        assert store.load() == []
        assert cache.stats.errors == 1
        assert cache.stats.block_hits == 0, "no partial hit from the valid blocks"

    def test_gapped_chain_is_a_whole_cell_miss(self, tmp_path):
        _, store = self._store(tmp_path)
        self._fill(store)
        store._block_path(0, 2).unlink()
        cache, store = self._store(tmp_path)
        assert store.load() == []
        assert cache.stats.errors == 1

    def test_overlapping_chain_is_a_whole_cell_miss(self, tmp_path):
        # append refuses overlaps, so forge one: build the [1, 3) block in
        # a scratch cache (same spec => same stream key => valid content)
        # and drop its file into the real chain.
        scratch_cache, scratch = self._store(tmp_path / "scratch")
        scratch.append(0, 1, [{"x": 0.5}])
        scratch.append(1, 3, [{"x": 1.5}, {"x": 2.5}])
        _, store = self._store(tmp_path / "real")
        self._fill(store)
        overlap = scratch._block_path(1, 3)
        (store._block_path(1, 3)).write_text(
            overlap.read_text(encoding="utf-8"), encoding="utf-8"
        )
        cache, store = self._store(tmp_path / "real")
        assert store.load() == []
        assert cache.stats.errors == 1

    def test_tampered_welford_payload_is_rejected(self, tmp_path):
        _, store = self._store(tmp_path)
        self._fill(store)
        path = store._block_path(4, 6)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["welford"]["x"]["mean"] += 1.0  # stats no longer refold
        path.write_text(json.dumps(data), encoding="utf-8")
        cache, store = self._store(tmp_path)
        assert store.peek(4, 6) is None
        assert store.load() == []
        assert cache.stats.errors == 2  # one per failed read path

    def test_append_refuses_gaps_and_invalid_ranges(self, tmp_path):
        _, store = self._store(tmp_path)
        assert store.append(2, 4, [{"x": 0.0}, {"x": 1.0}]) is None  # gap at 0
        assert store.append(0, 2, [{"x": 0.0}, {"x": 1.0}]) is not None
        assert store.append(4, 6, [{"x": 0.0}, {"x": 1.0}]) is None  # gap at 2
        assert store.append(0, 2, [{"x": 9.0}, {"x": 9.0}]) is None  # re-append
        assert [(s, t) for s, t, _ in store.load()] == [(0, 2)]
        with pytest.raises(InvalidParameterError):
            store.append(2, 2, [])
        with pytest.raises(InvalidParameterError):
            store.append(2, 4, [{"x": 0.0}])  # wrong trial count

    def test_verify_walks_block_problems_to_a_clean_store(self, tmp_path):
        cache, store = self._store(tmp_path)
        self._fill(store)
        store._block_path(2, 4).write_text("{ truncated", encoding="utf-8")
        # One pass reports the corrupt block AND the chain gap it leaves:
        # the valid tail no longer connects to the valid head.
        problems = dict(cache.verify())
        assert len(problems) == 2
        assert any("unreadable or inconsistent trial block" in p for p in problems.values())
        assert any("gapped trial blocks" in p for p in problems.values())
        # Deleting both offenders yields a clean (short) chain.
        assert dict(cache.verify(delete=True)) == problems
        assert cache.verify() == []
        assert [(s, t) for s, t, _ in store.load()] == [(0, 2)]

    def test_blocks_are_invisible_to_entries_and_count(self, tmp_path):
        cache, store = self._store(tmp_path)
        self._fill(store)
        assert cache.entries() == []
        assert cache.count() == 0
        assert cache.verify() == []

    def test_prune_sweeps_aged_blocks(self, tmp_path):
        cache, store = self._store(tmp_path)
        self._fill(store)
        assert cache.prune(older_than_days=1.0) == 0  # all fresh
        old = time.time() - 2 * 86_400.0
        for _, _, _ in store.load():
            pass
        for path in sorted(store.directory.glob("*.json")):
            os.utime(path, (old, old))
        assert cache.prune(older_than_days=1.0) == 3
        assert store.load() == []

    def test_corrupt_block_recovers_bit_identically(self, tmp_path):
        """End to end through evaluate_recovery: a corrupt block voids the
        chain (the cell-level load is a miss, never a partial chain), the
        adaptive driver re-simulates the corrupt range — reusing only
        blocks that individually revalidate (range, stream key, Welford
        refold) — and the result equals the uncached run bit for bit."""
        from repro.sim.engine import TrialBudget

        budget = TrialBudget(target_halfwidth=1e-12, min_trials=2, max_trials=4, batch=2)

        def run(cache):
            return evaluate_recovery(
                DATASET, GRR(epsilon=0.5, domain_size=D),
                MGAAttack(domain_size=D, r=3, rng=0),
                trials=2, rng=4, cache=cache, budget=budget,
            )

        cache = CellCache(tmp_path)
        reference = run(cache)
        block_dirs = sorted(tmp_path.rglob("*.blocks"))
        assert len(block_dirs) == 1
        victim, survivor = sorted(block_dirs[0].glob("*.json"))
        victim.write_text("{ truncated", encoding="utf-8")
        [entry] = cache.entries()
        entry.path.unlink()  # force the rerun past the summary entry
        fresh = CellCache(tmp_path)
        TASK_COUNTER.reset()
        healed = run(fresh)
        # Trials [0, 2) re-simulate; the [2, 4) block revalidates and is
        # reused — never the voided chain as a whole.
        assert TASK_COUNTER.count == 2
        assert fresh.stats.errors >= 1
        assert fresh.stats.block_trials_reused == 2
        assert healed == reference
        assert survivor.exists()


class TestSourceDigest:
    """In-place source edits auto-invalidate the cache (ROADMAP PR 2
    follow-up): the version tag mixes in a content hash of the
    simulation-relevant source tree."""

    def test_tag_carries_source_digest(self):
        digest = source_digest()
        assert len(digest) == 12
        assert cache_tag().endswith(f"-{digest}")

    def test_default_digest_is_memoized(self):
        assert source_digest() == source_digest()

    def test_digest_tracks_file_content(self, tmp_path):
        module = tmp_path / "sim" / "engine.py"
        module.parent.mkdir()
        module.write_text("A = 1\n", encoding="utf-8")
        original = source_digest(tmp_path)
        module.write_text("A = 2\n", encoding="utf-8")
        assert source_digest(tmp_path) != original
        module.write_text("A = 1\n", encoding="utf-8")
        assert source_digest(tmp_path) == original

    def test_digest_tracks_new_files_in_every_package(self, tmp_path):
        seen = {source_digest(tmp_path)}
        for package in ("sim", "core", "protocols", "attacks"):
            sub = tmp_path / package
            sub.mkdir()
            (sub / "x.py").write_text(f"# {package}\n", encoding="utf-8")
            digest = source_digest(tmp_path)
            assert digest not in seen
            seen.add(digest)

    def test_digest_ignores_non_python_and_foreign_dirs(self, tmp_path):
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "a.py").write_text("A = 1\n", encoding="utf-8")
        original = source_digest(tmp_path)
        (tmp_path / "sim" / "notes.txt").write_text("x", encoding="utf-8")
        (tmp_path / "datasets").mkdir()
        (tmp_path / "datasets" / "b.py").write_text("B = 1\n", encoding="utf-8")
        assert source_digest(tmp_path) == original

    def test_digest_change_invalidates_entries(self, tmp_path, monkeypatch):
        import repro.sim.cache as cache_module

        warm = CellCache(tmp_path)
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=1, cache=warm)
        # Simulate an in-place source edit: the memoized default digest
        # changes, so a fresh CellCache resolves to a different tag and
        # the old entry is invisible.
        monkeypatch.setattr(cache_module, "_DEFAULT_SOURCE_DIGEST", "deadbeef0123")
        edited = CellCache(tmp_path)
        assert edited.tag != warm.tag
        TASK_COUNTER.reset()
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=1, cache=edited)
        assert TASK_COUNTER.count > 0
        assert edited.stats.misses == 1


class TestGetEvaluationStatsCounting:
    """Shape-mismatch lookups count once, after decoding — never the
    hits-then-rollback dance that could report negative hit counts."""

    def test_first_access_mismatch_never_goes_negative(self, tmp_path):
        warm = CellCache(tmp_path)
        spec = _spec()
        evaluation = evaluate_recovery(
            DATASET, GRR(epsilon=0.5, domain_size=D),
            MGAAttack(domain_size=D, r=3, rng=0),
            beta=0.05, eta=0.2, trials=3, rng=1, cache=warm,
        )
        assert evaluation is not None
        # Corrupt the payload shape of the stored entry (field renamed by
        # a hypothetical in-place edit under the same tag).
        [entry] = warm.entries()
        data = json.loads(entry.path.read_text(encoding="utf-8"))
        data["payload"]["renamed"] = data["payload"].pop("trials")
        entry.path.write_text(json.dumps(data), encoding="utf-8")
        # A *fresh* cache whose very first access is the mismatch: the old
        # rollback produced hits == -1 here.
        fresh = CellCache(tmp_path)
        assert fresh.get_evaluation(data["spec"]) is None
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == 1
        assert fresh.stats.errors == 1
        assert fresh.stats.hit_rate == 0.0
        assert "-" not in fresh.stats.summary().split("(")[0]

    def test_clean_hit_still_counts_once(self, tmp_path):
        cache = CellCache(tmp_path)
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=1, cache=cache)
        evaluate_recovery(DATASET, GRR(epsilon=0.5, domain_size=D), None,
                          trials=2, rng=1, cache=cache)
        assert (cache.stats.hits, cache.stats.misses, cache.stats.errors) == (1, 1, 0)


class TestOrphanTmpSweep:
    def _orphan(self, cache, age_seconds):
        cache.root.mkdir(parents=True, exist_ok=True)
        path = cache.root / "ab" / "tmp_killed_writer.tmp"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ half-written", encoding="utf-8")
        stamp = time.time() - age_seconds
        os.utime(path, (stamp, stamp))
        return path

    def test_prune_sweeps_old_tmp_files(self, tmp_path):
        cache = CellCache(tmp_path)
        orphan = self._orphan(cache, age_seconds=2 * cache.TMP_ORPHAN_SECONDS)
        assert cache.prune() == 1
        assert not orphan.exists()

    def test_fresh_tmp_files_survive(self, tmp_path):
        """A young .tmp may belong to a live writer mid-put."""
        cache = CellCache(tmp_path)
        inflight = self._orphan(cache, age_seconds=0)
        assert cache.prune() == 0
        assert inflight.exists()

    def test_tmp_files_are_invisible_to_entries_and_verify(self, tmp_path):
        cache = CellCache(tmp_path)
        self._orphan(cache, age_seconds=0)
        assert cache.entries() == []
        assert cache.verify() == []
        assert cache.count() == 0


def _cache_churn_worker(cache_dir, tag, worker_id, cells, failures_path):
    """One process of the concurrent-access test: interleaves puts, gets,
    and every maintenance operation against the shared store, recording
    any broken invariant into ``failures_path``."""
    import pathlib

    failures = []
    cache = CellCache(cache_dir, tag=tag)
    for i in range(cells):
        spec = {"kind": "row", "worker": worker_id, "i": i}
        cache.put(spec, {"worker": worker_id, "i": i})
        got = cache.get(spec)
        if got != {"worker": worker_id, "i": i}:
            failures.append(f"lost own cell {worker_id}/{i}: {got!r}")
        # Maintenance racing the other worker's writes: must neither
        # crash nor flag healthy entries.
        if i % 3 == 0:
            problems = cache.verify()
            if problems:
                failures.append(f"verify flagged {problems!r}")
        if i % 4 == 0:
            cache.entries()
            cache.prune(older_than_days=1.0)  # fresh entries: removes none
        # Churn: delete one of our own older entries directly, simulating
        # a peer's prune racing the other process's iteration.
        if i % 5 == 4:
            victim = {"kind": "row", "worker": worker_id, "i": i - 2}
            try:
                cache._path(cache.key_for(victim)).unlink()
            except FileNotFoundError:
                pass
    pathlib.Path(failures_path).write_text("\n".join(failures), encoding="utf-8")


class TestConcurrentAccess:
    """Two processes put/get/prune/verify against one cache directory —
    the invariant multi-machine sharding relies on: no corrupt entries,
    no lost completed cells, maintenance races are invisible."""

    CELLS = 40

    def test_two_process_churn_keeps_store_consistent(self, tmp_path):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        outputs = [tmp_path / f"failures-{i}.txt" for i in range(2)]
        workers = [
            ctx.Process(
                target=_cache_churn_worker,
                args=(str(tmp_path / "store"), "shared", i, self.CELLS, str(out)),
            )
            for i, out in enumerate(outputs)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        for out in outputs:
            assert out.read_text(encoding="utf-8") == ""

        # Every cell that was not deliberately deleted is intact.
        cache = CellCache(tmp_path / "store", tag="shared")
        assert cache.verify() == []
        deleted = {
            (w, i - 2) for w in range(2) for i in range(self.CELLS) if i % 5 == 4
        }
        for worker_id in range(2):
            for i in range(self.CELLS):
                if (worker_id, i) in deleted:
                    continue
                spec = {"kind": "row", "worker": worker_id, "i": i}
                assert cache.get(spec) == {"worker": worker_id, "i": i}, (
                    f"completed cell {worker_id}/{i} was lost"
                )
        assert cache.stats.errors == 0


class TestResolveCache:
    def test_no_cache_wins(self, tmp_path):
        assert resolve_cache(cache_dir=tmp_path, no_cache=True) is None

    def test_explicit_dir(self, tmp_path):
        cache = resolve_cache(cache_dir=tmp_path)
        assert cache is not None and cache.cache_dir == tmp_path

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"
        cache = resolve_cache()
        assert cache is not None and cache.cache_dir == tmp_path / "env"
