"""Bit-identity of the streaming aggregation core.

The contract the online service stands on: folding the same reports in
*any* chunking — through the explicit-state protocol kernel or the
per-epoch :class:`repro.sim.AggregatorState` — must equal one batch
``support_counts`` pass byte for byte, for every shipped protocol,
OLH cohort mode included.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, ProtocolError
from repro.protocols import decode_array, encode_array, make_protocol
from repro.sim import AggregatorState, chunked_support_counts
from repro.sim.streaming import protocol_key

EPSILON = 1.0
DOMAIN = 24
USERS = 4000


def _protocols():
    """Every shipped frequency oracle, plus OLH/BLH in cohort mode."""
    params = [
        ("grr", {}),
        ("oue", {}),
        ("sue", {}),
        ("olh", {}),
        ("blh", {}),
        ("olh", {"cohort": 8}),
        ("blh", {"cohort": 8}),
    ]
    for name, kwargs in params:
        label = name + ("-cohort" if kwargs else "")
        yield pytest.param(name, kwargs, id=label)


def _reports_for(name, kwargs, seed=0):
    protocol = make_protocol(name, EPSILON, DOMAIN, **kwargs)
    items = np.random.default_rng(seed).integers(0, DOMAIN, size=USERS)
    reports = protocol.perturb(items, np.random.default_rng(seed + 1))
    return protocol, reports


class TestFoldBitIdentity:
    @pytest.mark.parametrize("name,kwargs", _protocols())
    @pytest.mark.parametrize("chunk", [1, 7, 333, USERS, 10 * USERS])
    def test_fold_equals_batch_support_counts(self, name, kwargs, chunk):
        protocol, reports = _reports_for(name, kwargs)
        batch = protocol.support_counts(reports)
        folded = protocol.fold_support_counts(
            protocol.init_support_state(), reports, chunk_users=chunk
        )
        assert folded.dtype == np.int64
        assert np.array_equal(folded, batch)

    @pytest.mark.parametrize("name,kwargs", _protocols())
    def test_fold_equals_chunked_support_counts(self, name, kwargs):
        protocol, reports = _reports_for(name, kwargs)
        for chunk in (5, 1000, None):
            assert np.array_equal(
                protocol.fold_support_counts(
                    protocol.init_support_state(), reports, chunk_users=chunk
                ),
                chunked_support_counts(protocol, reports, chunk_users=chunk),
            )

    @pytest.mark.parametrize("name,kwargs", _protocols())
    @pytest.mark.parametrize("split", [1, 11, 901, USERS])
    def test_arbitrary_batch_splits_fold_identically(self, name, kwargs, split):
        protocol, reports = _reports_for(name, kwargs)
        batch = protocol.support_counts(reports)
        state = protocol.init_support_state()
        for start in range(0, USERS, split):
            protocol.fold_support_counts(
                state,
                protocol.slice_reports(reports, start, min(start + split, USERS)),
                chunk_users=137,
            )
        assert np.array_equal(state, batch)

    def test_fold_accumulates_in_place(self):
        protocol, reports = _reports_for("grr", {})
        state = protocol.init_support_state()
        out = protocol.fold_support_counts(state, reports)
        assert out is state

    def test_fold_rejects_bad_state(self):
        protocol, reports = _reports_for("grr", {})
        with pytest.raises(ProtocolError):
            protocol.fold_support_counts(np.zeros(DOMAIN + 1, dtype=np.int64), reports)
        with pytest.raises(ProtocolError):
            protocol.fold_support_counts(np.zeros(DOMAIN, dtype=np.float64), reports)
        with pytest.raises(InvalidParameterError):
            protocol.fold_support_counts(
                protocol.init_support_state(), reports, chunk_users=0
            )

    def test_scan_bounded_caps_olh_grid_without_changing_counts(self):
        protocol, reports = _reports_for("olh", {})
        bounded = protocol.scan_bounded(3)
        assert bounded.chunk_cells == 3 * DOMAIN
        assert bounded is not protocol
        assert protocol.scan_bounded(10**9) is protocol
        assert np.array_equal(
            bounded.support_counts(reports), protocol.support_counts(reports)
        )

    def test_scan_bounded_is_identity_by_default(self):
        protocol, _ = _reports_for("grr", {})
        assert protocol.scan_bounded(1) is protocol


class TestWireCodec:
    @pytest.mark.parametrize("name,kwargs", _protocols())
    def test_round_trip_is_byte_equal(self, name, kwargs):
        protocol, reports = _reports_for(name, kwargs)
        payload = json.loads(json.dumps(protocol.encode_reports(reports)))
        decoded = protocol.decode_reports(payload)
        assert protocol.num_reports(decoded) == USERS
        assert np.array_equal(
            protocol.support_counts(decoded), protocol.support_counts(reports)
        )

    def test_encode_array_rejects_foreign_dtypes(self):
        with pytest.raises(ProtocolError):
            encode_array(np.zeros(3, dtype=np.float64))

    def test_decode_array_rejects_tampered_payloads(self):
        payload = encode_array(np.arange(4, dtype=np.int64))
        wrong_len = dict(payload, shape=[5])
        with pytest.raises(ProtocolError):
            decode_array(wrong_len)
        wrong_dtype = dict(payload, dtype="float64")
        with pytest.raises(ProtocolError):
            decode_array(wrong_dtype)
        with pytest.raises(ProtocolError):
            decode_array({"nope": 1})

    def test_decoded_arrays_are_writable(self):
        decoded = decode_array(encode_array(np.arange(4, dtype=np.int64)))
        decoded += 1  # would raise on a read-only frombuffer view
        assert decoded[0] == 1


class TestAggregatorState:
    @pytest.mark.parametrize("name,kwargs", _protocols())
    def test_ingest_matches_batch(self, name, kwargs):
        protocol, reports = _reports_for(name, kwargs)
        agg = AggregatorState(protocol, chunk_users=256)
        for start in range(0, USERS, 707):
            agg.ingest(
                "round-1",
                protocol.slice_reports(reports, start, min(start + 707, USERS)),
            )
        assert np.array_equal(
            agg.support_counts("round-1"), protocol.support_counts(reports)
        )
        assert agg.num_reports("round-1") == USERS
        assert np.array_equal(
            agg.estimate_frequencies("round-1"), protocol.aggregate(reports)
        )

    def test_epochs_are_independent(self):
        protocol, reports = _reports_for("oue", {})
        agg = AggregatorState(protocol)
        agg.ingest("a", protocol.slice_reports(reports, 0, 1000))
        agg.ingest("b", protocol.slice_reports(reports, 1000, 4000))
        assert agg.num_reports("a") == 1000
        assert agg.num_reports("b") == 3000
        assert agg.epoch_names() == ["a", "b"]
        total = agg.support_counts("a") + agg.support_counts("b")
        assert np.array_equal(total, protocol.support_counts(reports))

    @pytest.mark.parametrize("name,kwargs", _protocols())
    def test_merge_equals_single_stream(self, name, kwargs):
        protocol, reports = _reports_for(name, kwargs)
        left = AggregatorState(protocol)
        right = AggregatorState(protocol)
        left.ingest("e", protocol.slice_reports(reports, 0, 1500))
        right.ingest("e", protocol.slice_reports(reports, 1500, USERS))
        right.ingest("only-right", protocol.slice_reports(reports, 0, 10))
        left.merge(right)
        assert np.array_equal(
            left.support_counts("e"), protocol.support_counts(reports)
        )
        assert left.num_reports("e") == USERS
        assert left.num_reports("only-right") == 10

    def test_merge_rejects_protocol_mismatch(self):
        a = AggregatorState(make_protocol("olh", EPSILON, DOMAIN, cohort=8))
        b = AggregatorState(make_protocol("olh", EPSILON, DOMAIN))
        with pytest.raises(ProtocolError):
            a.merge(b)

    @pytest.mark.parametrize("name,kwargs", _protocols())
    def test_snapshot_restore_resumes_mid_stream(self, name, kwargs):
        protocol, reports = _reports_for(name, kwargs)
        straight = AggregatorState(protocol)
        straight.ingest("e", reports)

        interrupted = AggregatorState(protocol)
        interrupted.ingest("e", protocol.slice_reports(reports, 0, 2500))
        snap = json.loads(json.dumps(interrupted.snapshot()))
        resumed = AggregatorState.restore(snap, protocol)
        resumed.ingest("e", protocol.slice_reports(reports, 2500, USERS))

        assert np.array_equal(
            resumed.support_counts("e"), straight.support_counts("e")
        )
        assert resumed.num_reports("e") == straight.num_reports("e")

    def test_restore_rejects_wrong_protocol(self):
        protocol, reports = _reports_for("olh", {"cohort": 8})
        agg = AggregatorState(protocol)
        agg.ingest("e", reports)
        snap = agg.snapshot()
        with pytest.raises(ProtocolError):
            AggregatorState.restore(snap, make_protocol("olh", EPSILON, DOMAIN))

    def test_restore_rejects_unknown_format(self):
        protocol = make_protocol("grr", EPSILON, DOMAIN)
        snap = AggregatorState(protocol).snapshot()
        snap["format"] = 999
        with pytest.raises(InvalidParameterError):
            AggregatorState.restore(snap, protocol)

    def test_chunk_users_is_execution_only(self):
        protocol, reports = _reports_for("olh", {})
        coarse = AggregatorState(protocol, chunk_users=None)
        fine = AggregatorState(protocol, chunk_users=13)
        coarse.ingest("e", reports)
        fine.ingest("e", reports)
        assert np.array_equal(coarse.support_counts("e"), fine.support_counts("e"))
        with pytest.raises(InvalidParameterError):
            AggregatorState(protocol, chunk_users=0)

    def test_protocol_key_tracks_distribution_not_execution(self):
        base = make_protocol("olh", EPSILON, DOMAIN)
        assert protocol_key(base) == protocol_key(base.with_chunk_cells(17))
        assert protocol_key(base) != protocol_key(base.with_cohort(8))
        assert protocol_key(base) != protocol_key(make_protocol("blh", EPSILON, DOMAIN))
