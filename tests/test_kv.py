"""Tests for the key-value extension (the paper's named future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AttackError, ProtocolError, RecoveryError
from repro.kv import (
    KeyValueProtocol,
    KVPoisoningAttack,
    recover_key_value,
)
from repro.kv.protocol import KVReports

K = 8
N = 120_000


@pytest.fixture()
def protocol():
    return KeyValueProtocol(eps_key=2.0, eps_value=2.0, num_keys=K)


def _population(rng_seed=0):
    """A synthetic key-value population with known per-key means."""
    rng = np.random.default_rng(rng_seed)
    freq = np.array([0.30, 0.20, 0.15, 0.12, 0.10, 0.06, 0.04, 0.03])
    means = np.array([0.5, -0.3, 0.0, 0.8, -0.6, 0.2, -0.1, 0.4])
    keys = rng.choice(K, size=N, p=freq)
    values = np.clip(means[keys] + rng.normal(0, 0.2, size=N), -1, 1)
    return keys, values, freq, means


class TestProtocol:
    def test_budget_composition(self, protocol):
        assert protocol.epsilon == pytest.approx(4.0)

    def test_num_keys_validation(self):
        with pytest.raises(Exception):
            KeyValueProtocol(eps_key=1.0, eps_value=1.0, num_keys=1)

    def test_perturb_shapes(self, protocol):
        reports = protocol.perturb(np.array([0, 1]), np.array([0.5, -0.5]), rng=0)
        assert len(reports) == 2

    def test_value_bounds_enforced(self, protocol):
        with pytest.raises(Exception):
            protocol.perturb(np.array([0]), np.array([1.5]), rng=0)

    def test_mismatched_shapes(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.perturb(np.array([0, 1]), np.array([0.5]), rng=0)

    def test_reports_shape_validation(self):
        with pytest.raises(ProtocolError):
            KVReports(keys=np.array([0, 1]), bits=np.array([1]))
        with pytest.raises(ProtocolError):
            KVReports(keys=np.array([[0, 1]]), bits=np.array([[1, 0]]))

    def test_describe_and_name(self, protocol):
        assert protocol.name == "privkv"
        attack = KVPoisoningAttack(num_keys=K, targets=[6, 7], target_bit=1)
        assert attack.describe() == "kv-mga(r=2,bit=1)"

    def test_frequency_estimates_unbiased(self, protocol):
        keys, values, freq, _ = _population()
        reports = protocol.perturb(keys, values, rng=1)
        aggregate = protocol.aggregate(reports)
        np.testing.assert_allclose(aggregate.frequencies, freq, atol=0.02)

    def test_mean_estimates_debiased(self, protocol):
        keys, values, _, means = _population()
        reports = protocol.perturb(keys, values, rng=1)
        aggregate = protocol.aggregate(reports)
        # True per-key value means (the discretization is unbiased).
        true_means = np.array([values[keys == k].mean() for k in range(K)])
        np.testing.assert_allclose(aggregate.means, true_means, atol=0.1)

    def test_zero_reports_rejected(self, protocol):
        empty = KVReports(keys=np.empty(0, dtype=np.int64), bits=np.empty(0, dtype=np.int64))
        with pytest.raises(ProtocolError):
            protocol.aggregate(empty)

    def test_craft_validation(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.craft_reports(np.array([K]), np.array([1]))
        with pytest.raises(ProtocolError):
            protocol.craft_reports(np.array([0]), np.array([2]))

    def test_concat(self, protocol):
        a = protocol.craft_reports(np.array([0]), np.array([1]))
        b = protocol.craft_reports(np.array([1, 2]), np.array([0, 1]))
        assert len(KeyValueProtocol.concat(a, b)) == 3


class TestAttack:
    def test_targets_resolved(self):
        attack = KVPoisoningAttack(num_keys=K, r=3, rng=0)
        assert attack.target_keys.size == 3

    def test_explicit_targets(self):
        attack = KVPoisoningAttack(num_keys=K, targets=[6, 7])
        np.testing.assert_array_equal(attack.target_keys, [6, 7])

    def test_validation(self):
        with pytest.raises(AttackError):
            KVPoisoningAttack(num_keys=1)
        with pytest.raises(AttackError):
            KVPoisoningAttack(num_keys=K, target_bit=2)
        attack = KVPoisoningAttack(num_keys=K, r=2, rng=0)
        with pytest.raises(AttackError):
            attack.craft(KeyValueProtocol(1.0, 1.0, K), -1)

    def test_crafted_reports_hit_targets_with_bit(self, protocol):
        attack = KVPoisoningAttack(num_keys=K, targets=[6, 7], target_bit=1)
        reports = attack.craft(protocol, 1000, rng=1)
        assert set(np.unique(reports.keys)).issubset({6, 7})
        assert np.all(reports.bits == 1)

    def test_attack_inflates_frequency_and_mean(self, protocol):
        keys, values, _, _ = _population()
        genuine = protocol.perturb(keys, values, rng=1)
        attack = KVPoisoningAttack(num_keys=K, targets=[7], target_bit=1)
        malicious = attack.craft(protocol, 10_000, rng=2)
        combined = KeyValueProtocol.concat(genuine, malicious)
        clean = protocol.aggregate(genuine)
        poisoned = protocol.aggregate(combined)
        assert poisoned.frequencies[7] > clean.frequencies[7] + 0.02
        assert poisoned.means[7] > clean.means[7]


class TestRecovery:
    def _poisoned_setup(self, protocol, beta=0.08):
        keys, values, freq, means = _population()
        genuine = protocol.perturb(keys, values, rng=1)
        attack = KVPoisoningAttack(num_keys=K, targets=[6, 7], target_bit=1, rng=0)
        m = int(beta * N / (1 - beta))
        malicious = attack.craft(protocol, m, rng=2)
        combined = KeyValueProtocol.concat(genuine, malicious)
        poisoned = protocol.aggregate(combined)
        clean = protocol.aggregate(genuine)
        return freq, means, clean, poisoned, attack, len(combined), m

    def test_frequency_recovery_improves(self, protocol):
        freq, _, clean, poisoned, attack, total, m = self._poisoned_setup(protocol)
        result = recover_key_value(
            protocol, poisoned, total, eta=0.1, target_keys=attack.target_keys
        )
        before = float(np.mean((poisoned.frequencies - freq) ** 2))
        after = float(np.mean((result.frequencies - freq) ** 2))
        assert after < before

    def test_mean_recovery_improves_on_targets(self, protocol):
        _, means, clean, poisoned, attack, total, m = self._poisoned_setup(protocol)
        eta = m / (total - m)
        result = recover_key_value(
            protocol, poisoned, total, eta=eta, target_keys=attack.target_keys
        )
        targets = attack.target_keys
        bias_before = np.abs(poisoned.means[targets] - clean.means[targets]).mean()
        bias_after = np.abs(result.means[targets] - clean.means[targets]).mean()
        assert bias_after < bias_before

    def test_non_knowledge_mode_runs(self, protocol):
        _, _, _, poisoned, _, total, _ = self._poisoned_setup(protocol)
        result = recover_key_value(protocol, poisoned, total)
        assert result.frequencies.shape == (K,)
        assert result.means.shape == (K,)

    def test_validation(self, protocol):
        _, _, _, poisoned, _, total, _ = self._poisoned_setup(protocol)
        with pytest.raises(RecoveryError):
            recover_key_value(protocol, poisoned, 0)
        with pytest.raises(RecoveryError):
            recover_key_value(protocol, poisoned, -5)
        with pytest.raises(RecoveryError):
            recover_key_value(protocol, poisoned, total, malicious_bit=3)
        with pytest.raises(RecoveryError):
            recover_key_value(protocol, poisoned, total, malicious_bit=-1)
        with pytest.raises(RecoveryError):
            recover_key_value(protocol, poisoned, total, target_keys=[K + 1])
        with pytest.raises(RecoveryError):
            recover_key_value(protocol, poisoned, total, target_keys=[-1])
        with pytest.raises(RecoveryError):
            recover_key_value(protocol, poisoned, total, target_keys=[])

    def test_recovered_frequencies_are_probability_vector(self, protocol):
        from repro.core.projection import is_probability_vector

        _, _, _, poisoned, attack, total, _ = self._poisoned_setup(protocol)
        result = recover_key_value(
            protocol, poisoned, total, target_keys=attack.target_keys
        )
        assert is_probability_vector(result.frequencies, atol=1e-8)

    def test_recovered_means_bounded(self, protocol):
        _, _, _, poisoned, attack, total, _ = self._poisoned_setup(protocol)
        result = recover_key_value(
            protocol, poisoned, total, target_keys=attack.target_keys
        )
        assert np.all(result.means >= -1.0)
        assert np.all(result.means <= 1.0)
