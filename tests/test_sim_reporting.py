"""Tests for result export (CSV / JSON round trips)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.sim.reporting import read_rows, write_csv, write_json

ROWS = [
    {"cell": "mga-grr", "mse_before": 0.05, "mse_after": 0.001},
    {"cell": "mga-oue", "mse_before": 0.01, "mse_after": 0.0005},
]


class TestCSV:
    def test_round_trip(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "out.csv")
        loaded = read_rows(path)
        assert len(loaded) == 2
        assert loaded[0]["cell"] == "mga-grr"
        assert loaded[0]["mse_before"] == pytest.approx(0.05)

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "deep" / "nested" / "out.csv")
        assert path.exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            write_csv([], tmp_path / "out.csv")

    def test_inconsistent_columns_rejected(self, tmp_path):
        bad = [{"a": 1}, {"b": 2}]
        with pytest.raises(InvalidParameterError):
            write_csv(bad, tmp_path / "out.csv")


class TestJSON:
    def test_round_trip(self, tmp_path):
        path = write_json(ROWS, tmp_path / "out.json")
        loaded = read_rows(path)
        assert loaded == [
            {"cell": "mga-grr", "mse_before": 0.05, "mse_after": 0.001},
            {"cell": "mga-oue", "mse_before": 0.01, "mse_after": 0.0005},
        ]

    def test_numpy_values_serializable(self, tmp_path):
        import numpy as np

        rows = [{"x": np.float64(0.5), "n": 3}]
        path = write_json(rows, tmp_path / "np.json")
        assert read_rows(path)[0]["x"] == 0.5


class TestReadRows:
    def test_unknown_extension(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            read_rows(tmp_path / "out.parquet")


class TestCLIOutput:
    def test_cli_writes_csv(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "table1.csv"
        code = main(
            [
                "run",
                "--figure",
                "table1",
                "--trials",
                "1",
                "--num-users",
                "5000",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        rows = read_rows(out)
        assert len(rows) == 6

    def test_cli_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig8.json"
        code = main(
            [
                "run",
                "--figure",
                "fig8",
                "--trials",
                "1",
                "--num-users",
                "5000",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        rows = read_rows(out)
        assert rows and "mse_mga" in rows[0]
