"""Fixture-driven tests for every registered repro-lint rule.

Each fixture under ``tests/fixtures/lint/`` mixes known-good and
known-bad snippets; every line expected to be flagged carries a
``# LINT: REPnnn`` marker (comma-separated for multiple findings on one
line).  The tests run the real runner over each fixture and compare the
(line, rule) multiset against the markers — so rule ids, files *and*
line numbers are all pinned, and a rule that silently stops firing (or
starts over-firing on the good snippets) fails loudly.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.exceptions import InvalidParameterError
from repro.lint import RULES, LintRule, lint_paths, register_rule, resolve_rules

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"

_MARKER = re.compile(r"#\s*LINT:\s*([A-Z0-9,\s]+)")

#: fixture file -> the rule(s) it exercises (for the select test).
FIXTURE_RULES = {
    "rep001.py": ("REP001",),
    "rep002.py": ("REP002",),
    "rep003.py": ("REP003",),
    "rep004.py": ("REP004",),
    "rep005.py": ("REP005",),
    "rep1xx.py": ("REP101", "REP102"),
    "suppressed.py": ("REP002",),
    "skipped.py": (),
}


def expected_markers(path: pathlib.Path) -> list[tuple[int, str]]:
    """The (line, rule) pairs declared by ``# LINT:`` markers."""
    out: list[tuple[int, str]] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _MARKER.search(line)
        if match:
            for rule in match.group(1).split(","):
                out.append((number, rule.strip()))
    return sorted(out)


def actual_findings(path: pathlib.Path, select=None) -> list[tuple[int, str]]:
    report = lint_paths(
        [path], select=select, use_baseline=False, run_contracts=False
    )
    assert all(f.path.endswith(path.name) for f in report.findings)
    return sorted((f.line, f.rule) for f in report.findings)


@pytest.mark.parametrize("name", sorted(FIXTURE_RULES))
def test_fixture_matches_markers_exactly(name):
    """All rules together report exactly the marked (line, rule) pairs."""
    path = FIXTURES / name
    assert actual_findings(path) == expected_markers(path)


@pytest.mark.parametrize(
    "name", [n for n, rules in sorted(FIXTURE_RULES.items()) if rules]
)
def test_fixture_detected_by_its_own_rule_alone(name):
    """``--select`` with just the fixture's rule(s) finds the same lines."""
    path = FIXTURES / name
    selected = actual_findings(path, select=FIXTURE_RULES[name])
    assert selected == expected_markers(path)


def test_every_fixture_has_violations_except_skipped():
    """Planted REP001–REP005 violations all exist and are all detected."""
    covered = {
        rule
        for name in FIXTURE_RULES
        for _, rule in expected_markers(FIXTURES / name)
    }
    assert {"REP001", "REP002", "REP003", "REP004", "REP005"} <= covered


class TestRegistry:
    def test_all_contract_rules_registered(self):
        assert set(RULES) >= {
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP101",
            "REP102",
        }

    def test_rules_are_documented(self):
        for rule in RULES.values():
            assert rule.id.startswith("REP")
            assert rule.name and rule.summary
            assert len(rule.rationale) > 40, f"{rule.id} needs a real rationale"

    def test_duplicate_id_rejected(self):
        existing = next(iter(RULES.values()))
        clone = LintRule(
            id=existing.id,
            name="clone",
            summary="clone",
            rationale="clone",
            check=lambda ctx: (),
        )
        with pytest.raises(InvalidParameterError, match="already taken"):
            register_rule(clone)

    def test_unknown_select_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown lint rule"):
            resolve_rules(["REP999"])

    def test_resolve_defaults_to_all(self):
        assert [r.id for r in resolve_rules()] == list(RULES)


class TestRuleSemantics:
    """Spot checks that the good snippets are good for the right reasons."""

    def test_seeded_default_rng_not_flagged(self):
        bad = [
            line
            for line, rule in actual_findings(FIXTURES / "rep001.py")
            if rule == "REP001"
        ]
        source = (FIXTURES / "rep001.py").read_text().splitlines()
        for line in bad:
            assert "good" not in source[line - 1]

    def test_monotonic_clocks_not_flagged(self):
        source = (FIXTURES / "rep002.py").read_text()
        assert "time.monotonic()" in source and "time.perf_counter()" in source
        flagged_lines = {line for line, _ in actual_findings(FIXTURES / "rep002.py")}
        lines = source.splitlines()
        for number in flagged_lines:
            assert "monotonic" not in lines[number - 1]
            assert "perf_counter" not in lines[number - 1]

    def test_sorted_wrappers_not_flagged(self):
        source = (FIXTURES / "rep005.py").read_text().splitlines()
        for line, _ in actual_findings(FIXTURES / "rep005.py"):
            assert "sorted(" not in source[line - 1]
