"""Statistical stopping-rule tests for adaptive trial allocation (ISSUE 7).

The contract under test:

* a :class:`~repro.sim.engine.TrialBudget` stops a cell once every
  observed metric's 95% CI half-width is at or below the target — and the
  achieved half-width indeed meets the target whenever the budget stopped
  before ``max_trials`` (seeded Monte-Carlo over several streams);
* adaptive stopping does not bias means: with the same canonical seed
  stream, an adaptive run is *bit-identical* to a fixed-budget run at the
  final trial count (the stopping rule only ever evaluates prefixes at
  deterministic checkpoints);
* ``max_trials`` caps runaway cells whose variance never satisfies the
  target;
* pre-existing block-store state never changes the final trial count —
  it only changes how many trials are re-simulated;
* :meth:`Welford.merge` over any contiguous partition of N trials
  (random seeded splits, including empty and single-trial segments)
  reproduces the monolithic statistics, and the block reassembly path the
  cache actually serves results through (raw per-trial dicts refolded in
  trial order) is bit-for-bit identical to the monolithic fold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import MGAAttack
from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR
from repro.sim.cache import CellCache
from repro.sim.engine import (
    TASK_COUNTER,
    TrialBudget,
    Welford,
    aggregate_metrics,
    parallel_map,
    run_adaptive_trials,
)
from repro.sim.experiment import evaluate_recovery

D = 8
DATASET = zipf_dataset(domain_size=D, num_users=2_000, exponent=1.0, rng=3)


def _protocol() -> GRR:
    return GRR(epsilon=1.0, domain_size=D)


def _attack() -> MGAAttack:
    return MGAAttack(domain_size=D, r=2, rng=0)


def _normal_metric(seed: np.random.SeedSequence) -> dict[str, float]:
    """One synthetic unit-variance observation, a pure function of the seed."""
    rng = np.random.default_rng(seed)
    return {"x": float(rng.normal(loc=1.0, scale=1.0))}


def _identity(seed: np.random.SeedSequence) -> np.random.SeedSequence:
    return seed


def _stream(entropy: int, count: int) -> list[np.random.SeedSequence]:
    return list(np.random.SeedSequence(entropy).spawn(count))


class TestTrialBudgetContract:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_halfwidth": 0.0},
            {"target_halfwidth": -1.0},
            {"min_trials": 0},
            {"min_trials": 5, "max_trials": 4},
            {"batch": 0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(InvalidParameterError):
            TrialBudget(**kwargs)

    def test_checkpoints_are_batch_spaced_and_end_at_max(self):
        budget = TrialBudget(min_trials=2, max_trials=10, batch=3)
        assert budget.checkpoints() == [2, 5, 8, 10]

    def test_checkpoints_degenerate_cases(self):
        assert TrialBudget(min_trials=4, max_trials=4, batch=2).checkpoints() == [4]
        assert TrialBudget(min_trials=2, max_trials=5, batch=100).checkpoints() == [
            2,
            5,
        ]

    def test_met_requires_target_observations_and_known_halfwidths(self):
        strict = TrialBudget(target_halfwidth=0.5)
        assert not TrialBudget().met({"x": aggregate_metrics([{"x": 1.0}])["x"]})
        assert not strict.met({})  # nothing observed yet
        one = aggregate_metrics([{"x": 1.0}])  # count 1: half-width unknown
        assert not strict.met(one)
        tight = aggregate_metrics([{"x": 1.0}, {"x": 1.0001}, {"x": 0.9999}])
        assert strict.met(tight)
        wide = aggregate_metrics([{"x": 0.0}, {"x": 10.0}, {"x": -10.0}])
        assert not strict.met(wide)

    def test_fingerprint_carries_every_result_shaping_field(self):
        budget = TrialBudget(target_halfwidth=0.25, min_trials=3, max_trials=30, batch=4)
        assert budget.fingerprint() == {
            "target_halfwidth": 0.25,
            "min_trials": 3,
            "max_trials": 30,
            "batch": 4,
        }


class TestStoppingRule:
    @pytest.mark.parametrize("entropy", [11, 23, 47])
    @pytest.mark.parametrize("target", [0.6, 0.4, 0.25])
    def test_achieved_halfwidth_meets_target(self, entropy, target):
        # Unit-variance observations: 1.96/sqrt(n) <= target needs roughly
        # (1.96/target)^2 trials, far below max_trials=400 — so the budget
        # must stop early AND the half-width it stopped at must honor the
        # target (the stopping rule is the assertion, not an estimate).
        budget = TrialBudget(
            target_halfwidth=target, min_trials=5, max_trials=400, batch=5
        )
        outcome = run_adaptive_trials(
            budget, _normal_metric, _identity, _stream(entropy, 400)
        )
        assert budget.min_trials <= outcome.trials < budget.max_trials
        assert outcome.trials in budget.checkpoints()
        assert outcome.achieved_halfwidth is not None
        assert outcome.achieved_halfwidth <= target

    @pytest.mark.parametrize("entropy", [11, 23, 47])
    def test_stopping_is_unbiased_prefix_of_fixed_run(self, entropy):
        # Same seeds => the adaptive run IS the fixed-budget run at the
        # final count, bit for bit — no early-stopping selection effect on
        # the reported mean beyond the trial count itself.
        seeds = _stream(entropy, 400)
        budget = TrialBudget(
            target_halfwidth=0.4, min_trials=5, max_trials=400, batch=5
        )
        outcome = run_adaptive_trials(budget, _normal_metric, _identity, seeds)
        fixed = aggregate_metrics(
            parallel_map(_normal_metric, seeds[: outcome.trials], workers=1)
        )
        assert outcome.stats == fixed

    def test_max_trials_caps_runaway_cells(self):
        budget = TrialBudget(
            target_halfwidth=1e-9, min_trials=2, max_trials=7, batch=2
        )
        outcome = run_adaptive_trials(
            budget, _normal_metric, _identity, _stream(5, 7)
        )
        assert outcome.trials == 7
        assert outcome.achieved_halfwidth is not None
        assert outcome.achieved_halfwidth > 1e-9  # capped, not converged

    def test_requires_full_seed_stream(self):
        budget = TrialBudget(target_halfwidth=0.5, min_trials=2, max_trials=10)
        with pytest.raises(InvalidParameterError):
            run_adaptive_trials(budget, _normal_metric, _identity, _stream(0, 9))

    def test_store_state_cannot_change_final_trial_count(self, tmp_path):
        # Fill the whole stream on disk first (target None runs straight
        # to max_trials), then re-run with a convergence target: the final
        # count must equal the store-free run's — disk state only decides
        # what is re-simulated, never when to stop.
        cache = CellCache(tmp_path / "cache")
        spec = {"kind": "trial-stream", "suite": "stopping-rule"}
        seeds = _stream(13, 60)
        fill = TrialBudget(target_halfwidth=None, min_trials=5, max_trials=60, batch=5)
        run_adaptive_trials(
            fill, _normal_metric, _identity, seeds, store=cache.block_store(spec)
        )
        budget = TrialBudget(target_halfwidth=0.4, min_trials=5, max_trials=60, batch=5)
        bare = run_adaptive_trials(budget, _normal_metric, _identity, seeds)
        warm = run_adaptive_trials(
            budget, _normal_metric, _identity, seeds, store=cache.block_store(spec)
        )
        assert warm.trials == bare.trials
        assert warm.stats == bare.stats
        assert warm.blocks_run == 0
        assert warm.blocks_reused > 0


class TestAdaptiveEvaluateRecovery:
    def _evaluate(self, **kwargs):
        return evaluate_recovery(
            DATASET, _protocol(), _attack(), trials=3, rng=5, **kwargs
        )

    def test_converged_cell_equals_fixed_run_at_min_trials(self):
        # A huge target converges at the first checkpoint: the evaluation
        # must equal a fixed min_trials run, field for field.
        budget = TrialBudget(target_halfwidth=1e6, min_trials=3, max_trials=6, batch=3)
        adaptive = self._evaluate(budget=budget)
        fixed = self._evaluate()
        assert adaptive.trials == 3
        assert adaptive == fixed

    def test_capped_cell_equals_fixed_run_at_max_trials(self):
        budget = TrialBudget(
            target_halfwidth=1e-12, min_trials=3, max_trials=6, batch=3
        )
        adaptive = self._evaluate(budget=budget)
        fixed = evaluate_recovery(
            DATASET, _protocol(), _attack(), trials=6, rng=5
        )
        assert adaptive.trials == 6
        assert adaptive == fixed

    def test_topup_simulates_only_the_missing_trials(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        short = TrialBudget(target_halfwidth=1e-12, min_trials=2, max_trials=4, batch=2)
        TASK_COUNTER.reset()
        self._evaluate(budget=short, cache=cache)
        assert TASK_COUNTER.count == 4
        extended = TrialBudget(
            target_halfwidth=1e-12, min_trials=2, max_trials=6, batch=2
        )
        TASK_COUNTER.reset()
        topped = self._evaluate(budget=extended, cache=cache)
        assert TASK_COUNTER.count == 2  # only trials [4, 6) are new
        assert cache.stats.block_trials_reused >= 4
        fixed = evaluate_recovery(
            DATASET, _protocol(), _attack(), trials=6, rng=5
        )
        assert topped == fixed


class TestWelfordPartitionProperties:
    """Any contiguous partition of N trials reproduces the monolithic stats.

    Two layers, matching how results actually flow:

    * the cache's serving path — raw per-trial dicts concatenated across
      blocks and refolded in trial order — is asserted *bit-for-bit*
      against the monolithic fold (this is why adaptive results are
      bit-identical to fixed-budget runs);
    * :meth:`Welford.merge` (Chan et al.'s parallel update, used for
      display/verify cross-checks) reproduces mean/variance/CI to within
      floating-point reassociation tolerance, with exact counts.
    """

    N = 48

    def _values(self, entropy: int) -> list[float]:
        rng = np.random.default_rng(entropy)
        return [float(v) for v in rng.normal(loc=0.3, scale=2.0, size=self.N)]

    def _partitions(self, entropy: int) -> list[list[int]]:
        """Seeded random cut points, plus adversarial fixed shapes."""
        rng = np.random.default_rng(entropy)
        partitions = [
            [0, self.N],  # single monolithic block
            list(range(self.N + 1)),  # all single-trial blocks
            [0, 0, 1, self.N, self.N],  # empty, single, rest, empty
        ]
        for _ in range(8):
            cut_count = int(rng.integers(1, 10))
            cuts = sorted(int(c) for c in rng.integers(0, self.N + 1, size=cut_count))
            partitions.append([0, *cuts, self.N])
        return partitions

    @pytest.mark.parametrize("entropy", [1, 2, 3])
    def test_merge_reproduces_monolithic_statistics(self, entropy):
        values = self._values(entropy)
        monolithic = Welford()
        for value in values:
            monolithic.add(value)
        for bounds in self._partitions(entropy):
            merged = Welford()
            for start, stop in zip(bounds[:-1], bounds[1:]):
                segment = Welford()
                for value in values[start:stop]:
                    segment.add(value)
                merged.merge(segment)
            assert merged.count == monolithic.count
            assert merged.mean == pytest.approx(monolithic.mean, rel=1e-12)
            assert merged.variance == pytest.approx(monolithic.variance, rel=1e-12)
            assert merged.snapshot().ci95_halfwidth == pytest.approx(
                monolithic.snapshot().ci95_halfwidth, rel=1e-12
            )

    @pytest.mark.parametrize("entropy", [1, 2, 3])
    def test_block_reassembly_is_bit_identical(self, entropy, tmp_path):
        # Persist the same trials as differently-shaped block chains (one
        # store per partition) and serve them back: the refolded stats
        # must equal the monolithic fold EXACTLY — JSON round-trips of
        # shortest-repr floats are lossless and refolding preserves trial
        # order, so no tolerance is needed or allowed here.
        per_trial = [{"x": v, "y": v * v} for v in self._values(entropy)]
        monolithic = aggregate_metrics(per_trial)
        cache = CellCache(tmp_path / "cache")
        for index, bounds in enumerate(self._partitions(entropy)):
            store = cache.block_store(
                {"kind": "trial-stream", "suite": "partition", "index": index}
            )
            for start, stop in zip(bounds[:-1], bounds[1:]):
                if stop > start:
                    store.append(start, stop, per_trial[start:stop])
            chain = store.load()
            assert [b[:2] for b in chain] == [
                (s, t) for s, t in zip(bounds[:-1], bounds[1:]) if t > s
            ]
            served = [metrics for _, _, chunk in chain for metrics in chunk]
            assert aggregate_metrics(served) == monolithic

    def test_merge_with_empty_accumulator_is_exact(self):
        filled = Welford()
        for value in self._values(9):
            filled.add(value)
        reference = filled.snapshot()
        filled.merge(Welford())  # no-op
        assert filled.snapshot() == reference
        adopted = Welford()
        adopted.merge(filled)  # adopt: bitwise copy of the filled state
        assert adopted.snapshot() == reference
