"""Tests for the OLH hash family: determinism, uniformity, independence."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.protocols.hashing import (
    draw_seeds,
    hash_domain,
    hash_domains,
    hash_items,
    mix64,
    value_histograms,
)


class TestMix64:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        np.testing.assert_array_equal(mix64(x), mix64(x))

    def test_bijective_on_sample(self):
        # splitmix64's finalizer is a bijection; no collisions on a sample.
        x = np.arange(100_000, dtype=np.uint64)
        assert np.unique(mix64(x)).size == x.size

    def test_does_not_mutate_input(self):
        x = np.arange(10, dtype=np.uint64)
        original = x.copy()
        mix64(x)
        np.testing.assert_array_equal(x, original)


class TestHashItems:
    def test_range(self):
        values = hash_items(np.uint64(1), np.arange(1000), g=7)
        assert values.min() >= 0
        assert values.max() < 7

    def test_deterministic_per_seed(self):
        a = hash_items(np.uint64(99), np.arange(50), g=4)
        b = hash_items(np.uint64(99), np.arange(50), g=4)
        np.testing.assert_array_equal(a, b)

    def test_seeds_give_different_functions(self):
        a = hash_items(np.uint64(1), np.arange(200), g=4)
        b = hash_items(np.uint64(2), np.arange(200), g=4)
        assert not np.array_equal(a, b)

    def test_broadcasting_grid(self):
        seeds = np.arange(5, dtype=np.uint64)
        items = np.arange(11, dtype=np.uint64)
        grid = hash_items(seeds[:, None], items[None, :], g=3)
        assert grid.shape == (5, 11)
        # Row i must equal the scalar-seed evaluation.
        for i, seed in enumerate(seeds):
            np.testing.assert_array_equal(grid[i], hash_items(seed, items, g=3))

    def test_uniformity_chi_squared(self):
        # For one item hashed under many seeds, values are uniform over g.
        g = 5
        seeds = np.arange(200_000, dtype=np.uint64)
        values = hash_items(seeds, np.uint64(42), g=g)
        counts = np.bincount(values.astype(np.int64), minlength=g)
        _, pvalue = stats.chisquare(counts)
        assert pvalue > 1e-4

    def test_pairwise_independence_proxy(self):
        # Two distinct items under a common random seed collide with
        # probability about 1/g.
        g = 4
        seeds = np.arange(100_000, dtype=np.uint64)
        a = hash_items(seeds, np.uint64(3), g=g)
        b = hash_items(seeds, np.uint64(17), g=g)
        collision_rate = float(np.mean(a == b))
        assert abs(collision_rate - 1.0 / g) < 0.01

    def test_invalid_g(self):
        with pytest.raises(ValueError):
            hash_items(np.uint64(0), np.arange(3), g=1)


class TestHashDomain:
    def test_shape_and_range(self):
        values = hash_domain(seed=7, domain_size=123, g=3)
        assert values.shape == (123,)
        assert values.max() < 3

    def test_matches_hash_items(self):
        direct = hash_items(np.uint64(7), np.arange(123, dtype=np.uint64), g=3)
        np.testing.assert_array_equal(hash_domain(7, 123, 3), direct)


class TestHashDomains:
    """The batched cohort kernel: one (K, d) grid call."""

    def test_rows_match_hash_domain(self):
        seeds = np.array([0, 7, 2**62, 12345], dtype=np.uint64)
        grid = hash_domains(seeds, domain_size=37, g=4)
        assert grid.shape == (4, 37)
        for i, seed in enumerate(seeds):
            np.testing.assert_array_equal(grid[i], hash_domain(int(seed), 37, 4))

    def test_rejects_non_1d_seeds(self):
        with pytest.raises(ValueError):
            hash_domains(np.zeros((2, 2), dtype=np.uint64), domain_size=4, g=3)

    def test_empty_seeds(self):
        assert hash_domains(np.empty(0, dtype=np.uint64), 5, 3).shape == (0, 5)


class TestValueHistograms:
    def test_matches_manual_tally(self):
        rng = np.random.default_rng(0)
        groups = rng.integers(0, 6, size=1000)
        values = rng.integers(0, 4, size=1000)
        hist = value_histograms(groups, values, num_groups=6, g=4)
        assert hist.shape == (6, 4) and hist.dtype == np.int64
        for k in range(6):
            np.testing.assert_array_equal(
                hist[k], np.bincount(values[groups == k], minlength=4)
            )
        assert int(hist.sum()) == 1000

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert value_histograms(empty, empty, num_groups=3, g=2).sum() == 0


class TestDrawSeeds:
    def test_count_and_dtype(self):
        seeds = draw_seeds(10, np.random.default_rng(0))
        assert seeds.shape == (10,)
        assert seeds.dtype == np.uint64

    def test_deterministic(self):
        a = draw_seeds(5, np.random.default_rng(3))
        b = draw_seeds(5, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_distinct_with_high_probability(self):
        seeds = draw_seeds(1000, np.random.default_rng(1))
        assert np.unique(seeds).size == 1000
