"""Error-path behavior of the HTTP front end (:mod:`repro.serve.http`).

The happy paths live in ``test_serve.py``; this module pins the failure
modes a long-lived deployment actually hits (ISSUE 10 satellite 4):

* an oversized request body is answered with a JSON ``413`` *before* the
  connection closes — never buffered, never silently dropped;
* a syntactically broken (truncated) JSON body mid-keep-alive yields a
  ``400`` and leaves the connection usable for subsequent requests;
* snapshot-directory corruption on ``--resume``: unparseable files are
  skipped to the newest intact snapshot, while a parseable-but-invalid
  snapshot fails the CLI fast with exit code 2;
* ingests racing a ``/frequencies`` recompute over concurrent
  connections interleave without corrupting state — the final views are
  byte-equal to an uncontended service fed the same reports.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.attacks import MGAAttack
from repro.cli import main
from repro.protocols import make_protocol
from repro.serve import RecoveryHTTPServer, RecoveryService, SnapshotStore
from repro.serve.http import MAX_BODY_BYTES

EPSILON = 1.0
DOMAIN = 16
USERS = 2_000
TARGETS = [1, 2]


def _poisoned_reports(seed=0):
    protocol = make_protocol("oue", EPSILON, DOMAIN)
    items = np.random.default_rng(seed).integers(0, DOMAIN, size=USERS)
    genuine = protocol.perturb(items, np.random.default_rng(seed + 1))
    attack = MGAAttack(domain_size=DOMAIN, targets=TARGETS, rng=seed + 2)
    malicious = attack.craft(protocol, 100, np.random.default_rng(seed + 3))
    return protocol, protocol.concat_reports(genuine, malicious)


async def _read_response(reader):
    """One framed JSON response off the stream: (status, headers, doc)."""
    status_line = await reader.readline()
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers["content-length"]))
    return int(status_line.split()[1]), headers, json.loads(payload)


async def _request(reader, writer, method, path, body=None, raw_body=None):
    data = raw_body if raw_body is not None else (
        b"" if body is None else json.dumps(body).encode("utf-8")
    )
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {len(data)}\r\n\r\n"
    writer.write(head.encode("latin-1") + data)
    await writer.drain()
    return await _read_response(reader)


class TestOversizedBody:
    def test_oversized_body_gets_413_then_close(self):
        protocol, _ = _poisoned_reports()

        async def scenario():
            server = RecoveryHTTPServer(RecoveryService(protocol))
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            head = (
                "POST /ingest HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
            )
            writer.write(head.encode("latin-1"))
            await writer.drain()
            status, headers, doc = await _read_response(reader)
            assert status == 413
            assert headers["connection"] == "close"
            assert "exceeds" in doc["error"]
            # The body was never read, so the server must close the stream.
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
            await server.stop()

        asyncio.run(scenario())

    def test_body_at_the_limit_is_not_rejected_for_size(self):
        """A Content-Length of exactly MAX_BODY_BYTES passes the gate.

        Sent with a tiny *actual* body and Connection: close so nothing
        blocks: the 413 gate fires on the declared length alone, and a
        non-413 outcome proves the declared maximum was accepted.
        """
        protocol, _ = _poisoned_reports()

        async def scenario():
            server = RecoveryHTTPServer(RecoveryService(protocol))
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            head = (
                "POST /ingest HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                f"Content-Length: {MAX_BODY_BYTES}\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + b"{}")
            writer.write_eof()
            await writer.drain()
            # readexactly hits EOF mid-body; the server just drops the
            # connection (no response), which is specifically NOT a 413.
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
            await server.stop()

        asyncio.run(scenario())


class TestTruncatedJSONMidKeepAlive:
    def test_truncated_body_is_400_and_connection_survives(self):
        protocol, reports = _poisoned_reports()
        n = protocol.num_reports(reports)

        async def scenario():
            server = RecoveryHTTPServer(RecoveryService(protocol))
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            batch = {"epoch": "e", "reports": protocol.encode_reports(reports)}
            status, _, doc = await _request(reader, writer, "POST", "/ingest", batch)
            assert status == 200 and doc["total_reports"] == n

            # The same payload cut mid-document: framing is intact
            # (Content-Length matches what is sent), the JSON is not.
            whole = json.dumps(batch).encode("utf-8")
            for cut in (len(whole) // 2, len(whole) - 1, 1):
                status, _, doc = await _request(
                    reader, writer, "POST", "/ingest", raw_body=whole[:cut]
                )
                assert status == 400
                assert "malformed" in doc["error"] or "error" in doc

            # Keep-alive survived all three malformed bodies.
            status, _, doc = await _request(reader, writer, "GET", "/healthz")
            assert (status, doc) == (200, {"status": "ok"})
            status, _, doc = await _request(reader, writer, "POST", "/ingest", batch)
            assert status == 200 and doc["total_reports"] == 2 * n
            writer.close()
            await writer.wait_closed()
            await server.stop()

        asyncio.run(scenario())


class TestSnapshotDirCorruptionOnResume:
    def test_unparseable_latest_falls_back_to_newest_intact(self, tmp_path):
        protocol, reports = _poisoned_reports()
        service = RecoveryService(protocol)
        service.ingest("e", reports)
        store = SnapshotStore(tmp_path)
        store.save(json.loads(json.dumps(service.snapshot(), default=float)))
        (tmp_path / "snapshot-00000007.json").write_text("{trunc", encoding="utf-8")
        (tmp_path / "snapshot-00000009.json").write_bytes(b"\x00\xffgarbage")
        latest = SnapshotStore(tmp_path).latest()
        assert latest is not None
        resumed = RecoveryService.restore(latest, protocol)
        np.testing.assert_array_equal(
            resumed.frequencies("e", "recover").frequencies,
            service.frequencies("e", "recover").frequencies,
        )

    def test_resume_from_invalid_format_snapshot_exits_2(self, tmp_path, capsys):
        SnapshotStore(tmp_path).save({"format": -1})
        code = main([
            "serve", "--protocol", "oue", "--epsilon", str(EPSILON),
            "--domain-size", str(DOMAIN),
            "--snapshot-dir", str(tmp_path), "--resume",
        ])
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_resume_from_tampered_counts_exits_2(self, tmp_path, capsys):
        protocol, reports = _poisoned_reports()
        service = RecoveryService(protocol)
        service.ingest("e", reports)
        snap = json.loads(json.dumps(service.snapshot(), default=float))
        # Valid wrapper, corrupt payload: the counts dtype is tampered so
        # the aggregator restore must refuse it.
        snap["aggregator"]["epochs"]["e"]["support_counts"]["dtype"] = "float64"
        SnapshotStore(tmp_path).save(snap)
        code = main([
            "serve", "--protocol", "oue", "--epsilon", str(EPSILON),
            "--domain-size", str(DOMAIN),
            "--snapshot-dir", str(tmp_path), "--resume",
        ])
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err


class TestConcurrentIngestDuringRecompute:
    def test_interleaved_connections_converge_to_the_batch_state(self):
        protocol, reports = _poisoned_reports()
        n = protocol.num_reports(reports)
        service = RecoveryService(protocol)

        async def scenario():
            server = RecoveryHTTPServer(service)
            await server.start()
            conn_a = await asyncio.open_connection("127.0.0.1", server.port)
            conn_b = await asyncio.open_connection("127.0.0.1", server.port)

            async def ingest(start, stop):
                batch = protocol.slice_reports(reports, start, stop)
                return await _request(
                    conn_a[0], conn_a[1], "POST", "/ingest",
                    {"epoch": "e", "reports": protocol.encode_reports(batch)},
                )

            # Seed the epoch, then race every further ingest against a
            # recover read of the same epoch on the other connection.
            status, _, _doc = await ingest(0, 500)
            assert status == 200
            for start in range(500, n, 500):
                (in_status, _, in_doc), (rd_status, _, rd_doc) = await asyncio.gather(
                    ingest(start, min(start + 500, n)),
                    _request(
                        conn_b[0], conn_b[1], "GET",
                        "/frequencies?epoch=e&method=recover",
                    ),
                )
                assert in_status == 200 and rd_status == 200
                assert in_doc["total_reports"] >= rd_doc["num_reports"]
            for conn in (conn_a, conn_b):
                conn[1].close()
                await conn[1].wait_closed()
            await server.stop()

        asyncio.run(scenario())
        # Whatever the interleaving, the settled state is the batch state.
        straight = RecoveryService(protocol)
        straight.ingest("e", reports)
        assert service.ingested_reports == n
        for method in ("raw", "recover"):
            np.testing.assert_array_equal(
                service.frequencies("e", method).frequencies,
                straight.frequencies("e", method).frequencies,
            )

    def test_read_during_dirty_window_recomputes_once_settled(self):
        protocol, reports = _poisoned_reports()
        service = RecoveryService(protocol)
        half = protocol.num_reports(reports) // 2
        service.ingest("e", protocol.slice_reports(reports, 0, half))
        assert service.frequencies("e", "recover").recomputed is True
        warm = service.recomputes.count
        assert service.frequencies("e", "recover").recomputed is False
        assert service.recomputes.count == warm
        service.ingest(
            "e", protocol.slice_reports(reports, half, protocol.num_reports(reports))
        )
        assert service.frequencies("e", "recover").recomputed is True
