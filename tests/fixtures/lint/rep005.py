"""REP005 fixture: unordered iteration, good and bad."""

import glob
import os
import pathlib


def bad_set_iteration(items):
    out = []
    for item in {1, 2, 3}:  # LINT: REP005
        out.append(item)
    doubled = [x * 2 for x in {i for i in items}]  # LINT: REP005
    ordered = list({"b", "a"})  # LINT: REP005
    pair = tuple(set(items))  # LINT: REP005
    return out, doubled, ordered, pair


def bad_fs_enumeration(root):
    names = os.listdir(root)  # LINT: REP005
    found = glob.glob(str(root) + "/*.json")  # LINT: REP005
    entries = [p for p in pathlib.Path(root).glob("*.json")]  # LINT: REP005
    for path in pathlib.Path(root).iterdir():  # LINT: REP005
        names.append(path.name)
    return names, found, entries


def good_sorted_everything(root, items):
    for item in sorted({1, 2, 3}):
        pass
    ordered = sorted(set(items))
    files = sorted(pathlib.Path(root).glob("*.json"))
    listing = sorted(os.listdir(root))
    mapping = {"a": 1, "b": 2}
    keys = list(mapping)  # dict order is a language guarantee
    return ordered, files, listing, keys
