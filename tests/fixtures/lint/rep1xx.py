"""REP101/REP102 fixture: generic hygiene, good and bad."""


def bad_mutable_defaults(rows=[], options={}, seen=set()):  # LINT: REP101,REP101,REP101
    return rows, options, seen


def bad_bare_except(payload):
    try:
        return int(payload)
    except:  # LINT: REP102
        return None


def good_none_defaults(rows=None, options=None):
    rows = [] if rows is None else rows
    options = {} if options is None else options
    return rows, options


def good_narrow_except(payload):
    try:
        return int(payload)
    except (TypeError, ValueError):
        return None
