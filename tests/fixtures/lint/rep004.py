"""REP004 fixture: trial-task picklability, good and bad."""

from dataclasses import dataclass

from repro.sim.engine import parallel_map


@dataclass
class GoodTrialTask:
    """Module-level, data-only: pickles to workers."""

    seed: int
    beta: float


def _good_worker(task):
    return task.seed


def good_fanout(tasks, workers):
    return parallel_map(_good_worker, tasks, workers=workers)


def bad_lambda_fanout(tasks, workers):
    return parallel_map(lambda t: t.seed, tasks, workers=workers)  # LINT: REP004


def bad_closure_fanout(tasks, workers, offset):
    def closure_worker(task):  # noqa: local on purpose
        return task.seed + offset

    return parallel_map(closure_worker, tasks, workers=workers)  # LINT: REP004


def bad_nested_task_class(seed):
    @dataclass
    class NestedTrialTask:  # LINT: REP004
        seed: int

    return NestedTrialTask(seed)


@dataclass
class LambdaDefaultTask:
    """Module-level but with an unpicklable field default."""

    seed: int
    key_fn: object = lambda row: row["seed"]  # LINT: REP004
