"""Suppression fixture: inline ignores silence exactly the named rule."""

import time


def suppressed_wall_clock():
    return time.time()  # repro-lint: ignore[REP002]


def blanket_suppression():
    return time.time()  # repro-lint: ignore


def wrong_rule_suppressed():
    return time.time()  # repro-lint: ignore[REP001]  # LINT: REP002
