"""REP001 fixture: unseeded randomness, good and bad."""

import random  # LINT: REP001

import numpy as np
from numpy.random import default_rng


def bad_module_level_draws(n):
    values = np.random.normal(size=n)  # LINT: REP001
    np.random.shuffle(values)  # LINT: REP001
    np.random.seed(0)  # LINT: REP001
    gen = np.random.default_rng()  # LINT: REP001
    alias = default_rng()  # LINT: REP001
    state = np.random.RandomState(3)  # LINT: REP001
    return values, gen, alias, state, random.random()


def good_seeded_machinery(seed):
    gen = np.random.default_rng(seed)
    explicit = np.random.Generator(np.random.PCG64(seed))
    seq = np.random.SeedSequence(seed)
    aliased = default_rng(7)
    return gen.normal(size=4), explicit, seq, aliased


def good_method_on_local_generator(gen):
    # Attribute chains rooted at a local name are not module-level access.
    return gen.random(3)
