"""REP003 fixture (AST half): fingerprint-coverage declarations."""

from typing import ClassVar

from repro.protocols.base import FrequencyOracle


class GoodOracle(FrequencyOracle):
    """Excludes a real attribute: nothing to report."""

    FINGERPRINT_EXCLUDE: ClassVar[frozenset] = frozenset({"scratch"})

    def __init__(self, epsilon, domain_size):
        self.epsilon = epsilon
        self.domain_size = domain_size
        self.scratch = None


class RottedExclude(FrequencyOracle):
    """Excludes an attribute the class never assigns."""

    FINGERPRINT_EXCLUDE = frozenset({"chunk_cells"})  # LINT: REP003

    def __init__(self, epsilon):
        self.epsilon = epsilon


class DynamicExclude(FrequencyOracle):
    """Exclude set that is not a literal: statically uncheckable."""

    FINGERPRINT_EXCLUDE = set(dir(object))  # LINT: REP003

    def __init__(self, epsilon):
        self.epsilon = epsilon


class CallableAttribute(FrequencyOracle):
    """Stores a lambda the fingerprint would silently skip."""

    def __init__(self, epsilon):
        self.epsilon = epsilon
        self.transform = lambda x: x + 1  # LINT: REP003


class ExcludedCallable(FrequencyOracle):
    """A lambda is fine when the attribute is declared excluded."""

    FINGERPRINT_EXCLUDE = frozenset({"transform"})

    def __init__(self, epsilon):
        self.epsilon = epsilon
        self.transform = lambda x: x + 1
