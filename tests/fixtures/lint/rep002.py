"""REP002 fixture: wall-clock and entropy sources, good and bad."""

import datetime
import os
import secrets
import time
import uuid
from time import time as now


def bad_identity_from_the_clock():
    stamp = time.time()  # LINT: REP002
    nanos = time.time_ns()  # LINT: REP002
    aliased = now()  # LINT: REP002
    noise = os.urandom(8)  # LINT: REP002
    when = datetime.datetime.now()  # LINT: REP002
    today = datetime.date.today()  # LINT: REP002
    token = uuid.uuid4()  # LINT: REP002
    secret = secrets.token_bytes(4)  # LINT: REP002
    return stamp, nanos, aliased, noise, when, today, token, secret


def good_duration_measurement():
    start = time.monotonic()
    tick = time.perf_counter()
    return time.monotonic() - start, tick


def good_parsing_not_reading(raw):
    return datetime.datetime.fromisoformat(raw)
