"""Skip-file fixture: nothing here is ever reported."""
# repro-lint: skip-file

import random
import time


def anything_goes():
    return random.random() + time.time()
