"""REP204 fixture: float reductions over unordered sources.

Violations carry inline LINT markers; clean twins show the ``sorted``
refold.  ``list(...)`` is a pass-through — wrapping a set does not
impose an order.
"""

import numpy as np
from concurrent.futures import as_completed


def total_badly(values):
    pool = set(values)
    return sum(pool)  # LINT: REP204


def mean_badly(values):
    pool = {round(v, 3) for v in values}
    return np.mean(pool)  # LINT: REP204


def accumulate_badly(results):
    total = 0.0
    for value in set(results):
        total += value  # LINT: REP204
    return total


def drain_badly(futures):
    total = 0.0
    for fut in as_completed(futures):
        total += fut.result()  # LINT: REP204
    return total


def listed_is_still_unordered(values):
    pool = list(set(values))
    return sum(pool)  # LINT: REP204


def total_well(values):
    pool = set(values)
    return sum(sorted(pool))


def accumulate_well(results):
    total = 0.0
    for value in sorted(set(results)):
        total += value
    return total
