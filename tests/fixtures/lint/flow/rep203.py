"""REP203 fixture: attribute writes to fingerprinted classes.

The base class name matches the fingerprinted set by *written name*, so
no import of the real ``repro.sim`` class is needed.  Violations carry
inline LINT markers; clean twins cover ``__init__``, ``with_*`` copies,
``FINGERPRINT_EXCLUDE``d attributes and underscore memo caches.
"""


class FrequencyOracle:
    pass


class TunableOracle(FrequencyOracle):
    FINGERPRINT_EXCLUDE = ("hits",)

    def __init__(self, eps):
        self.eps = eps
        self.hits = 0
        self._memo = None

    def with_eps(self, eps):
        clone = TunableOracle(eps)
        clone.hits = self.hits
        return clone

    def retune(self, eps):
        self.eps = eps  # LINT: REP203
        self.hits += 1
        self._memo = None


class DeepOracle(TunableOracle):
    def twist(self):
        self.depth = 3  # LINT: REP203
        self.hits = 0


def tamper(oracle: TunableOracle):
    oracle.eps = 0.5  # LINT: REP203


def rebuild(eps):
    oracle = TunableOracle(eps)
    oracle.hits = 2
    return oracle
