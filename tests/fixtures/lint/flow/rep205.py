"""REP205 fixture: entropy sources laundered through aliases.

Scanned together with ``rep205_helpers.py``; violations carry
inline LINT markers.  A *direct* ``time.time()`` call is deliberately
not marked — that is REP002's finding, and REP205 must not double-fire.
"""

import time

from rep205_helpers import clock, fresh_token

now = time.time


def stamp_imported():
    return clock()  # LINT: REP205


def token_imported():
    return fresh_token()  # LINT: REP205


def stamp_local_alias():
    return now()  # LINT: REP205


def honest_duration(start):
    return time.monotonic() - start


def direct_call_is_rep002s():
    return time.time()
