"""Cross-module entropy aliases for the REP205 fixture.

Nothing here is a *call*, so the per-module REP002 pass sees nothing —
the aliases only become violations at the call sites in ``rep205.py``.
"""

import time
from uuid import uuid4 as fresh_token

clock = time.time

__all__ = ["clock", "fresh_token"]
