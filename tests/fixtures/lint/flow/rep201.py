"""REP201 fixture: seed provenance in trial-reachable code.

Violations carry inline LINT markers; the clean twins exercise
the sanctioned pattern (per-trial ``spawn``ed streams) plus the
reachability boundary (a constant seed in *unreachable* code is REP001's
business, not a provenance leak).
"""

from numpy.random import default_rng

from repro._rng import as_generator, spawn
from repro.sim.engine import parallel_map

_GLOBAL_RNG = default_rng(0)


def run_trial(spec):
    gen = default_rng(42)  # LINT: REP201
    return helper(spec) + gen.normal()


def helper(spec):
    seed = 1234
    gen = default_rng(seed)  # LINT: REP201
    return gen.normal() + spec


def trial_with_global(spec):
    return _GLOBAL_RNG.normal() + spec  # LINT: REP201


def fan_out(jobs, seed):
    rng = default_rng(seed)
    return parallel_map(lambda job: rng.normal() + job, jobs)  # LINT: REP201


def good_trial(spec, seed_seq):
    gen = as_generator(seed_seq)
    return gen.normal() + spec


def good_trial_spawned(spec, root_seq, index):
    streams = spawn(root_seq, 4)
    gen = as_generator(streams[index])
    return gen.normal() + spec


def fan_out_well(jobs, root_seq):
    streams = spawn(root_seq, len(jobs))
    return parallel_map(good_pair_trial, list(zip(jobs, streams)))


def good_pair_trial(pair):
    job, stream = pair
    gen = as_generator(stream)
    return gen.normal() + job


def unreached_probe():
    return default_rng(7)
