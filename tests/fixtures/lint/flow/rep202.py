"""REP202 fixture: claim/release pairing through branches and loops.

Violations carry inline LINT markers; the clean twins cover try/finally,
the guard-clause shape, spin-acquire loops, delegation wrappers, and the
exempt raise path.
"""


class ClaimQueue:
    def __init__(self):
        self._held = set()

    def acquire(self, key):
        if key in self._held:
            return False
        self._held.add(key)
        return True

    def release(self, key):
        self._held.discard(key)


def compute(key):
    return len(key)


def leaky(queue, key):
    if queue.acquire(key):  # LINT: REP202
        return compute(key)
    return None


def branch_leak(queue, key):
    if queue.acquire(key):  # LINT: REP202
        if compute(key) > 3:
            queue.release(key)
            return 1
        return 2
    return 0


def balanced(queue, key):
    if queue.acquire(key):
        try:
            return compute(key)
        finally:
            queue.release(key)
    return None


def guarded(queue, key):
    if not queue.acquire(key):
        return None
    value = compute(key)
    queue.release(key)
    return value


def spin(queue, key):
    while not queue.acquire(key):
        compute(key)
    try:
        return compute(key)
    finally:
        queue.release(key)


def delegate(queue, key):
    return queue.acquire(key)


def raise_path(queue, key):
    if queue.acquire(key):
        if compute(key) < 0:
            raise ValueError(key)
        queue.release(key)
        return True
    return False
