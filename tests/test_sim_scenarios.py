"""Tests for the scenario-exhibit subsystem (repro.sim.scenarios).

The contract under test (ISSUE 5 acceptance criteria):

* the kv and heavyhitter sweeps run through the ordinary engine —
  per-trial ``SeedSequence`` streams, ``workers=N`` bit-identical to
  ``workers=1``, Welford ±CI columns on every metric;
* every cell is one cacheable row: a warm rerun reports 100% hits and
  executes **zero** simulation tasks (:data:`TASK_COUNTER`);
* scenarios dispatch through :class:`repro.sim.shard.SweepConfig` (and
  therefore ``run`` / ``shard run|status|merge``) exactly like figures,
  with sweep digests that ignore inapplicable flags;
* the registry is extensible: one :func:`register_scenario` call makes a
  new workload a first-class exhibit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.kv import KeyValueProtocol, KVPoisoningAttack
from repro.sim.cache import CellCache, canonical_key, scenario_cell_spec
from repro.sim.engine import TASK_COUNTER
from repro.sim.scenarios import (
    HH_BETAS,
    HH_KS,
    KV_BETAS,
    KV_EPSILONS,
    SCENARIOS,
    KVPopulation,
    ScenarioExhibit,
    evaluate_kv_recovery,
    heavyhitter_rows,
    kv_population,
    kv_rows,
    register_scenario,
    scenario_names,
)
from repro.sim.shard import SweepConfig, enumerate_cells

KV_CELLS = len(KV_EPSILONS) * len(KV_BETAS)
#: Simulated/cached cells vs emitted rows: the heavy-hitter sweep runs one
#: cell per (protocol, beta) and expands it into one row per k.
HH_CELLS = 3 * len(HH_BETAS)
HH_ROWS = HH_CELLS * len(HH_KS)


class TestKVPopulation:
    def test_kv_population_is_deterministic(self):
        a = kv_population(num_keys=16, num_users=5_000)
        b = kv_population(num_keys=16, num_users=5_000)
        np.testing.assert_array_equal(a.frequencies, b.frequencies)
        np.testing.assert_array_equal(a.means, b.means)
        assert a.num_keys == 16 and a.num_users == 5_000

    def test_sample_is_two_point_with_matching_means(self):
        population = kv_population(num_keys=8, num_users=60_000)
        keys, values = population.sample(rng=3)
        assert set(np.unique(values)).issubset({-1.0, 1.0})
        # Hot keys have enough users for a loose moment check.
        for k in range(3):
            sampled = values[keys == k]
            assert abs(sampled.mean() - population.means[k]) < 4.0 / np.sqrt(sampled.size)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            KVPopulation("x", np.array([0.5, 0.5]), np.array([0.0]), 10)
        with pytest.raises(InvalidParameterError):
            KVPopulation("x", np.array([0.7, 0.5]), np.array([0.0, 0.0]), 10)
        with pytest.raises(InvalidParameterError):
            KVPopulation("x", np.array([0.5, 0.5]), np.array([0.0, 1.5]), 10)
        with pytest.raises(InvalidParameterError):
            KVPopulation("x", np.array([0.5, 0.5]), np.array([0.0, 0.0]), 0)


class TestEvaluateKVRecovery:
    def _cell(self):
        population = kv_population(num_keys=8, num_users=2_000)
        protocol = KeyValueProtocol(eps_key=1.0, eps_value=1.0, num_keys=8)
        attack = KVPoisoningAttack(num_keys=8, targets=[6, 7])
        return population, protocol, attack

    def test_metrics_present_with_stats(self):
        stats = evaluate_kv_recovery(*self._cell(), beta=0.1, trials=3, rng=5)
        for metric in ("freq_mse_before", "mean_mae_recover_star", "fg_recover"):
            assert stats[metric].count == 3
            assert stats[metric].stderr is not None

    def test_workers_bit_identical(self):
        serial = evaluate_kv_recovery(*self._cell(), beta=0.1, trials=3, rng=5, workers=1)
        pooled = evaluate_kv_recovery(*self._cell(), beta=0.1, trials=3, rng=5, workers=2)
        assert serial == pooled

    def test_trials_validated(self):
        with pytest.raises(InvalidParameterError):
            evaluate_kv_recovery(*self._cell(), trials=0)


class TestKVRows:
    def test_grid_shape_and_columns(self):
        rows = kv_rows(num_users=2_000, trials=2, rng=11)
        assert len(rows) == KV_CELLS
        assert [r["beta"] for r in rows[: len(KV_BETAS)]] == list(KV_BETAS)
        for column in ("freq_mse_recover_star", "mean_mae_before", "fg_recover_star"):
            assert column in rows[0] and f"{column}±" in rows[0]

    def test_deterministic_under_seed(self):
        assert kv_rows(num_users=2_000, trials=2, rng=11) == kv_rows(
            num_users=2_000, trials=2, rng=11
        )

    def test_trials_validated(self):
        with pytest.raises(InvalidParameterError):
            kv_rows(num_users=2_000, trials=0)
        with pytest.raises(InvalidParameterError):
            heavyhitter_rows(num_users=2_000, trials=0)

    def test_warm_cache_serves_all_cells_with_zero_tasks(self, tmp_path):
        cold = CellCache(tmp_path)
        first = kv_rows(num_users=2_000, trials=2, rng=11, cache=cold)
        assert cold.stats.misses == KV_CELLS and cold.stats.stores == KV_CELLS
        warm = CellCache(tmp_path)
        TASK_COUNTER.reset()
        second = kv_rows(num_users=2_000, trials=2, rng=11, cache=warm)
        assert TASK_COUNTER.count == 0, "warm cells must execute zero trials"
        assert warm.stats.hits == KV_CELLS and warm.stats.misses == 0
        assert second == first


class TestHeavyHitterRows:
    def test_grid_shape_and_columns(self):
        rows = heavyhitter_rows(num_users=5_000, trials=1, rng=12)
        assert len(rows) == HH_ROWS
        cells = {r["cell"] for r in rows}
        assert cells == {"mga-grr", "mga-oue", "mga-olh"}
        for row in rows:
            assert row["k"] in HH_KS and row["beta"] in HH_BETAS
            for column in (
                "precision_poisoned",
                "precision_recovered_star",
                "promoted_poisoned",
                "promoted_recovered_star",
            ):
                assert column in row and f"{column}±" in row
            assert 0.0 <= row["precision_poisoned"] <= 1.0
            assert 0.0 <= row["promoted_poisoned"] <= row["k"]

    def test_attack_actually_promotes_tail_items(self):
        rows = heavyhitter_rows(num_users=5_000, trials=1, rng=12)
        promoted = np.array([r["promoted_poisoned"] for r in rows])
        assert promoted.mean() > 1.0, "MGA should plant items into the top-k"

    def test_chunked_mode_runs(self):
        rows = heavyhitter_rows(num_users=3_000, trials=1, rng=12, chunk_users=1_000)
        assert len(rows) == HH_ROWS

    def test_one_simulated_cell_per_protocol_beta(self):
        """k only selects metrics off already-recovered vectors, so the
        sweep must simulate one trial set per (protocol, beta) — not per k."""
        TASK_COUNTER.reset()
        heavyhitter_rows(num_users=3_000, trials=2, rng=12)
        assert TASK_COUNTER.count == HH_CELLS * 2

    def test_warm_cache_serves_all_cells_with_zero_tasks(self, tmp_path):
        cold = CellCache(tmp_path)
        first = heavyhitter_rows(num_users=4_000, trials=1, rng=12, cache=cold)
        assert cold.stats.stores == HH_CELLS
        warm = CellCache(tmp_path)
        TASK_COUNTER.reset()
        second = heavyhitter_rows(num_users=4_000, trials=1, rng=12, cache=warm)
        assert TASK_COUNTER.count == 0
        assert warm.stats.hits == HH_CELLS
        assert second == first


class TestScenarioCellSpec:
    def test_kv_spec_sensitive_to_cell_identity(self):
        population = kv_population(num_keys=8, num_users=1_000)
        protocol = KeyValueProtocol(eps_key=1.0, eps_value=1.0, num_keys=8)
        attack = KVPoisoningAttack(num_keys=8, targets=[6, 7])
        seeds = np.random.SeedSequence(0).spawn(2)
        base = scenario_cell_spec(
            "kv", population, protocol, (attack,), {"beta": 0.1}, seeds
        )
        assert base["kind"] == "row" and base["exhibit"] == "scenario-kv"
        other_beta = scenario_cell_spec(
            "kv", population, protocol, (attack,), {"beta": 0.2}, seeds
        )
        assert canonical_key(base) != canonical_key(other_beta)
        other_pop = scenario_cell_spec(
            "kv",
            kv_population(num_keys=8, num_users=2_000),
            protocol,
            (attack,),
            {"beta": 0.1},
            seeds,
        )
        assert canonical_key(base) != canonical_key(other_pop)
        other_seeds = scenario_cell_spec(
            "kv", population, protocol, (attack,), {"beta": 0.1},
            np.random.SeedSequence(1).spawn(2),
        )
        assert canonical_key(base) != canonical_key(other_seeds)

    def test_spec_is_reproducible(self):
        population = kv_population(num_keys=8, num_users=1_000)
        protocol = KeyValueProtocol(eps_key=1.0, eps_value=1.0, num_keys=8)
        attack = KVPoisoningAttack(num_keys=8, targets=[6, 7])
        seeds = np.random.SeedSequence(0).spawn(2)
        a = scenario_cell_spec("kv", population, protocol, (attack,), {"beta": 0.1}, seeds)
        b = scenario_cell_spec("kv", population, protocol, (attack,), {"beta": 0.1}, seeds)
        assert canonical_key(a) == canonical_key(b)


class TestSweepConfigDispatch:
    def test_scenarios_are_valid_exhibits(self):
        assert set(scenario_names()) <= set(SweepConfig.exhibit_names())
        SweepConfig(figure="kv")
        SweepConfig(figure="heavyhitter")

    def test_run_matches_direct_generator_call(self):
        config = SweepConfig(figure="kv", num_users=2_000, trials=2, seed=11)
        assert config.run(None) == kv_rows(num_users=2_000, trials=2, rng=11)

    def test_enumeration_lists_cells_without_simulating(self):
        TASK_COUNTER.reset()
        cells = enumerate_cells(SweepConfig(figure="kv", num_users=2_000, trials=2))
        assert len(cells) == KV_CELLS
        assert TASK_COUNTER.count == 0
        assert all(cell.kind == "row" for cell in cells)

    def test_digest_ignores_inapplicable_flags(self):
        base = SweepConfig(figure="kv", trials=2)
        assert base.digest() == SweepConfig(
            figure="kv", trials=2, dataset="fire", parameter="eta",
            chunk_users=500, olh_cohort=8, workers=3,
        ).digest()
        assert base.digest() != SweepConfig(figure="kv", trials=3).digest()
        hh = SweepConfig(figure="heavyhitter", trials=2)
        assert hh.digest() == SweepConfig(figure="heavyhitter", trials=2, dataset="fire").digest()
        # ...but the knobs heavyhitter consumes stay in its digest.
        assert hh.digest() != SweepConfig(figure="heavyhitter", trials=2, chunk_users=500).digest()
        assert hh.digest() != SweepConfig(figure="heavyhitter", trials=2, olh_cohort=8).digest()


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert scenario_names() == ("kv", "heavyhitter")
        for exhibit in SCENARIOS.values():
            assert exhibit.description

    def test_register_rejects_name_collisions(self):
        taken = ScenarioExhibit(name="kv", description="dup", rows=kv_rows)
        with pytest.raises(InvalidParameterError):
            register_scenario(taken)
        figure = ScenarioExhibit(name="fig3", description="dup", rows=kv_rows)
        with pytest.raises(InvalidParameterError):
            register_scenario(figure)

    def test_registered_scenario_dispatches_like_a_figure(self):
        calls: dict[str, object] = {}

        def toy_rows(num_users=None, trials=5, rng=0, workers=1, cache=None):
            calls["args"] = (num_users, trials, rng, workers)
            return [{"cell": "toy", "value": 1.0}]

        register_scenario(ScenarioExhibit(name="toy", description="toy", rows=toy_rows))
        try:
            config = SweepConfig(figure="toy", num_users=123, trials=2, seed=7)
            assert config.run(None) == [{"cell": "toy", "value": 1.0}]
            assert calls["args"] == (123, 2, 7, 1)
            assert "toy" in SweepConfig.exhibit_names()
            # The CLI sees a scenario registered *after* it was imported:
            # parser choices and `list` are computed from the live registry.
            from repro.cli import build_parser, main

            assert build_parser().parse_args(["run", "--exhibit", "toy"]).figure == "toy"
            import io
            from contextlib import redirect_stdout

            out = io.StringIO()
            with redirect_stdout(out):
                assert main(["list"]) == 0
            assert "toy" in out.getvalue()
            # Inapplicable engine knobs never enter the sweep digest.
            assert config.digest() == SweepConfig(
                figure="toy", num_users=123, trials=2, seed=7, chunk_users=64,
            ).digest()
        finally:
            del SCENARIOS["toy"]
        with pytest.raises(InvalidParameterError):
            SweepConfig(figure="toy")
