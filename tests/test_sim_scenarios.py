"""Tests for the scenario-exhibit subsystem (repro.sim.scenarios).

The contract under test (ISSUE 5 acceptance criteria):

* the kv and heavyhitter sweeps run through the ordinary engine —
  per-trial ``SeedSequence`` streams, ``workers=N`` bit-identical to
  ``workers=1``, Welford ±CI columns on every metric;
* every cell is one cacheable row: a warm rerun reports 100% hits and
  executes **zero** simulation tasks (:data:`TASK_COUNTER`);
* scenarios dispatch through :class:`repro.sim.shard.SweepConfig` (and
  therefore ``run`` / ``shard run|status|merge``) exactly like figures,
  with sweep digests that ignore inapplicable flags;
* the registry is extensible: one :func:`register_scenario` call makes a
  new workload a first-class exhibit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.kv import KeyValueProtocol, KVPoisoningAttack
from repro.sim.cache import CellCache, canonical_key, scenario_cell_spec
from repro.sim.engine import TASK_COUNTER
from repro.sim.scenarios import (
    DEFENSE_ATTACKS,
    DEFENSE_BETAS,
    DEFENSE_EPSILONS,
    DEFENSE_METHODS,
    EPOCH_COUNT,
    EPOCH_SCHEDULES,
    HH_BETAS,
    HH_KS,
    KV_BETAS,
    KV_EPSILONS,
    SCENARIOS,
    KVPopulation,
    ScenarioExhibit,
    defenses_rows,
    detection_f1,
    epochs_rows,
    evaluate_kv_recovery,
    heavyhitter_rows,
    kv_population,
    kv_rows,
    register_scenario,
    scenario_names,
)
from repro.sim.shard import SweepConfig, enumerate_cells, merge_sweep, run_shard

KV_CELLS = len(KV_EPSILONS) * len(KV_BETAS)
#: Simulated/cached cells vs emitted rows: the heavy-hitter sweep runs one
#: cell per (protocol, beta) and expands it into one row per k.
HH_CELLS = 3 * len(HH_BETAS)
HH_ROWS = HH_CELLS * len(HH_KS)
#: The epochs sweep: one cell per (protocol, schedule) plus one fan-in
#: (multi-collector) cell per protocol, each expanding to one row per epoch.
EPOCH_CELLS = 3 * len(EPOCH_SCHEDULES) + 3
EPOCH_ROWS = EPOCH_CELLS * EPOCH_COUNT
DEFENSE_CELLS = len(DEFENSE_ATTACKS) * len(DEFENSE_EPSILONS) * len(DEFENSE_BETAS)


class TestKVPopulation:
    def test_kv_population_is_deterministic(self):
        a = kv_population(num_keys=16, num_users=5_000)
        b = kv_population(num_keys=16, num_users=5_000)
        np.testing.assert_array_equal(a.frequencies, b.frequencies)
        np.testing.assert_array_equal(a.means, b.means)
        assert a.num_keys == 16 and a.num_users == 5_000

    def test_sample_is_two_point_with_matching_means(self):
        population = kv_population(num_keys=8, num_users=60_000)
        keys, values = population.sample(rng=3)
        assert set(np.unique(values)).issubset({-1.0, 1.0})
        # Hot keys have enough users for a loose moment check.
        for k in range(3):
            sampled = values[keys == k]
            assert abs(sampled.mean() - population.means[k]) < 4.0 / np.sqrt(sampled.size)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            KVPopulation("x", np.array([0.5, 0.5]), np.array([0.0]), 10)
        with pytest.raises(InvalidParameterError):
            KVPopulation("x", np.array([0.7, 0.5]), np.array([0.0, 0.0]), 10)
        with pytest.raises(InvalidParameterError):
            KVPopulation("x", np.array([0.5, 0.5]), np.array([0.0, 1.5]), 10)
        with pytest.raises(InvalidParameterError):
            KVPopulation("x", np.array([0.5, 0.5]), np.array([0.0, 0.0]), 0)


class TestEvaluateKVRecovery:
    def _cell(self):
        population = kv_population(num_keys=8, num_users=2_000)
        protocol = KeyValueProtocol(eps_key=1.0, eps_value=1.0, num_keys=8)
        attack = KVPoisoningAttack(num_keys=8, targets=[6, 7])
        return population, protocol, attack

    def test_metrics_present_with_stats(self):
        stats = evaluate_kv_recovery(*self._cell(), beta=0.1, trials=3, rng=5)
        for metric in ("freq_mse_before", "mean_mae_recover_star", "fg_recover"):
            assert stats[metric].count == 3
            assert stats[metric].stderr is not None

    def test_workers_bit_identical(self):
        serial = evaluate_kv_recovery(*self._cell(), beta=0.1, trials=3, rng=5, workers=1)
        pooled = evaluate_kv_recovery(*self._cell(), beta=0.1, trials=3, rng=5, workers=2)
        assert serial == pooled

    def test_trials_validated(self):
        with pytest.raises(InvalidParameterError):
            evaluate_kv_recovery(*self._cell(), trials=0)


class TestKVRows:
    def test_grid_shape_and_columns(self):
        rows = kv_rows(num_users=2_000, trials=2, rng=11)
        assert len(rows) == KV_CELLS
        assert [r["beta"] for r in rows[: len(KV_BETAS)]] == list(KV_BETAS)
        for column in ("freq_mse_recover_star", "mean_mae_before", "fg_recover_star"):
            assert column in rows[0] and f"{column}±" in rows[0]

    def test_deterministic_under_seed(self):
        assert kv_rows(num_users=2_000, trials=2, rng=11) == kv_rows(
            num_users=2_000, trials=2, rng=11
        )

    def test_trials_validated(self):
        with pytest.raises(InvalidParameterError):
            kv_rows(num_users=2_000, trials=0)
        with pytest.raises(InvalidParameterError):
            heavyhitter_rows(num_users=2_000, trials=0)

    def test_warm_cache_serves_all_cells_with_zero_tasks(self, tmp_path):
        cold = CellCache(tmp_path)
        first = kv_rows(num_users=2_000, trials=2, rng=11, cache=cold)
        assert cold.stats.misses == KV_CELLS and cold.stats.stores == KV_CELLS
        warm = CellCache(tmp_path)
        TASK_COUNTER.reset()
        second = kv_rows(num_users=2_000, trials=2, rng=11, cache=warm)
        assert TASK_COUNTER.count == 0, "warm cells must execute zero trials"
        assert warm.stats.hits == KV_CELLS and warm.stats.misses == 0
        assert second == first


class TestHeavyHitterRows:
    def test_grid_shape_and_columns(self):
        rows = heavyhitter_rows(num_users=5_000, trials=1, rng=12)
        assert len(rows) == HH_ROWS
        cells = {r["cell"] for r in rows}
        assert cells == {"mga-grr", "mga-oue", "mga-olh"}
        for row in rows:
            assert row["k"] in HH_KS and row["beta"] in HH_BETAS
            for column in (
                "precision_poisoned",
                "precision_recovered_star",
                "promoted_poisoned",
                "promoted_recovered_star",
            ):
                assert column in row and f"{column}±" in row
            assert 0.0 <= row["precision_poisoned"] <= 1.0
            assert 0.0 <= row["promoted_poisoned"] <= row["k"]

    def test_attack_actually_promotes_tail_items(self):
        rows = heavyhitter_rows(num_users=5_000, trials=1, rng=12)
        promoted = np.array([r["promoted_poisoned"] for r in rows])
        assert promoted.mean() > 1.0, "MGA should plant items into the top-k"

    def test_chunked_mode_runs(self):
        rows = heavyhitter_rows(num_users=3_000, trials=1, rng=12, chunk_users=1_000)
        assert len(rows) == HH_ROWS

    def test_one_simulated_cell_per_protocol_beta(self):
        """k only selects metrics off already-recovered vectors, so the
        sweep must simulate one trial set per (protocol, beta) — not per k."""
        TASK_COUNTER.reset()
        heavyhitter_rows(num_users=3_000, trials=2, rng=12)
        assert TASK_COUNTER.count == HH_CELLS * 2

    def test_warm_cache_serves_all_cells_with_zero_tasks(self, tmp_path):
        cold = CellCache(tmp_path)
        first = heavyhitter_rows(num_users=4_000, trials=1, rng=12, cache=cold)
        assert cold.stats.stores == HH_CELLS
        warm = CellCache(tmp_path)
        TASK_COUNTER.reset()
        second = heavyhitter_rows(num_users=4_000, trials=1, rng=12, cache=warm)
        assert TASK_COUNTER.count == 0
        assert warm.stats.hits == HH_CELLS
        assert second == first


class TestEpochsRows:
    USERS = 1_500

    def _rows(self, **kwargs):
        return epochs_rows(num_users=self.USERS, trials=1, rng=13, **kwargs)

    def test_grid_shape_columns_and_schedule_betas(self):
        rows = self._rows()
        assert len(rows) == EPOCH_ROWS
        assert {r["cell"] for r in rows} == {
            f"{schedule.kind}-{name}-c1"
            for name in ("grr", "oue", "olh")
            for schedule in EPOCH_SCHEDULES
        } | {f"burst-{name}-c3" for name in ("grr", "oue", "olh")}
        # Uniform columns on every row (the CSV/JSON exporters refuse
        # ragged tables): warm-up epochs carry null detection scores.
        columns = list(rows[0].keys())
        for row in rows:
            assert list(row.keys()) == columns
            assert 0 <= row["epoch"] < EPOCH_COUNT
            for column in ("mse_before", "mse_recover", "mse_star", "fg_before"):
                assert column in row and f"{column}±" in row
            if row["epoch"] >= 2:
                assert 0.0 <= row["detection_f1"] <= 1.0
            else:
                assert row["detection_f1"] is None
                assert row["detection_f1±"] is None
        # The burst rows carry the schedule's exact per-epoch fractions.
        burst = [r for r in rows if r["cell"] == "burst-oue-c1"]
        assert [r["beta"] for r in burst] == list(EPOCH_SCHEDULES[1].betas(EPOCH_COUNT))

    def test_workers_and_chunking_are_bit_identical(self):
        serial = self._rows()
        assert self._rows(workers=2) == serial
        assert self._rows(chunk_users=500) == serial

    def test_fan_in_trials_match_direct_ingestion_bit_for_bit(self):
        """collectors=3 round-robin fan-in is byte-equal to direct
        single-collector ingestion under the same trial seed: the merge
        arithmetic cannot change any metric.  (The sweep's c1 and c3
        *cells* draw independent seeds, so the invariant is pinned at the
        trial level, where the seed can be held fixed.)"""
        from repro.attacks import MGAAttack, ScheduledAttack
        from repro.core.heavyhitters import tail_items
        from repro.core.recover import DEFAULT_ETA
        from repro.sim.figures import _cell_protocol, load_dataset
        from repro.sim.history import AttackSchedule
        from repro.sim.scenarios import _EpochTask, _epoch_trial

        dataset = load_dataset("ipums", self.USERS)
        targets = tail_items(dataset.frequencies, 5)
        for name in ("grr", "oue", "olh"):
            protocol = _cell_protocol(name, 0.5, dataset.domain_size)
            scheduled = ScheduledAttack(
                MGAAttack(domain_size=dataset.domain_size, targets=targets),
                AttackSchedule.burst(0.15, at=3),
                EPOCH_COUNT,
            )

            def trial(collectors, chunk_users=None):
                # A fresh SeedSequence per call: spawning advances the
                # parent's spawn counter, so sharing one object would
                # silently shift the later call's streams.
                return _epoch_trial(_EpochTask(
                    dataset=dataset,
                    protocol=protocol,
                    scheduled=scheduled,
                    drift=0.05,
                    eta=DEFAULT_ETA,
                    collectors=collectors,
                    chunk_users=chunk_users,
                    seed=np.random.SeedSequence(42),
                ))

            direct = trial(collectors=1)
            assert trial(collectors=3) == direct, f"{name}: fan-in != direct"
            assert trial(collectors=1, chunk_users=300) == direct

    def test_warm_cache_serves_all_cells_with_zero_tasks(self, tmp_path):
        cold = CellCache(tmp_path)
        first = self._rows(cache=cold)
        assert cold.stats.misses == EPOCH_CELLS and cold.stats.stores == EPOCH_CELLS
        warm = CellCache(tmp_path)
        TASK_COUNTER.reset()
        second = self._rows(cache=warm)
        assert TASK_COUNTER.count == 0, "warm cells must execute zero trials"
        assert warm.stats.hits == EPOCH_CELLS and warm.stats.misses == 0
        assert second == first

    def test_two_shard_merge_is_bit_identical_to_direct(self, tmp_path):
        config = SweepConfig(figure="epochs", num_users=self.USERS, trials=1, seed=13)
        cache = CellCache(tmp_path)
        for index in range(2):
            run_shard(config, cache, shard_index=index, shard_count=2)
        assert merge_sweep(config, cache) == self._rows()

    def test_trials_validated(self):
        with pytest.raises(InvalidParameterError):
            epochs_rows(num_users=self.USERS, trials=0)


class TestDefensesRows:
    USERS = 2_000

    def _rows(self, **kwargs):
        return defenses_rows(num_users=self.USERS, trials=2, rng=14, **kwargs)

    def test_grid_shape_winner_and_ci_columns(self):
        rows = self._rows()
        assert len(rows) == DEFENSE_CELLS
        regimes = {(r["attack"], r["epsilon"], r["beta"]) for r in rows}
        assert len(regimes) == DEFENSE_CELLS
        for row in rows:
            assert row["attack"] in DEFENSE_ATTACKS
            assert row["epsilon"] in DEFENSE_EPSILONS
            assert row["beta"] in DEFENSE_BETAS
            assert row["winner"] in DEFENSE_METHODS
            for method in ("before",) + DEFENSE_METHODS:
                assert f"mse_{method}" in row and f"mse_{method}±" in row
                assert f"fg_{method}" in row and f"fg_{method}±" in row
            # The winner column is derived from the same row it sits in.
            best = min(DEFENSE_METHODS, key=lambda m: row[f"mse_{m}"])
            assert row["winner"] == best

    def test_every_defense_beats_doing_nothing_somewhere(self):
        rows = self._rows()
        improved = [
            method
            for method in DEFENSE_METHODS
            for row in rows
            if row[f"mse_{method}"] < row["mse_before"]
        ]
        assert set(improved), "at least one defense must improve some regime"

    def test_workers_are_bit_identical(self):
        assert self._rows(workers=2) == self._rows()

    def test_warm_cache_serves_all_cells_with_zero_tasks(self, tmp_path):
        cold = CellCache(tmp_path)
        first = self._rows(cache=cold)
        assert cold.stats.stores == DEFENSE_CELLS
        warm = CellCache(tmp_path)
        TASK_COUNTER.reset()
        second = self._rows(cache=warm)
        assert TASK_COUNTER.count == 0
        assert warm.stats.hits == DEFENSE_CELLS
        assert second == first

    def test_two_shard_merge_is_bit_identical_to_direct(self, tmp_path):
        config = SweepConfig(figure="defenses", num_users=self.USERS, trials=2, seed=14)
        cache = CellCache(tmp_path)
        for index in range(2):
            run_shard(config, cache, shard_index=index, shard_count=2)
        assert merge_sweep(config, cache) == self._rows()

    def test_trials_validated(self):
        with pytest.raises(InvalidParameterError):
            defenses_rows(num_users=self.USERS, trials=0)


class TestDetectionF1:
    def test_clean_epoch_scoring(self):
        assert detection_f1([], []) == 1.0
        assert detection_f1([3], []) == 0.0

    def test_poisoned_epoch_scoring(self):
        assert detection_f1([1, 2], [1, 2]) == 1.0
        assert detection_f1([], [1, 2]) == 0.0
        assert detection_f1([9], [1, 2]) == 0.0
        # precision 1/2, recall 1/2 -> F1 1/2
        assert detection_f1([1, 9], [1, 2]) == pytest.approx(0.5)

    def test_duplicates_and_types_normalized(self):
        assert detection_f1(np.array([2, 1, 1]), (1, 2)) == 1.0


class TestScenarioCellSpec:
    def test_kv_spec_sensitive_to_cell_identity(self):
        population = kv_population(num_keys=8, num_users=1_000)
        protocol = KeyValueProtocol(eps_key=1.0, eps_value=1.0, num_keys=8)
        attack = KVPoisoningAttack(num_keys=8, targets=[6, 7])
        seeds = np.random.SeedSequence(0).spawn(2)
        base = scenario_cell_spec(
            "kv", population, protocol, (attack,), {"beta": 0.1}, seeds
        )
        assert base["kind"] == "row" and base["exhibit"] == "scenario-kv"
        other_beta = scenario_cell_spec(
            "kv", population, protocol, (attack,), {"beta": 0.2}, seeds
        )
        assert canonical_key(base) != canonical_key(other_beta)
        other_pop = scenario_cell_spec(
            "kv",
            kv_population(num_keys=8, num_users=2_000),
            protocol,
            (attack,),
            {"beta": 0.1},
            seeds,
        )
        assert canonical_key(base) != canonical_key(other_pop)
        other_seeds = scenario_cell_spec(
            "kv", population, protocol, (attack,), {"beta": 0.1},
            np.random.SeedSequence(1).spawn(2),
        )
        assert canonical_key(base) != canonical_key(other_seeds)

    def test_spec_is_reproducible(self):
        population = kv_population(num_keys=8, num_users=1_000)
        protocol = KeyValueProtocol(eps_key=1.0, eps_value=1.0, num_keys=8)
        attack = KVPoisoningAttack(num_keys=8, targets=[6, 7])
        seeds = np.random.SeedSequence(0).spawn(2)
        a = scenario_cell_spec("kv", population, protocol, (attack,), {"beta": 0.1}, seeds)
        b = scenario_cell_spec("kv", population, protocol, (attack,), {"beta": 0.1}, seeds)
        assert canonical_key(a) == canonical_key(b)


class TestSweepConfigDispatch:
    def test_scenarios_are_valid_exhibits(self):
        assert set(scenario_names()) <= set(SweepConfig.exhibit_names())
        SweepConfig(figure="kv")
        SweepConfig(figure="heavyhitter")

    def test_run_matches_direct_generator_call(self):
        config = SweepConfig(figure="kv", num_users=2_000, trials=2, seed=11)
        assert config.run(None) == kv_rows(num_users=2_000, trials=2, rng=11)

    def test_enumeration_lists_cells_without_simulating(self):
        TASK_COUNTER.reset()
        cells = enumerate_cells(SweepConfig(figure="kv", num_users=2_000, trials=2))
        assert len(cells) == KV_CELLS
        assert TASK_COUNTER.count == 0
        assert all(cell.kind == "row" for cell in cells)

    def test_digest_ignores_inapplicable_flags(self):
        base = SweepConfig(figure="kv", trials=2)
        assert base.digest() == SweepConfig(
            figure="kv", trials=2, dataset="fire", parameter="eta",
            chunk_users=500, olh_cohort=8, workers=3,
        ).digest()
        assert base.digest() != SweepConfig(figure="kv", trials=3).digest()
        hh = SweepConfig(figure="heavyhitter", trials=2)
        assert hh.digest() == SweepConfig(figure="heavyhitter", trials=2, dataset="fire").digest()
        # ...but the knobs heavyhitter consumes stay in its digest.
        assert hh.digest() != SweepConfig(figure="heavyhitter", trials=2, chunk_users=500).digest()
        assert hh.digest() != SweepConfig(figure="heavyhitter", trials=2, olh_cohort=8).digest()


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert scenario_names() == ("kv", "heavyhitter", "epochs", "defenses")
        for exhibit in SCENARIOS.values():
            assert exhibit.description

    def test_register_rejects_name_collisions(self):
        taken = ScenarioExhibit(name="kv", description="dup", rows=kv_rows)
        with pytest.raises(InvalidParameterError):
            register_scenario(taken)
        figure = ScenarioExhibit(name="fig3", description="dup", rows=kv_rows)
        with pytest.raises(InvalidParameterError):
            register_scenario(figure)

    def test_registered_scenario_dispatches_like_a_figure(self):
        calls: dict[str, object] = {}

        def toy_rows(num_users=None, trials=5, rng=0, workers=1, cache=None):
            calls["args"] = (num_users, trials, rng, workers)
            return [{"cell": "toy", "value": 1.0}]

        register_scenario(ScenarioExhibit(name="toy", description="toy", rows=toy_rows))
        try:
            config = SweepConfig(figure="toy", num_users=123, trials=2, seed=7)
            assert config.run(None) == [{"cell": "toy", "value": 1.0}]
            assert calls["args"] == (123, 2, 7, 1)
            assert "toy" in SweepConfig.exhibit_names()
            # The CLI sees a scenario registered *after* it was imported:
            # parser choices and `list` are computed from the live registry.
            from repro.cli import build_parser, main

            assert build_parser().parse_args(["run", "--exhibit", "toy"]).figure == "toy"
            import io
            from contextlib import redirect_stdout

            out = io.StringIO()
            with redirect_stdout(out):
                assert main(["list"]) == 0
            assert "toy" in out.getvalue()
            # Inapplicable engine knobs never enter the sweep digest.
            assert config.digest() == SweepConfig(
                figure="toy", num_users=123, trials=2, seed=7, chunk_users=64,
            ).digest()
        finally:
            del SCENARIOS["toy"]
        with pytest.raises(InvalidParameterError):
            SweepConfig(figure="toy")
