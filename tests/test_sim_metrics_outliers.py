"""Tests for the evaluation metrics and outlier-based target inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sim.metrics import frequency_gain, l1_distance, max_abs_error, mse
from repro.sim.outliers import ZScoreOutlierDetector, top_increase_items


class TestMSE:
    def test_zero_for_identical(self):
        vec = np.array([0.2, 0.8])
        assert mse(vec, vec) == 0.0

    def test_eq36_value(self):
        truth = np.array([0.5, 0.5])
        est = np.array([0.6, 0.4])
        assert mse(truth, est) == pytest.approx(0.01)

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            mse(np.zeros(3), np.zeros(4))

    def test_symmetry(self):
        a, b = np.array([0.1, 0.9]), np.array([0.3, 0.7])
        assert mse(a, b) == mse(b, a)


class TestOtherDistances:
    def test_l1(self):
        assert l1_distance(np.array([0.0, 1.0]), np.array([1.0, 0.0])) == pytest.approx(2.0)

    def test_max_abs(self):
        assert max_abs_error(np.array([0.0, 0.5]), np.array([0.3, 0.5])) == pytest.approx(0.3)


class TestFrequencyGain:
    def test_positive_when_promoted(self):
        genuine = np.array([0.1, 0.2, 0.7])
        after = np.array([0.3, 0.2, 0.5])
        assert frequency_gain(genuine, after, [0]) == pytest.approx(0.2)

    def test_sums_over_targets(self):
        genuine = np.zeros(4)
        after = np.array([0.1, 0.2, 0.0, 0.0])
        assert frequency_gain(genuine, after, [0, 1]) == pytest.approx(0.3)

    def test_negative_when_suppressed(self):
        genuine = np.array([0.5, 0.5])
        after = np.array([0.3, 0.7])
        assert frequency_gain(genuine, after, [0]) < 0

    def test_duplicate_targets_counted_once(self):
        genuine = np.zeros(3)
        after = np.array([0.1, 0.0, 0.0])
        assert frequency_gain(genuine, after, [0, 0]) == pytest.approx(0.1)

    def test_empty_targets_rejected(self):
        with pytest.raises(InvalidParameterError):
            frequency_gain(np.zeros(3), np.zeros(3), [])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            frequency_gain(np.zeros(3), np.zeros(3), [5])


class TestTopIncreaseItems:
    def test_picks_largest_increases(self):
        ref = np.array([0.25, 0.25, 0.25, 0.25])
        cur = np.array([0.10, 0.40, 0.30, 0.20])
        np.testing.assert_array_equal(top_increase_items(ref, cur, 2), [1, 2])

    def test_sorted_output(self):
        ref = np.zeros(5)
        cur = np.array([0.0, 0.5, 0.0, 0.9, 0.1])
        result = top_increase_items(ref, cur, 3)
        assert np.all(np.diff(result) > 0)

    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            top_increase_items(np.zeros(3), np.zeros(3), 0)
        with pytest.raises(InvalidParameterError):
            top_increase_items(np.zeros(3), np.zeros(3), 4)

    def test_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            top_increase_items(np.zeros(3), np.zeros(4), 1)


class TestZScoreDetector:
    def _history(self, d=10, epochs=20, seed=0):
        rng = np.random.default_rng(seed)
        base = np.full(d, 1.0 / d)
        return base + rng.normal(0, 0.002, size=(epochs, d))

    def test_detects_injected_outlier(self):
        history = self._history()
        detector = ZScoreOutlierDetector(threshold=3.0).fit(history)
        current = history.mean(axis=0).copy()
        current[4] += 0.05
        np.testing.assert_array_equal(detector.detect(current), [4])

    def test_no_false_positives_on_history_mean(self):
        history = self._history()
        detector = ZScoreOutlierDetector(threshold=3.0).fit(history)
        assert detector.detect(history.mean(axis=0)).size == 0

    def test_only_positive_deviations_flagged(self):
        history = self._history()
        detector = ZScoreOutlierDetector(threshold=3.0).fit(history)
        current = history.mean(axis=0).copy()
        current[2] -= 0.05  # demotion is not an attack signature
        assert detector.detect(current).size == 0

    def test_scores_shape(self):
        detector = ZScoreOutlierDetector().fit(self._history())
        scores = detector.scores(self._history()[0])
        assert scores.shape == (10,)

    def test_unfitted_raises(self):
        with pytest.raises(InvalidParameterError):
            ZScoreOutlierDetector().detect(np.zeros(10))

    def test_fit_requires_two_epochs(self):
        with pytest.raises(InvalidParameterError):
            ZScoreOutlierDetector().fit(np.zeros((1, 10)))

    def test_threshold_validation(self):
        with pytest.raises(InvalidParameterError):
            ZScoreOutlierDetector(threshold=0.0)

    def test_shape_mismatch_on_score(self):
        detector = ZScoreOutlierDetector().fit(self._history())
        with pytest.raises(InvalidParameterError):
            detector.scores(np.zeros(11))

    def test_is_fitted_flag(self):
        detector = ZScoreOutlierDetector()
        assert not detector.is_fitted
        detector.fit(self._history())
        assert detector.is_fitted

    def test_end_to_end_mga_target_identification(self):
        """Simulated history + MGA poisoning: the detector finds targets."""
        from repro.attacks import MGAAttack
        from repro.datasets import zipf_dataset
        from repro.protocols import GRR
        from repro.sim import run_trial

        d = 20
        data = zipf_dataset(domain_size=d, num_users=30_000, exponent=1.0, rng=1)
        proto = GRR(epsilon=1.0, domain_size=d)
        # History: unpoisoned epochs of genuine aggregation.
        history = np.array(
            [
                run_trial(data, proto, None, beta=0.0, rng=seed).genuine_frequencies
                for seed in range(15)
            ]
        )
        detector = ZScoreOutlierDetector(threshold=4.0).fit(history)
        attack = MGAAttack(domain_size=d, targets=[3, 11], rng=0)
        trial = run_trial(data, proto, attack, beta=0.05, rng=99)
        detected = detector.detect(trial.poisoned_frequencies)
        assert set([3, 11]).issubset(set(detected.tolist()))
