"""Behavior of the online recovery service (:mod:`repro.serve`).

Three promises under test: an ingest→recover round-trip is byte-equal to
the batch pipeline on the same reports; views recompute lazily and only
on dirty epochs (counted, like the engine's ``TASK_COUNTER``); and a
snapshot/restore cycle resumes mid-stream without double-counting.  The
HTTP layer is exercised end to end over a real socket with a minimal
stdlib client.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.attacks import MGAAttack
from repro.cli import build_parser, main
from repro.core.detection import detect_and_aggregate
from repro.core.recover import recover_frequencies
from repro.exceptions import InvalidParameterError
from repro.protocols import make_protocol
from repro.serve import RecoveryHTTPServer, RecoveryService, SnapshotStore

EPSILON = 1.0
DOMAIN = 16
USERS = 3000
TARGETS = [1, 2]


def _poisoned_reports(name="oue", seed=0, **kwargs):
    """A genuine+malicious report batch, as an aggregator would receive."""
    protocol = make_protocol(name, EPSILON, DOMAIN, **kwargs)
    items = np.random.default_rng(seed).integers(0, DOMAIN, size=USERS)
    genuine = protocol.perturb(items, np.random.default_rng(seed + 1))
    attack = MGAAttack(domain_size=DOMAIN, targets=TARGETS, rng=seed + 2)
    malicious = attack.craft(protocol, 150, np.random.default_rng(seed + 3))
    return protocol, protocol.concat_reports(genuine, malicious)


class TestRoundTripMatchesBatch:
    @pytest.mark.parametrize("name,kwargs", [
        ("grr", {}),
        ("oue", {}),
        ("olh", {}),
        ("olh", {"cohort": 8}),
    ], ids=["grr", "oue", "olh", "olh-cohort"])
    def test_streamed_views_equal_batch_pipeline(self, name, kwargs):
        protocol, reports = _poisoned_reports(name, **kwargs)
        n = protocol.num_reports(reports)
        service = RecoveryService(protocol, retain_reports=True)
        for start in range(0, n, 500):
            service.ingest(
                "e", protocol.slice_reports(reports, start, min(start + 500, n))
            )

        batch_raw = protocol.aggregate(reports)
        assert np.array_equal(
            service.frequencies("e", "raw").frequencies, batch_raw
        )
        assert np.array_equal(
            service.frequencies("e", "recover").frequencies,
            recover_frequencies(batch_raw, protocol, eta=service.eta).frequencies,
        )
        assert np.array_equal(
            service.frequencies("e", "recover_star", targets=TARGETS).frequencies,
            recover_frequencies(
                batch_raw, protocol, eta=service.eta, target_items=TARGETS
            ).frequencies,
        )
        assert np.array_equal(
            service.frequencies("e", "detection", targets=TARGETS).frequencies,
            detect_and_aggregate(protocol, reports, TARGETS).frequencies,
        )

    def test_target_order_is_irrelevant(self):
        protocol, reports = _poisoned_reports()
        service = RecoveryService(protocol)
        service.ingest("e", reports)
        first = service.frequencies("e", "recover_star", targets=[2, 1])
        second = service.frequencies("e", "recover_star", targets=[1, 2, 2])
        assert np.array_equal(first.frequencies, second.frequencies)
        assert second.recomputed is False  # same normalized key


class TestLazyRecomputation:
    def test_warm_reads_run_zero_recomputation(self):
        protocol, reports = _poisoned_reports()
        service = RecoveryService(protocol)
        service.ingest("e", reports)
        for method, targets in [
            ("raw", None), ("recover", None), ("recover_star", TARGETS),
        ]:
            assert service.frequencies("e", method, targets=targets).recomputed
        warm = service.recomputes.count
        assert warm == 3
        for method, targets in [
            ("raw", None), ("recover", None), ("recover_star", TARGETS),
        ]:
            view = service.frequencies("e", method, targets=targets)
            assert view.recomputed is False
        assert service.recomputes.count == warm

    def test_only_dirty_epochs_recompute(self):
        protocol, reports = _poisoned_reports()
        service = RecoveryService(protocol)
        half = USERS // 2
        service.ingest("a", protocol.slice_reports(reports, 0, half))
        service.ingest("b", protocol.slice_reports(reports, half, USERS))
        service.frequencies("a", "recover")
        service.frequencies("b", "recover")
        before = service.recomputes.count

        service.ingest("a", protocol.slice_reports(reports, 0, 100))
        # The clean epoch serves warm; the dirty one recomputes.
        assert service.frequencies("b", "recover").recomputed is False
        assert service.frequencies("a", "recover").recomputed is True
        assert service.recomputes.count == before + 1

    def test_stats_reports_counters_and_dirtiness(self):
        protocol, reports = _poisoned_reports()
        service = RecoveryService(protocol)
        service.ingest("e", reports)
        stats = service.stats()
        assert stats["ingested_reports"] == protocol.num_reports(reports)
        assert stats["ingested_batches"] == 1
        assert stats["epochs"]["e"]["dirty"] is True
        service.frequencies("e", "raw")
        stats = service.stats()
        assert stats["epochs"]["e"]["dirty"] is False
        assert stats["recomputes"] == 1
        assert stats["protocol"]["name"] == protocol.name

    def test_error_paths(self):
        protocol, reports = _poisoned_reports()
        service = RecoveryService(protocol)  # no retain_reports
        service.ingest("e", reports)
        with pytest.raises(InvalidParameterError):
            service.frequencies("missing")
        with pytest.raises(InvalidParameterError):
            service.frequencies("e", "no-such-method")
        with pytest.raises(InvalidParameterError):
            service.frequencies("e", "recover_star")  # targets required
        with pytest.raises(InvalidParameterError):
            service.frequencies("e", "detection", targets=TARGETS)  # not retained


class TestSnapshotRestore:
    def test_restore_resumes_without_double_counting(self):
        protocol, reports = _poisoned_reports()
        straight = RecoveryService(protocol)
        straight.ingest("e", reports)

        interrupted = RecoveryService(protocol)
        interrupted.ingest("e", protocol.slice_reports(reports, 0, 1200))
        snap = json.loads(json.dumps(interrupted.snapshot(), default=float))
        resumed = RecoveryService.restore(snap, protocol)
        n = protocol.num_reports(reports)
        resumed.ingest("e", protocol.slice_reports(reports, 1200, n))

        for method in ("raw", "recover"):
            assert np.array_equal(
                resumed.frequencies("e", method).frequencies,
                straight.frequencies("e", method).frequencies,
            )
        assert resumed.ingested_reports == straight.ingested_reports

    def test_restore_rejects_bad_format(self):
        protocol = make_protocol("grr", EPSILON, DOMAIN)
        snap = RecoveryService(protocol).snapshot()
        snap["format"] = -1
        with pytest.raises(InvalidParameterError):
            RecoveryService.restore(snap, protocol)

    def test_store_round_trip_and_ordering(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        assert store.latest() is None
        store.save({"gen": 1})
        path = store.save({"gen": 2})
        assert path.name == "snapshot-00000002.json"
        assert store.latest() == {"gen": 2}
        assert [p.name for p in store.paths()] == [
            "snapshot-00000001.json", "snapshot-00000002.json",
        ]
        # no leftover temp files from the atomic writes
        assert not list((tmp_path / "snaps").glob("*.tmp"))

    def test_store_skips_corrupt_latest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"gen": 1})
        (tmp_path / "snapshot-00000009.json").write_text("{trunc", encoding="utf-8")
        assert store.latest() == {"gen": 1}


async def _request(reader, writer, method, path, body=None):
    """One keep-alive HTTP exchange with a running server."""
    data = b"" if body is None else json.dumps(body).encode("utf-8")
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {len(data)}\r\n\r\n"
    writer.write(head.encode("latin-1") + data)
    await writer.drain()
    status_line = await reader.readline()
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers["content-length"]))
    return int(status_line.split()[1]), json.loads(payload)


class TestHTTPServer:
    def _run(self, coro):
        asyncio.run(coro)

    def test_endpoints_end_to_end(self, tmp_path):
        protocol, reports = _poisoned_reports()
        n = protocol.num_reports(reports)
        service = RecoveryService(protocol, retain_reports=True)
        store = SnapshotStore(tmp_path)

        async def scenario():
            server = RecoveryHTTPServer(service, snapshot_store=store)
            await server.start()
            assert server.port != 0
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)

            status, doc = await _request(reader, writer, "GET", "/healthz")
            assert (status, doc) == (200, {"status": "ok"})

            for start in range(0, n, 1000):
                batch = protocol.slice_reports(reports, start, min(start + 1000, n))
                status, doc = await _request(
                    reader, writer, "POST", "/ingest",
                    {"epoch": "e", "reports": protocol.encode_reports(batch)},
                )
                assert status == 200
            assert doc["total_reports"] == n

            status, doc = await _request(
                reader, writer, "GET", "/frequencies?epoch=e&method=recover"
            )
            assert status == 200 and doc["recomputed"] is True
            expected = recover_frequencies(
                protocol.aggregate(reports), protocol, eta=service.eta
            ).frequencies
            assert np.array_equal(np.asarray(doc["frequencies"]), expected)

            status, doc = await _request(
                reader, writer, "GET",
                "/frequencies?epoch=e&method=detection&targets=1,2",
            )
            assert status == 200

            status, doc = await _request(reader, writer, "GET", "/stats")
            assert status == 200 and doc["ingested_reports"] == n

            status, doc = await _request(reader, writer, "POST", "/snapshot")
            assert status == 200 and "snapshot-" in doc["path"]

            # error handling stays JSON all the way down
            status, doc = await _request(reader, writer, "GET", "/frequencies")
            assert status == 400
            status, doc = await _request(
                reader, writer, "GET", "/frequencies?epoch=missing"
            )
            assert status == 400
            status, doc = await _request(reader, writer, "GET", "/nope")
            assert status == 404
            status, doc = await _request(reader, writer, "POST", "/healthz")
            assert status == 405
            writer.write(
                b"POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nhuh{"
            )
            await writer.drain()
            status_line = await reader.readline()
            assert int(status_line.split()[1]) == 400
            while (await reader.readline()) not in (b"\r\n", b"\n", b""):
                pass
            writer.close()
            await writer.wait_closed()
            await server.stop()

        self._run(scenario())
        assert store.latest() is not None

    def test_snapshot_without_store_is_a_client_error(self):
        protocol, _ = _poisoned_reports()

        async def scenario():
            server = RecoveryHTTPServer(RecoveryService(protocol))
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            status, doc = await _request(reader, writer, "POST", "/snapshot")
            assert status == 400 and "snapshot" in doc["error"]
            writer.close()
            await writer.wait_closed()
            await server.stop()

        self._run(scenario())

    def test_http_snapshot_resumes_service(self, tmp_path):
        protocol, reports = _poisoned_reports()
        n = protocol.num_reports(reports)
        service = RecoveryService(protocol)
        store = SnapshotStore(tmp_path)

        async def scenario():
            server = RecoveryHTTPServer(service, snapshot_store=store)
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            half = protocol.slice_reports(reports, 0, 1500)
            await _request(
                reader, writer, "POST", "/ingest",
                {"epoch": "e", "reports": protocol.encode_reports(half)},
            )
            await _request(reader, writer, "POST", "/snapshot")
            writer.close()
            await writer.wait_closed()
            await server.stop()

        self._run(scenario())
        resumed = RecoveryService.restore(store.latest(), protocol)
        resumed.ingest("e", protocol.slice_reports(reports, 1500, n))
        straight = RecoveryService(protocol)
        straight.ingest("e", reports)
        assert np.array_equal(
            resumed.frequencies("e", "recover").frequencies,
            straight.frequencies("e", "recover").frequencies,
        )


class TestServeCLI:
    def test_parser_accepts_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--protocol", "olh", "--epsilon", "2.0",
            "--domain-size", "64", "--olh-cohort", "16", "--chunk-users",
            "4096", "--retain-reports", "--port", "9100",
            "--snapshot-dir", "/tmp/snaps", "--resume",
        ])
        assert args.command == "serve"
        assert args.protocol == "olh"
        assert args.olh_cohort == 16
        assert args.retain_reports is True
        assert args.resume is True

    def test_cohort_flag_requires_olh(self, capsys):
        code = main([
            "serve", "--protocol", "grr", "--olh-cohort", "8",
        ])
        assert code == 2
        assert "--olh-cohort" in capsys.readouterr().err

    def test_resume_with_mismatched_snapshot_fails_fast(self, tmp_path, capsys):
        snapshot_dir = tmp_path / "snaps"
        other = RecoveryService(make_protocol("oue", EPSILON, DOMAIN))
        SnapshotStore(snapshot_dir).save(other.snapshot())
        code = main([
            "serve", "--protocol", "grr", "--epsilon", str(EPSILON),
            "--domain-size", str(DOMAIN),
            "--snapshot-dir", str(snapshot_dir), "--resume",
        ])
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err
