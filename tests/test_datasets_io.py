"""Tests for dataset persistence (CSV / NPZ round trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, load_dataset_file, save_dataset, zipf_dataset
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def dataset():
    return zipf_dataset(domain_size=12, num_users=500, rng=0, name="toy")


class TestNPZ:
    def test_round_trip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "d.npz")
        loaded = load_dataset_file(path)
        np.testing.assert_array_equal(loaded.counts, dataset.counts)
        assert loaded.name == "toy"

    def test_name_override(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "d.npz")
        assert load_dataset_file(path, name="renamed").name == "renamed"


class TestCSV:
    def test_round_trip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "d.csv")
        loaded = load_dataset_file(path)
        np.testing.assert_array_equal(loaded.counts, dataset.counts)

    def test_sparse_rows_fill_zeros(self, tmp_path):
        path = tmp_path / "sparse.csv"
        path.write_text("item,count\n5,10\n2,3\n")
        loaded = load_dataset_file(path)
        assert loaded.domain_size == 6
        assert loaded.counts[5] == 10
        assert loaded.counts[2] == 3
        assert loaded.counts[0] == 0

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("item,count\nx,10\n")
        with pytest.raises(InvalidParameterError):
            load_dataset_file(path)

    def test_negative_item_rejected(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("item,count\n-1,10\n5,2\n")
        with pytest.raises(InvalidParameterError):
            load_dataset_file(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("item,count\n")
        with pytest.raises(InvalidParameterError):
            load_dataset_file(path)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_dataset_file(tmp_path / "nope.csv")

    def test_bad_extension_save(self, dataset, tmp_path):
        with pytest.raises(InvalidParameterError):
            save_dataset(dataset, tmp_path / "d.parquet")

    def test_bad_extension_load(self, tmp_path):
        (tmp_path / "d.parquet").write_text("x")
        with pytest.raises(InvalidParameterError):
            load_dataset_file(tmp_path / "d.parquet")


class TestPipelineFromFile:
    def test_loaded_dataset_runs_pipeline(self, dataset, tmp_path):
        import repro

        path = save_dataset(dataset, tmp_path / "d.npz")
        loaded = load_dataset_file(path)
        proto = repro.GRR(epsilon=1.0, domain_size=loaded.domain_size)
        trial = repro.run_trial(loaded, proto, None, rng=0)
        assert trial.poisoned_frequencies.shape == (loaded.domain_size,)
