"""Tests for the historical-epoch simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR
from repro.sim.history import History, simulate_history

D = 16
DATASET = zipf_dataset(domain_size=D, num_users=10_000, exponent=1.0, rng=2)


@pytest.fixture()
def proto():
    return GRR(epsilon=1.0, domain_size=D)


class TestSimulateHistory:
    def test_shape(self, proto):
        history = simulate_history(DATASET, proto, epochs=5, rng=0)
        assert history.estimates.shape == (5, D)
        assert history.num_epochs == 5

    def test_deterministic(self, proto):
        a = simulate_history(DATASET, proto, epochs=4, rng=7)
        b = simulate_history(DATASET, proto, epochs=4, rng=7)
        np.testing.assert_array_equal(a.estimates, b.estimates)

    def test_epochs_validation(self, proto):
        with pytest.raises(InvalidParameterError):
            simulate_history(DATASET, proto, epochs=1)

    def test_drift_validation(self, proto):
        with pytest.raises(InvalidParameterError):
            simulate_history(DATASET, proto, epochs=3, drift=1.0)

    def test_no_drift_keeps_dataset(self, proto):
        history = simulate_history(DATASET, proto, epochs=3, drift=0.0, rng=1)
        np.testing.assert_array_equal(history.final_dataset.counts, DATASET.counts)

    def test_drift_changes_counts_but_preserves_total(self, proto):
        history = simulate_history(DATASET, proto, epochs=5, drift=0.2, rng=1)
        assert history.final_dataset.num_users == DATASET.num_users
        assert not np.array_equal(history.final_dataset.counts, DATASET.counts)

    def test_mean_close_to_truth(self, proto):
        history = simulate_history(DATASET, proto, epochs=10, rng=3)
        np.testing.assert_allclose(history.mean(), DATASET.frequencies, atol=0.05)

    def test_feeds_outlier_detector(self, proto):
        from repro.attacks import MGAAttack
        from repro.sim import run_trial
        from repro.sim.outliers import ZScoreOutlierDetector

        history = simulate_history(DATASET, proto, epochs=12, rng=4)
        detector = ZScoreOutlierDetector(threshold=4.0).fit(history.estimates)
        attack = MGAAttack(domain_size=D, targets=[2, 9], rng=0)
        trial = run_trial(DATASET, proto, attack, beta=0.1, rng=50)
        detected = detector.detect(trial.poisoned_frequencies)
        assert {2, 9}.issubset(set(detected.tolist()))


class TestHistoryContainer:
    def test_mean_shape(self):
        history = History(
            estimates=np.ones((3, D)) / D, final_dataset=DATASET
        )
        assert history.mean().shape == (D,)
