"""Property-based tests on the recovery layer (hypothesis).

Invariants: recovery always outputs a probability vector, is deterministic,
respects the estimator algebra, and degrades gracefully for extreme eta.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.malicious import (
    partial_knowledge_malicious_estimate,
    uniform_malicious_estimate,
)
from repro.core.projection import is_probability_vector
from repro.core.recover import recover_frequencies
from repro.protocols import make_protocol

protocol_names = st.sampled_from(["grr", "oue", "olh"])


@st.composite
def recovery_case(draw):
    name = draw(protocol_names)
    eps = draw(st.floats(min_value=0.1, max_value=3.0, allow_nan=False))
    d = draw(st.integers(min_value=3, max_value=30))
    proto = make_protocol(name, epsilon=eps, domain_size=d)
    poisoned = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=d,
            elements=st.floats(
                min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False
            ),
        )
    )
    eta = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    return proto, poisoned, eta


class TestRecoveryProperties:
    @given(recovery_case())
    @settings(max_examples=100, deadline=None)
    def test_output_always_probability_vector(self, case):
        proto, poisoned, eta = case
        result = recover_frequencies(poisoned, proto, eta=eta)
        assert is_probability_vector(result.frequencies, atol=1e-7)

    @given(recovery_case())
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, case):
        proto, poisoned, eta = case
        a = recover_frequencies(poisoned, proto, eta=eta)
        b = recover_frequencies(poisoned, proto, eta=eta)
        np.testing.assert_array_equal(a.frequencies, b.frequencies)

    @given(recovery_case())
    @settings(max_examples=50, deadline=None)
    def test_estimator_algebra(self, case):
        proto, poisoned, eta = case
        result = recover_frequencies(poisoned, proto, eta=eta)
        expected = (1 + eta) * poisoned - eta * result.malicious.frequencies
        np.testing.assert_allclose(result.estimated_genuine, expected, atol=1e-9)

    @given(recovery_case())
    @settings(max_examples=50, deadline=None)
    def test_star_output_probability_vector(self, case):
        proto, poisoned, eta = case
        if proto.domain_size < 3:
            return
        targets = [0, proto.domain_size - 1]
        result = recover_frequencies(poisoned, proto, eta=eta, target_items=targets)
        assert is_probability_vector(result.frequencies, atol=1e-7)
        assert result.scenario == "partial-knowledge"

    @given(recovery_case())
    @settings(max_examples=50, deadline=None)
    def test_eta_zero_is_pure_projection(self, case):
        proto, poisoned, _ = case
        from repro.core.projection import project_onto_simplex_kkt

        result = recover_frequencies(poisoned, proto, eta=0.0)
        np.testing.assert_allclose(
            result.frequencies, project_onto_simplex_kkt(poisoned), atol=1e-9
        )


class TestMaliciousEstimateProperties:
    @given(recovery_case())
    @settings(max_examples=60, deadline=None)
    def test_uniform_estimate_sum_invariant(self, case):
        proto, poisoned, _ = case
        estimate = uniform_malicious_estimate(poisoned, proto.params)
        expected = proto.expected_malicious_sum()
        assert estimate.sum() == np.float64(estimate.sum())
        np.testing.assert_allclose(estimate.sum(), expected, rtol=1e-9)

    @given(recovery_case(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_partial_estimate_sum_invariant(self, case, data):
        proto, _, _ = case
        d = proto.domain_size
        k = data.draw(st.integers(min_value=1, max_value=d - 1))
        targets = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=d - 1),
                min_size=1,
                max_size=k,
                unique=True,
            )
        )
        estimate = partial_knowledge_malicious_estimate(proto.params, np.array(targets))
        # The split-and-resum round trip loses a few ulps when the two
        # components nearly cancel; compare with a small absolute floor.
        scale = max(1.0, float(np.abs(estimate).sum()))
        np.testing.assert_allclose(
            estimate.sum(), proto.expected_malicious_sum(), atol=1e-8 * scale
        )

    @given(recovery_case())
    @settings(max_examples=40, deadline=None)
    def test_uniform_estimate_zero_on_d0(self, case):
        proto, poisoned, _ = case
        estimate = uniform_malicious_estimate(poisoned, proto.params)
        d0 = poisoned <= 0
        if d0.all():
            return  # degenerate fallback spreads everywhere
        np.testing.assert_allclose(estimate[d0], 0.0, atol=1e-12)
