"""The mypy gate, exercised when mypy is installed (CI always installs it).

The pinned configuration (``mypy.ini``) covers the determinism-critical
modules: the recovery math, the protocol layer whose attributes the cell
cache fingerprints, the lint subsystem itself, and the cache/shard pair.
Locally the test skips when mypy is absent — it is a dev/CI tool, not a
runtime dependency.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_mypy_gate_is_clean():
    pytest.importorskip("mypy")
    env = dict(os.environ, PYTHONPATH="src")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    assert result.returncode == 0, f"mypy gate failed:\n{result.stdout}{result.stderr}"


def test_mypy_config_is_pinned():
    """The config keeps the knobs the gate depends on."""
    config = (REPO_ROOT / "mypy.ini").read_text()
    assert "check_untyped_defs = True" in config
    assert "warn_unused_ignores = True" in config
    for scoped in ("src/repro/core", "src/repro/protocols", "src/repro/lint",
                   "src/repro/sim/cache.py", "src/repro/sim/shard.py",
                   "src/repro/sim/engine.py", "src/repro/sim/scenarios.py",
                   "src/repro/sim/figures.py"):
        assert scoped in config
