"""Statistical and structural tests for GRR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols import GRR, counts_to_items


@pytest.fixture()
def proto() -> GRR:
    return GRR(epsilon=1.0, domain_size=8)


class TestPerturb:
    def test_output_in_domain(self, proto, rng):
        items = rng.integers(0, proto.domain_size, size=5000)
        reports = proto.perturb(items, rng)
        assert reports.min() >= 0
        assert reports.max() < proto.domain_size

    def test_keep_rate_matches_p(self, proto, rng):
        n = 200_000
        items = np.full(n, 3, dtype=np.int64)
        reports = proto.perturb(items, rng)
        keep_rate = float(np.mean(reports == 3))
        assert keep_rate == pytest.approx(proto.p, abs=0.005)

    def test_flip_uniform_over_others(self, proto, rng):
        n = 300_000
        items = np.full(n, 0, dtype=np.int64)
        reports = proto.perturb(items, rng)
        flipped = reports[reports != 0]
        counts = np.bincount(flipped, minlength=proto.domain_size)[1:]
        rates = counts / n
        np.testing.assert_allclose(rates, proto.q, atol=0.005)

    def test_deterministic_given_seed(self, proto):
        items = np.arange(proto.domain_size).repeat(10)
        a = proto.perturb(items, 42)
        b = proto.perturb(items, 42)
        np.testing.assert_array_equal(a, b)


class TestAggregation:
    def test_unbiased_frequency_estimate(self, proto, rng):
        n = 100_000
        true_counts = np.zeros(proto.domain_size, dtype=np.int64)
        true_counts[2] = int(0.6 * n)
        true_counts[5] = n - true_counts[2]
        items = counts_to_items(true_counts, rng)
        freqs = proto.aggregate(proto.perturb(items, rng))
        sigma = np.sqrt(proto.theoretical_variance(n, 0.6)) / n
        assert freqs[2] == pytest.approx(0.6, abs=5 * sigma)
        assert freqs[5] == pytest.approx(0.4, abs=5 * sigma)

    def test_support_counts_bincount(self, proto):
        reports = np.array([0, 0, 3, 7, 3])
        counts = proto.support_counts(reports)
        assert counts[0] == 2
        assert counts[3] == 2
        assert counts[7] == 1
        assert counts.sum() == 5

    def test_estimated_frequencies_sum_near_one(self, proto, rng):
        # Support sums are exactly n for GRR, so estimates sum to exactly 1.
        items = rng.integers(0, proto.domain_size, size=10_000)
        freqs = proto.aggregate(proto.perturb(items, rng))
        assert freqs.sum() == pytest.approx(1.0, abs=1e-9)


class TestFastPath:
    def test_total_preserved(self, proto, rng):
        counts = rng.integers(0, 500, size=proto.domain_size)
        sampled = proto.sample_genuine_counts(counts, rng)
        assert sampled.sum() == counts.sum()

    def test_fast_matches_sampled_distribution(self, proto):
        # Compare the two simulation paths statistically: estimated
        # frequencies of a fixed item should agree in mean across trials.
        true_counts = np.zeros(proto.domain_size, dtype=np.int64)
        true_counts[1] = 3000
        true_counts[4] = 1000
        n = int(true_counts.sum())
        fast, slow = [], []
        for seed in range(40):
            fast_counts = proto.sample_genuine_counts(true_counts, seed)
            fast.append(proto.estimate_frequencies(fast_counts, n)[1])
            items = counts_to_items(true_counts, seed)
            reports = proto.perturb(items, seed + 1000)
            slow.append(proto.aggregate(reports)[1])
        assert np.mean(fast) == pytest.approx(0.75, abs=0.02)
        assert np.mean(slow) == pytest.approx(0.75, abs=0.02)
        assert np.std(fast) == pytest.approx(np.std(slow), rel=0.6)

    def test_empirical_variance_matches_theory(self, proto):
        true_counts = np.zeros(proto.domain_size, dtype=np.int64)
        true_counts[0] = 5000
        n = 5000
        estimates = [
            proto.estimate_counts(proto.sample_genuine_counts(true_counts, seed), n)[0]
            for seed in range(300)
        ]
        theory = proto.theoretical_variance(n, 1.0)
        assert np.var(estimates) == pytest.approx(theory, rel=0.3)


class TestCrafting:
    def test_craft_supporting_identity(self, proto):
        items = np.array([1, 5, 5, 0])
        crafted = proto.craft_supporting(items)
        np.testing.assert_array_equal(crafted, items)

    def test_craft_returns_copy(self, proto):
        items = np.array([1, 2, 3])
        crafted = proto.craft_supporting(items)
        crafted[0] = 7
        assert items[0] == 1


class TestReportOps:
    def test_concat(self, proto):
        combined = proto.concat_reports(np.array([1, 2]), np.array([3]))
        np.testing.assert_array_equal(combined, [1, 2, 3])

    def test_num_reports(self, proto):
        assert proto.num_reports(np.array([1, 2, 3])) == 3

    def test_supporting_any(self, proto):
        reports = np.array([0, 1, 2, 1])
        mask = proto.reports_supporting_any(reports, [1, 5])
        np.testing.assert_array_equal(mask, [False, True, False, True])

    def test_target_support_counts_binary(self, proto):
        reports = np.array([0, 1, 2])
        counts = proto.target_support_counts(reports, [1, 2])
        np.testing.assert_array_equal(counts, [0, 1, 1])

    def test_select_reports(self, proto):
        reports = np.array([4, 5, 6])
        kept = proto.select_reports(reports, np.array([True, False, True]))
        np.testing.assert_array_equal(kept, [4, 6])

    def test_max_report_support_is_one(self, proto):
        assert proto.max_report_support() == 1


class TestVariance:
    def test_variance_formula_eq4(self):
        import math

        eps, d, n, f = 0.5, 102, 1000, 0.1
        proto = GRR(epsilon=eps, domain_size=d)
        e = math.exp(eps)
        expected = n * (d - 2 + e) / (e - 1) ** 2 + n * f * (d - 2) / (e - 1)
        assert proto.theoretical_variance(n, f) == pytest.approx(expected)

    def test_variance_grows_with_domain(self):
        small = GRR(epsilon=0.5, domain_size=10).theoretical_variance(1000)
        large = GRR(epsilon=0.5, domain_size=1000).theoretical_variance(1000)
        assert large > small
