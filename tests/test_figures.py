"""Tests for the figure-regeneration module (small, fast configurations).

Each test runs the exhibit at a reduced scale and asserts the *qualitative
shape* the paper reports — who wins, by roughly what factor — exactly the
reproduction contract of DESIGN.md section 5.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sim import figures

SCALE = 15_000  # users; keeps each exhibit under a couple of seconds


def _col(rows, key):
    return np.array([row[key] for row in rows], dtype=np.float64)


class TestFigure3:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.figure3_rows(num_users=SCALE, trials=2, rng=0)

    def test_all_cells_present(self, rows):
        cells = {row["cell"] for row in rows}
        assert cells == {
            "manip-grr",
            "mga-grr",
            "mga-oue",
            "mga-olh",
            "aa-grr",
            "aa-oue",
            "aa-olh",
        }

    def test_recovery_beats_poisoned_everywhere(self, rows):
        assert np.all(_col(rows, "mse_ldprecover") < _col(rows, "mse_before"))

    def test_recovery_beats_detection_everywhere(self, rows):
        assert np.all(_col(rows, "mse_ldprecover") < _col(rows, "mse_detection"))

    def test_star_best_under_mga(self, rows):
        mga = [r for r in rows if r["cell"].startswith("mga")]
        star = _col(mga, "mse_ldprecover_star")
        plain = _col(mga, "mse_ldprecover")
        # Star wins on average across the MGA cells.
        assert star.mean() < plain.mean()

    def test_fire_dataset_variant(self):
        rows = figures.figure3_rows(
            dataset_name="fire", num_users=SCALE, trials=1, rng=1
        )
        assert len(rows) == 7
        assert np.all(_col(rows, "mse_ldprecover") < _col(rows, "mse_before"))


class TestFigure4:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.figure4_rows(num_users=SCALE, trials=3, rng=0)

    def test_fg_positive_before(self, rows):
        assert np.all(_col(rows, "fg_before") > 0)

    def test_fg_suppressed_after_recovery(self, rows):
        before = _col(rows, "fg_before")
        after = np.abs(_col(rows, "fg_ldprecover"))
        assert np.all(after < before / 2)

    def test_star_fg_at_most_plain(self, rows):
        star = _col(rows, "fg_ldprecover_star")
        before = _col(rows, "fg_before")
        assert np.all(np.abs(star) < before / 2)


class TestSweeps:
    def test_beta_sweep_shape(self):
        rows = figures.sweep_rows(
            "ipums", "beta", values=(0.01, 0.1), num_users=SCALE, trials=2, rng=0
        )
        assert len(rows) == 6  # 3 protocols x 2 values
        for protocol in ("grr", "oue", "olh"):
            sub = [r for r in rows if r["cell"] == f"aa-{protocol}"]
            # Recovery stays below poisoned at every beta.
            assert all(r["mse_ldprecover"] < r["mse_before"] for r in sub)
        # For GRR, whose single-item crafting distorts the most, the
        # poisoning error visibly grows with beta even at test scale
        # (OUE/OLH are noise-dominated at 15k users).
        grr = [r for r in rows if r["cell"] == "aa-grr"]
        assert grr[1]["mse_before"] > grr[0]["mse_before"]

    def test_eta_sweep_runs(self):
        rows = figures.sweep_rows(
            "ipums", "eta", values=(0.05, 0.4), num_users=SCALE, trials=2, rng=1
        )
        assert all("eta" in row for row in rows)

    def test_epsilon_sweep_runs(self):
        rows = figures.sweep_rows(
            "fire", "epsilon", values=(0.4, 1.6), num_users=SCALE, trials=1, rng=2
        )
        assert all(row["mse_ldprecover"] < row["mse_before"] for row in rows)

    def test_unknown_parameter(self):
        with pytest.raises(InvalidParameterError):
            figures.sweep_rows("ipums", "gamma", num_users=SCALE)

    def test_unknown_dataset(self):
        with pytest.raises(InvalidParameterError):
            figures.load_dataset("adult", None)


class TestFigure7:
    def test_star_estimates_malicious_better(self):
        rows = figures.figure7_rows(num_users=SCALE, trials=2, rng=0)
        plain = _col(rows, "malicious_mse_ldprecover")
        star = _col(rows, "malicious_mse_ldprecover_star")
        # Fig. 7's claim, averaged across cells.
        assert star.mean() < plain.mean()


class TestFigure8:
    def test_ipa_much_weaker(self):
        rows = figures.figure8_rows(num_users=SCALE, trials=2, rng=0)
        mga = _col(rows, "mse_mga")
        ipa = _col(rows, "mse_mga_ipa")
        assert np.all(ipa < mga)
        # Orders of magnitude at the larger betas.
        assert (mga / ipa).max() > 10

    def test_mga_grows_with_beta(self):
        rows = figures.figure8_rows(num_users=SCALE, trials=2, rng=1)
        grr = [r for r in rows if r["cell"] == "grr"]
        assert grr[-1]["mse_mga"] > grr[0]["mse_mga"]


class TestFigure9:
    def test_ldprecover_km_wins(self):
        rows = figures.figure9_rows(num_users=8_000, trials=2, rng=0)
        km_rec = _col(rows, "mse_ldprecover_km")
        km_only = _col(rows, "mse_kmeans")
        assert km_rec.mean() < km_only.mean()


class TestFigure10:
    def test_multiattacker_recovery(self):
        rows = figures.figure10_rows(num_users=SCALE, trials=2, rng=0)
        assert len(rows) == 15  # 3 protocols x 5 betas
        assert np.all(_col(rows, "mse_ldprecover") < _col(rows, "mse_before"))


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.table1_rows(num_users=SCALE, trials=3, rng=0)

    def test_both_datasets_all_protocols(self, rows):
        assert len(rows) == 6

    def test_grr_improves_on_unpoisoned(self, rows):
        # Table I: for GRR the projection alone helps even without attack.
        grr = [r for r in rows if r["protocol"] == "grr"]
        for row in grr:
            assert row["mse_after_recovery"] < row["mse_before_recovery"]

    def test_oue_olh_can_degrade(self, rows):
        # The paper's inversion: for OUE/OLH recovery on unpoisoned data
        # may remove genuine mass.  At least the effect is not a large win
        # across the board (ratio bounded below by ~0.1x is fine, what we
        # rule out is accidental massive improvement masking a bug).
        others = [r for r in rows if r["protocol"] in ("oue", "olh")]
        ratios = [r["mse_after_recovery"] / r["mse_before_recovery"] for r in others]
        assert min(ratios) > 0.05
