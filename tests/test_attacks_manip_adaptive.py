"""Tests for the Manip and adaptive (AA) attacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AdaptiveAttack, ManipAttack
from repro.exceptions import AttackError
from repro.protocols import GRR


@pytest.fixture()
def proto() -> GRR:
    return GRR(epsilon=0.5, domain_size=20)


class TestManip:
    def test_random_subdomain_size(self):
        attack = ManipAttack(domain_size=20, subdomain_fraction=0.5, rng=0)
        assert attack.subdomain.size == 10

    def test_explicit_subdomain(self):
        attack = ManipAttack(domain_size=20, subdomain=[3, 5, 5, 7])
        np.testing.assert_array_equal(attack.subdomain, [3, 5, 7])

    def test_invalid_subdomain_item(self):
        with pytest.raises(AttackError):
            ManipAttack(domain_size=20, subdomain=[25])

    def test_empty_subdomain(self):
        with pytest.raises(AttackError):
            ManipAttack(domain_size=20, subdomain=[])

    def test_invalid_fraction(self):
        with pytest.raises(AttackError):
            ManipAttack(domain_size=20, subdomain_fraction=0.0)

    def test_distribution_uniform_on_h(self, proto):
        attack = ManipAttack(domain_size=20, subdomain=[1, 2, 3, 4])
        probs = attack.item_distribution(proto)
        assert probs.sum() == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.25)
        assert probs[0] == 0.0

    def test_samples_stay_in_h(self, proto):
        attack = ManipAttack(domain_size=20, subdomain=[0, 19])
        items = attack.sample_items(proto, 1000, rng=1)
        assert set(np.unique(items)).issubset({0, 19})

    def test_craft_reports_for_grr(self, proto):
        attack = ManipAttack(domain_size=20, subdomain=[5])
        reports = attack.craft(proto, 50, rng=2)
        assert np.all(reports == 5)

    def test_domain_mismatch_raises(self):
        attack = ManipAttack(domain_size=10, rng=0)
        with pytest.raises(AttackError):
            attack.item_distribution(GRR(epsilon=0.5, domain_size=11))

    def test_describe(self):
        attack = ManipAttack(domain_size=20, subdomain=[1, 2])
        assert "manip" in attack.describe()
        assert attack.targeted is False

    def test_deterministic_subdomain(self):
        a = ManipAttack(domain_size=50, rng=9).subdomain
        b = ManipAttack(domain_size=50, rng=9).subdomain
        np.testing.assert_array_equal(a, b)


class TestAdaptiveAttack:
    def test_random_distribution_is_probability(self, proto):
        attack = AdaptiveAttack(domain_size=20, rng=0)
        probs = attack.item_distribution(proto)
        assert probs.shape == (20,)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    def test_explicit_distribution_normalized(self, proto):
        raw = np.zeros(20)
        raw[3] = 2.0
        raw[4] = 2.0
        attack = AdaptiveAttack(domain_size=20, probabilities=raw)
        probs = attack.item_distribution(proto)
        assert probs[3] == pytest.approx(0.5)

    def test_negative_probabilities_rejected(self):
        raw = np.full(20, 0.05)
        raw[0] = -0.1
        with pytest.raises(AttackError):
            AdaptiveAttack(domain_size=20, probabilities=raw)

    def test_wrong_shape_rejected(self):
        with pytest.raises(AttackError):
            AdaptiveAttack(domain_size=20, probabilities=np.full(19, 1 / 19))

    def test_invalid_concentration(self):
        with pytest.raises(AttackError):
            AdaptiveAttack(domain_size=20, concentration=0.0)

    def test_sampling_follows_distribution(self, proto):
        probs = np.zeros(20)
        probs[7] = 0.8
        probs[8] = 0.2
        attack = AdaptiveAttack(domain_size=20, probabilities=probs)
        items = attack.sample_items(proto, 50_000, rng=1)
        assert float(np.mean(items == 7)) == pytest.approx(0.8, abs=0.01)

    def test_top_items(self):
        probs = np.zeros(20)
        probs[[2, 9, 15]] = [0.5, 0.3, 0.2]
        attack = AdaptiveAttack(domain_size=20, probabilities=probs)
        np.testing.assert_array_equal(attack.top_items(2), [2, 9])

    def test_top_items_invalid_k(self):
        attack = AdaptiveAttack(domain_size=20, rng=0)
        with pytest.raises(AttackError):
            attack.top_items(0)

    def test_deterministic_given_seed(self):
        a = AdaptiveAttack(domain_size=20, rng=5).probabilities
        b = AdaptiveAttack(domain_size=20, rng=5).probabilities
        np.testing.assert_array_equal(a, b)

    def test_no_target_items(self):
        assert AdaptiveAttack(domain_size=20, rng=0).target_items is None
