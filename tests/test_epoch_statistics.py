"""Cross-epoch statistical pins for the evolving-population exhibit.

Four promises under test (ISSUE 10 satellite 1 + the ``simulate_history``
RNG regression of satellite 3):

* per-epoch frequency estimates stay unbiased under population drift —
  Monte-Carlo means land within tolerances derived from the protocols'
  analytic count variances (Eqs. 4/7), not hand-tuned epsilons;
* LDPRecover strictly improves the poisoned epochs' MSE of a bursting
  schedule across pinned seeds, while leaving the exhibit's clean-epoch
  story intact;
* the cross-epoch z-score detector, fitted on the clean pre-burst
  history, beats a history-less (single-epoch, cross-item) z-score
  baseline at the burst epoch;
* ``simulate_history`` draws its drift off a dedicated spawned stream:
  the epoch-``e`` estimate is invariant to the horizon, and the parent
  generator's subsequent draws are invariant to the epoch count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import MGAAttack, ScheduledAttack
from repro.core.heavyhitters import tail_items
from repro.core.recover import DEFAULT_ETA
from repro.protocols import make_protocol
from repro.protocols.base import counts_to_items
from repro.sim.history import AttackSchedule, epoch_populations, simulate_history
from repro.sim.outliers import ZScoreOutlierDetector
from repro.sim.pipeline import malicious_count
from repro.sim.scenarios import (
    EPOCH_COUNT,
    EPOCH_TARGET_COUNT,
    _EpochTask,
    _epoch_trial,
    detection_f1,
)
from repro.sim.figures import load_dataset

DOMAIN_USERS = 3_000
BURST_AT = 3


def _burst_task(protocol_name: str, seed: int, num_users: int = 8_000) -> _EpochTask:
    """One pinned burst-schedule trial task, scenario-shaped."""
    dataset = load_dataset("ipums", num_users)
    targets = tail_items(dataset.frequencies, EPOCH_TARGET_COUNT)
    protocol = make_protocol(protocol_name, 0.5, dataset.domain_size)
    scheduled = ScheduledAttack(
        MGAAttack(domain_size=dataset.domain_size, targets=targets),
        AttackSchedule.burst(0.15, at=BURST_AT),
        EPOCH_COUNT,
    )
    return _EpochTask(
        dataset=dataset,
        protocol=protocol,
        scheduled=scheduled,
        drift=0.05,
        eta=DEFAULT_ETA,
        collectors=1,
        chunk_users=None,
        seed=np.random.SeedSequence(seed),
    )


class TestPerEpochUnbiasedness:
    """Monte-Carlo unbiasedness of clean per-epoch estimates under drift.

    The tolerance is analytic: the per-item frequency-estimate variance is
    ``theoretical_variance(n, f) / n**2`` (the paper's count variance
    rescaled), so the mean of ``R`` independent trials must land within
    ``z * sqrt(var / R)`` of the drifted truth — per item, per epoch.
    """

    TRIALS = 40
    EPOCHS = 3
    Z = 4.5  # ~1.4e-3 family-wise false-alarm over d*epochs comparisons

    @pytest.mark.parametrize("name", ["grr", "oue"])
    def test_estimates_unbiased_against_drifted_truth(self, name):
        dataset = load_dataset("ipums", DOMAIN_USERS)
        populations = epoch_populations(dataset, self.EPOCHS, drift=0.08, rng=11)
        protocol = make_protocol(name, 2.0, dataset.domain_size)
        n = dataset.num_users
        sums = np.zeros((self.EPOCHS, dataset.domain_size))
        for trial in range(self.TRIALS):
            gen = np.random.default_rng(1_000 + trial)
            for epoch, population in enumerate(populations):
                items = counts_to_items(population.counts, gen)
                sums[epoch] += protocol.aggregate(protocol.perturb(items, gen))
        means = sums / self.TRIALS
        for epoch, population in enumerate(populations):
            truth = population.frequencies
            variances = np.array(
                [protocol.theoretical_variance(n, f) for f in truth]
            ) / float(n) ** 2
            z_scores = np.abs(means[epoch] - truth) / np.sqrt(variances / self.TRIALS)
            assert z_scores.max() < self.Z, (
                f"epoch {epoch}: worst item deviates {z_scores.max():.2f} analytic "
                f"standard errors from the drifted truth"
            )

    def test_drift_actually_moves_the_truth(self):
        dataset = load_dataset("ipums", DOMAIN_USERS)
        populations = epoch_populations(dataset, self.EPOCHS, drift=0.08, rng=11)
        assert not np.array_equal(populations[0].counts, populations[1].counts)
        assert all(p.num_users == dataset.num_users for p in populations)


class TestRecoveryImprovesPoisonedEpochs:
    """LDPRecover strictly shrinks the burst epochs' error, pinned seeds."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("protocol_name", ["grr", "oue"])
    def test_recover_strictly_improves_every_burst_epoch(self, protocol_name, seed):
        out = _epoch_trial(_burst_task(protocol_name, seed))
        for epoch in range(BURST_AT, EPOCH_COUNT):
            before = out[f"mse_before_e{epoch}"]
            recovered = out[f"mse_recover_e{epoch}"]
            assert recovered < before, (
                f"epoch {epoch}: LDPRecover must strictly improve the poisoned "
                f"MSE ({recovered:.3e} !< {before:.3e})"
            )
            # Target knowledge can only help further (LDPRecover*).
            assert out[f"mse_star_e{epoch}"] <= recovered

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recovery_shrinks_target_frequency_gain(self, seed):
        out = _epoch_trial(_burst_task("oue", seed))
        for epoch in range(BURST_AT, EPOCH_COUNT):
            assert out[f"fg_recover_e{epoch}"] < out[f"fg_before_e{epoch}"]


class TestBurstDetectionBeatsNoHistory:
    """The clean pre-burst history is what makes the detector work.

    At loud malicious fractions every rule flags the targets; the regime
    that separates them is a *subtle* burst (``beta=0.03``), where each
    target's jump is huge against its own tight per-item history but
    hides inside the cross-item frequency spread.
    """

    TRIALS = 8
    BETA = 0.03

    def test_cross_epoch_detector_beats_historyless_zscore(self):
        dataset = load_dataset("ipums", 20_000)
        protocol = make_protocol("oue", 0.5, dataset.domain_size)
        targets = tail_items(dataset.frequencies, EPOCH_TARGET_COUNT)
        attack = MGAAttack(domain_size=dataset.domain_size, targets=targets)
        with_history, without_history = [], []
        for seed in range(self.TRIALS):
            gen = np.random.default_rng(100 + seed)
            history = simulate_history(dataset, protocol, epochs=4, drift=0.05, rng=gen)
            current = history.final_dataset
            items = counts_to_items(current.counts, gen)
            genuine = protocol.perturb(items, gen)
            m = malicious_count(current.num_users, self.BETA)
            reports = protocol.concat_reports(genuine, attack.craft(protocol, m, gen))
            raw = protocol.aggregate(reports)
            flagged = ZScoreOutlierDetector().fit(history.estimates).detect(raw)
            with_history.append(detection_f1(flagged, targets))
            # History-less baseline: the same z>3 rule, but the only
            # distribution available is the current epoch's cross-item one.
            spread = max(float(raw.std(ddof=1)), 1e-6)
            cross_item = (raw - raw.mean()) / spread
            baseline = np.flatnonzero(cross_item > 3.0)
            without_history.append(detection_f1(baseline, targets))
        gap = float(np.mean(with_history)) - float(np.mean(without_history))
        assert gap > 0.1, (
            f"cross-epoch F1 {np.mean(with_history):.2f} must clearly beat the "
            f"history-less baseline {np.mean(without_history):.2f}"
        )
        assert np.mean(with_history) >= 0.7


class TestSimulateHistoryRngRegression:
    """The drift stream is dedicated: horizons never reshuffle epochs."""

    def _dataset(self):
        return load_dataset("ipums", 2_000)

    def test_epoch_prefix_invariant_to_horizon(self):
        dataset = self._dataset()
        protocol = make_protocol("grr", 1.0, dataset.domain_size)
        short = simulate_history(
            dataset, protocol, epochs=5, drift=0.1, rng=np.random.default_rng(42)
        )
        long = simulate_history(
            dataset, protocol, epochs=8, drift=0.1, rng=np.random.default_rng(42)
        )
        np.testing.assert_array_equal(short.estimates, long.estimates[:5])

    def test_parent_generator_draws_invariant_to_epoch_count(self):
        dataset = self._dataset()
        protocol = make_protocol("grr", 1.0, dataset.domain_size)
        g_short = np.random.default_rng(7)
        simulate_history(dataset, protocol, epochs=3, drift=0.1, rng=g_short)
        after_short = g_short.random(4)
        g_long = np.random.default_rng(7)
        simulate_history(dataset, protocol, epochs=6, drift=0.1, rng=g_long)
        after_long = g_long.random(4)
        np.testing.assert_array_equal(after_short, after_long)
        # Spawning children never consumes the parent's bit stream at all.
        np.testing.assert_array_equal(after_short, np.random.default_rng(7).random(4))

    def test_first_epoch_invariant_to_drift_setting(self):
        # Drift draws live on their own child stream, so switching drift
        # on cannot perturb the epoch-0 collection randomness.
        dataset = self._dataset()
        protocol = make_protocol("oue", 1.0, dataset.domain_size)
        still = simulate_history(
            dataset, protocol, epochs=3, drift=0.0, rng=np.random.default_rng(5)
        )
        drifting = simulate_history(
            dataset, protocol, epochs=3, drift=0.2, rng=np.random.default_rng(5)
        )
        np.testing.assert_array_equal(still.estimates[0], drifting.estimates[0])
        assert not np.array_equal(still.estimates[1], drifting.estimates[1])
