"""Tests for the protocol base class: parameters, estimator, validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, ProtocolError
from repro.protocols import GRR, OLH, OUE, ProtocolParams, counts_to_items
from repro.protocols.base import (
    FrequencyOracle,
    validate_domain_size,
    validate_epsilon,
)


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_epsilon(self, bad):
        with pytest.raises(InvalidParameterError):
            validate_epsilon(bad)

    def test_good_epsilon(self):
        assert validate_epsilon(0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, 1, -3])
    def test_bad_domain_size(self, bad):
        with pytest.raises(InvalidParameterError):
            validate_domain_size(bad)

    def test_good_domain_size(self):
        assert validate_domain_size(2) == 2


class TestProtocolParams:
    def test_d_alias(self):
        params = ProtocolParams(name="x", epsilon=0.5, domain_size=10, p=0.6, q=0.1)
        assert params.d == 10

    def test_expected_malicious_sum_formula(self):
        params = ProtocolParams(name="x", epsilon=0.5, domain_size=10, p=0.6, q=0.1)
        expected = (1 - 0.1 * 10) / (0.6 - 0.1)
        assert params.expected_malicious_sum() == pytest.approx(expected)

    def test_grr_sum_is_one_like(self):
        # GRR: support sum per report is exactly 1, so the learned constant
        # equals (1 - qd)/(p - q); numerically this is 1 + q/(p-q)*(stuff)
        # and stays close to 1 because p + (d-1)q = 1 for GRR.
        grr = GRR(epsilon=0.5, domain_size=102)
        # p + (d-1)q = 1 identity for GRR makes the constant exactly 1.
        assert grr.p + (grr.domain_size - 1) * grr.q == pytest.approx(1.0)
        assert grr.expected_malicious_sum() == pytest.approx(1.0)

    def test_oue_sum_is_negative(self):
        # OUE's q is large, so the learned sum is strongly negative — a
        # documented property the projection absorbs.
        oue = OUE(epsilon=0.5, domain_size=102)
        assert oue.expected_malicious_sum() < -100

    def test_params_roundtrip(self):
        olh = OLH(epsilon=0.5, domain_size=20)
        params = olh.params
        assert params.name == "olh"
        assert params.p == olh.p
        assert params.q == olh.q
        assert params.domain_size == 20


class TestEstimateCounts:
    def test_unbiased_debias_identity(self, grr):
        # Feeding expected support counts back recovers the true counts.
        n = 1000
        true_counts = np.zeros(grr.domain_size)
        true_counts[3] = n
        expected_support = true_counts * grr.p + (n - true_counts) * grr.q
        estimated = grr.estimate_counts(expected_support, n)
        np.testing.assert_allclose(estimated, true_counts, atol=1e-9)

    def test_frequencies_scale(self, grr):
        n = 500
        support = np.full(grr.domain_size, n * grr.q)
        freqs = grr.estimate_frequencies(support, n)
        np.testing.assert_allclose(freqs, 0.0, atol=1e-12)

    def test_wrong_shape_raises(self, grr):
        with pytest.raises(ProtocolError):
            grr.estimate_counts(np.zeros(grr.domain_size + 1), 10)

    def test_nonpositive_n_raises(self, grr):
        with pytest.raises(ProtocolError):
            grr.estimate_counts(np.zeros(grr.domain_size), 0)


class TestProbabilities:
    def test_grr_probabilities(self):
        eps, d = 0.7, 12
        grr = GRR(epsilon=eps, domain_size=d)
        e = math.exp(eps)
        assert grr.p == pytest.approx(e / (d - 1 + e))
        assert grr.q == pytest.approx(1 / (d - 1 + e))
        assert grr.p / grr.q == pytest.approx(e)

    def test_oue_probabilities(self):
        eps = 0.7
        oue = OUE(epsilon=eps, domain_size=12)
        assert oue.p == 0.5
        assert oue.q == pytest.approx(1 / (math.exp(eps) + 1))

    def test_olh_probabilities_and_g(self):
        eps = 0.5
        olh = OLH(epsilon=eps, domain_size=12)
        e = math.exp(eps)
        assert olh.g == math.ceil(e + 1)
        assert olh.p == pytest.approx(e / (e + olh.g - 1))
        assert olh.q == pytest.approx(1 / olh.g)

    def test_olh_custom_g(self):
        olh = OLH(epsilon=0.5, domain_size=12, g=8)
        assert olh.g == 8
        assert olh.q == pytest.approx(1 / 8)

    def test_olh_invalid_g(self):
        with pytest.raises(InvalidParameterError):
            OLH(epsilon=0.5, domain_size=12, g=1)

    def test_p_greater_than_q_everywhere(self, protocol):
        assert protocol.p > protocol.q


class TestCountsToItems:
    def test_expansion(self):
        counts = np.array([2, 0, 3])
        items = counts_to_items(counts, shuffle=False)
        np.testing.assert_array_equal(items, [0, 0, 2, 2, 2])

    def test_shuffle_preserves_histogram(self):
        counts = np.array([5, 1, 4, 0, 7])
        items = counts_to_items(counts, rng=3)
        np.testing.assert_array_equal(np.bincount(items, minlength=5), counts)

    def test_deterministic_with_seed(self):
        counts = np.array([3, 3, 3])
        a = counts_to_items(counts, rng=1)
        b = counts_to_items(counts, rng=1)
        np.testing.assert_array_equal(a, b)


class TestTargetSupportFallback:
    """The base-class per-item fallback scans reports chunk-wise."""

    @staticmethod
    def _fallback_grr():
        class _FallbackGRR(GRR):
            """GRR pinned to the base-class target_support_counts fallback,
            with tiny slices and recorded slice boundaries."""

            SCAN_CHUNK_REPORTS = 7
            target_support_counts = FrequencyOracle.target_support_counts

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.slices: list[tuple[int, int]] = []

            def slice_reports(self, reports, start, stop):
                """Record the slice then delegate."""
                self.slices.append((start, stop))
                return super().slice_reports(reports, start, stop)

        return _FallbackGRR(epsilon=0.5, domain_size=16)

    def test_fallback_matches_vectorized_override_exactly(self, grr, rng):
        proto = self._fallback_grr()
        reports = proto.perturb(rng.integers(0, 16, size=101), rng)
        targets = [0, 3, 9]
        np.testing.assert_array_equal(
            proto.target_support_counts(reports, targets),
            grr.target_support_counts(reports, targets),
        )
        # 101 reports at 7 per slice: the batch was walked in 15 slices.
        assert len(proto.slices) == 15
        assert proto.slices[0] == (0, 7) and proto.slices[-1] == (98, 101)

    def test_fallback_empty_inputs(self):
        proto = self._fallback_grr()
        reports = proto.perturb(np.arange(4, dtype=np.int64))
        assert proto.target_support_counts(reports, []).shape == (4,)
        empty = proto.perturb(np.empty(0, dtype=np.int64))
        assert proto.target_support_counts(empty, [1]).shape == (0,)
        assert proto.slices == []  # degenerate inputs never slice


class TestItemValidation:
    def test_out_of_range_item(self, grr):
        with pytest.raises(ProtocolError):
            grr.perturb(np.array([grr.domain_size]))

    def test_negative_item(self, grr):
        with pytest.raises(ProtocolError):
            grr.perturb(np.array([-1]))

    def test_2d_items(self, grr):
        with pytest.raises(ProtocolError):
            grr.perturb(np.zeros((2, 2), dtype=int))

    def test_empty_items_ok(self, protocol):
        reports = protocol.perturb(np.empty(0, dtype=np.int64))
        assert protocol.num_reports(reports) == 0

    def test_true_counts_wrong_shape(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.sample_genuine_counts(np.zeros(protocol.domain_size + 2, dtype=int))

    def test_true_counts_negative(self, protocol):
        counts = np.zeros(protocol.domain_size, dtype=int)
        counts[0] = -1
        with pytest.raises(ProtocolError):
            protocol.sample_genuine_counts(counts)
