"""Runner-level tests: suppressions, baseline, rendering, CLI, live tree."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main
from repro.exceptions import InvalidParameterError
from repro.lint import (
    Finding,
    lint_paths,
    load_baseline,
)
from repro.lint.runner import PARSE_RULE_ID, discover_files

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"
SRC_TREE = REPO_ROOT / "src" / "repro"


class TestLiveTree:
    def test_src_repro_is_clean_modulo_baseline(self, monkeypatch):
        """The acceptance gate: ``repro lint src/repro`` exits 0."""
        monkeypatch.chdir(REPO_ROOT)
        report = lint_paths([SRC_TREE], baseline_path=BASELINE)
        assert report.ok, report.render_text()
        assert report.exit_code == 0
        assert report.files_scanned > 50

    def test_baseline_entries_all_used_and_justified(self, monkeypatch):
        """Every checked-in baseline entry matches a real finding (none
        stale) and carries a justification (enforced at load)."""
        monkeypatch.chdir(REPO_ROOT)
        entries = load_baseline(BASELINE)
        assert entries, "expected the cache.py time.time() bookkeeping entries"
        assert all(entry.justification for entry in entries)
        report = lint_paths([SRC_TREE], baseline_path=BASELINE)
        assert report.stale_baseline == []
        assert report.baselined == sum(entry.count for entry in entries)

    def test_without_baseline_only_known_findings(self, monkeypatch):
        """Raw scan shows exactly the baselined findings: the cache.py
        wall-clock bookkeeping and the snapshot store's created_at stamp
        (REP002) plus the shard claim hand-off (REP202, released in
        _complete/abandon_pending)."""
        monkeypatch.chdir(REPO_ROOT)
        report = lint_paths([SRC_TREE], use_baseline=False)
        assert all(f.rule in ("REP002", "REP202") for f in report.findings)
        rep002 = [f for f in report.findings if f.rule == "REP002"]
        rep202 = [f for f in report.findings if f.rule == "REP202"]
        assert all(
            f.path.endswith(("sim/cache.py", "serve/snapshots.py")) for f in rep002
        )
        assert any(f.path.endswith("serve/snapshots.py") for f in rep002)
        assert [f.path.endswith("sim/shard.py") for f in rep202] == [True]


class TestSuppressions:
    def test_inline_ignore_counts(self):
        report = lint_paths(
            [FIXTURES / "suppressed.py"], use_baseline=False, run_contracts=False
        )
        # Two suppressed (exact id + blanket), one reported (wrong id named).
        assert report.suppressed == 2
        assert [f.rule for f in report.findings] == ["REP002"]

    def test_skip_file(self):
        report = lint_paths(
            [FIXTURES / "skipped.py"], use_baseline=False, run_contracts=False
        )
        assert report.findings == []
        assert report.files_scanned == 1


class TestBaseline:
    def _module(self, tmp_path: pathlib.Path) -> pathlib.Path:
        module = tmp_path / "clockuser.py"
        module.write_text("import time\n\nSTAMP = time.time()\n")
        return module

    def _baseline(self, tmp_path: pathlib.Path, entries) -> pathlib.Path:
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"entries": entries}))
        return path

    def test_baseline_absorbs_matching_finding(self, tmp_path):
        module = self._module(tmp_path)
        baseline = self._baseline(
            tmp_path,
            [
                {
                    "rule": "REP002",
                    "path": module.as_posix(),
                    "code": "STAMP = time.time()",
                    "justification": "test fixture",
                }
            ],
        )
        report = lint_paths(
            [module], baseline_path=baseline, run_contracts=False
        )
        assert report.ok and report.baselined == 1

    def test_edited_line_resurfaces_finding(self, tmp_path):
        """Matching is on source text: changing the flagged line re-reports."""
        module = self._module(tmp_path)
        baseline = self._baseline(
            tmp_path,
            [
                {
                    "rule": "REP002",
                    "path": module.as_posix(),
                    "code": "OLD = time.time()",
                    "justification": "stale text",
                }
            ],
        )
        report = lint_paths([module], baseline_path=baseline, run_contracts=False)
        assert [f.rule for f in report.findings] == ["REP002"]
        assert report.stale_baseline and report.exit_code == 1

    def test_count_limits_absorption(self, tmp_path):
        module = tmp_path / "clockuser.py"
        module.write_text(
            "import time\n\nA = time.time()\nB = time.time()\n"
        )
        baseline = self._baseline(
            tmp_path,
            [
                {
                    "rule": "REP002",
                    "path": module.as_posix(),
                    "code": "A = time.time()",
                    "justification": "covers exactly one occurrence",
                }
            ],
        )
        report = lint_paths([module], baseline_path=baseline, run_contracts=False)
        assert len(report.findings) == 1 and report.baselined == 1

    def test_justification_required(self, tmp_path):
        baseline = self._baseline(
            tmp_path,
            [{"rule": "REP002", "path": "x.py", "code": "y", "justification": ""}],
        )
        with pytest.raises(InvalidParameterError, match="justification"):
            load_baseline(baseline)

    def test_duplicate_entries_rejected(self, tmp_path):
        entry = {
            "rule": "REP002",
            "path": "x.py",
            "code": "y = time.time()",
            "justification": "why",
        }
        baseline = self._baseline(tmp_path, [entry, dict(entry)])
        with pytest.raises(InvalidParameterError, match="duplicates"):
            load_baseline(baseline)

    def test_missing_explicit_baseline_raises(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="not found"):
            lint_paths(
                [FIXTURES / "skipped.py"],
                baseline_path=tmp_path / "nope.json",
                run_contracts=False,
            )


class TestRunnerMechanics:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="does not exist"):
            discover_files([tmp_path / "ghost"])

    def test_discovery_is_sorted_and_deduplicated(self):
        files = discover_files([FIXTURES, FIXTURES / "rep001.py"])
        assert files == sorted(set(files))

    def test_unparseable_file_is_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = lint_paths([bad], use_baseline=False, run_contracts=False)
        assert [f.rule for f in report.findings] == [PARSE_RULE_ID]
        assert report.exit_code == 1

    def test_github_rendering_escapes_and_anchors(self):
        finding = Finding(
            path="src/x.py", line=3, col=1, rule="REP001", message="50% bad\nline"
        )
        rendered = finding.render_github()
        assert rendered.startswith("::error file=src/x.py,line=3,col=1,")
        assert "%25" in rendered and "%0A" in rendered and "\n" not in rendered

    def test_text_rendering(self):
        finding = Finding(path="a.py", line=2, col=0, rule="REP101", message="m")
        assert finding.render_text() == "a.py:2:0: REP101 m"


class TestCli:
    def test_lint_fixture_exits_nonzero(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main(
            ["lint", str(FIXTURES / "rep002.py"), "--no-baseline", "--no-contracts"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REP002" in out and "rep002.py" in out

    def test_lint_default_tree_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_github_format(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main(
            [
                "lint",
                str(FIXTURES / "rep001.py"),
                "--format",
                "github",
                "--no-baseline",
                "--no-contracts",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1 and "::error file=" in out

    def test_lint_select_and_list_rules(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "unseeded-randomness" in out
        code = main(
            [
                "lint",
                str(FIXTURES / "rep002.py"),
                "--select",
                "REP001",
                "--no-baseline",
                "--no-contracts",
            ]
        )
        assert code == 0  # REP002 findings exist, but only REP001 selected

    def test_lint_unknown_rule_is_usage_error(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main(["lint", str(FIXTURES / "rep001.py"), "--select", "REP999"])
        assert code == 2
        assert "unknown lint rule" in capsys.readouterr().err
