"""Tests for the k-means defense and LDPRecover-KM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import InputPoisoningAttack, MGAAttack
from repro.core.kmeans import KMeansDefense, kmeans, recover_with_kmeans
from repro.core.projection import is_probability_vector
from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR
from repro.sim import mse, run_trial

D = 16
DATASET = zipf_dataset(domain_size=D, num_users=15_000, exponent=1.0, rng=4)


class TestKMeans:
    def test_two_well_separated_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(30, 3))
        b = rng.normal(5.0, 0.1, size=(30, 3))
        points = np.vstack([a, b])
        labels, centroids = kmeans(points, k=2, rng=1)
        # Members of the same ground-truth cluster share a label.
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]

    def test_centroid_positions(self):
        points = np.array([[0.0], [0.2], [10.0], [10.2]])
        labels, centroids = kmeans(points, k=2, rng=0)
        assert sorted(np.round(centroids.ravel(), 1)) == [0.1, 10.1]

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(40, 4))
        l1, c1 = kmeans(points, k=2, rng=9)
        l2, c2 = kmeans(points, k=2, rng=9)
        np.testing.assert_array_equal(l1, l2)
        np.testing.assert_allclose(c1, c2)

    def test_too_few_points(self):
        with pytest.raises(InvalidParameterError):
            kmeans(np.zeros((1, 2)), k=2)

    def test_identical_points(self):
        points = np.ones((10, 2))
        labels, centroids = kmeans(points, k=2, rng=0)
        assert labels.shape == (10,)


class TestKMeansDefense:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            KMeansDefense(sample_rate=0.0)
        with pytest.raises(InvalidParameterError):
            KMeansDefense(sample_rate=1.5)
        with pytest.raises(InvalidParameterError):
            KMeansDefense(num_subsets=1)

    def test_run_produces_probabilityish_output(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = InputPoisoningAttack(MGAAttack(domain_size=D, r=3, rng=0))
        trial = run_trial(DATASET, proto, attack, beta=0.05, mode="sampled", rng=1)
        defense = KMeansDefense(sample_rate=0.3, num_subsets=8)
        result = defense.run(proto, trial.reports, rng=2)
        assert result.frequencies.shape == (D,)
        assert result.labels.shape == (8,)
        assert result.genuine_cluster in (0, 1)
        assert result.eta_estimate >= 0

    def test_genuine_cluster_is_majority(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = InputPoisoningAttack(MGAAttack(domain_size=D, r=3, rng=0))
        trial = run_trial(DATASET, proto, attack, beta=0.05, mode="sampled", rng=1)
        defense = KMeansDefense(sample_rate=0.2, num_subsets=10)
        result = defense.run(proto, trial.reports, rng=3)
        counts = np.bincount(result.labels, minlength=2)
        assert counts[result.genuine_cluster] == counts.max()


class TestRecoverWithKMeans:
    def test_returns_probability_vector(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = InputPoisoningAttack(MGAAttack(domain_size=D, r=3, rng=0))
        trial = run_trial(DATASET, proto, attack, beta=0.05, mode="sampled", rng=1)
        recovery, km = recover_with_kmeans(proto, trial.reports, rng=2)
        assert is_probability_vector(recovery.frequencies, atol=1e-8)

    def test_improves_over_poisoned_under_ipa(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = InputPoisoningAttack(MGAAttack(domain_size=D, r=3, rng=0))
        before, after = [], []
        for seed in range(4):
            trial = run_trial(DATASET, proto, attack, beta=0.1, mode="sampled", rng=seed)
            recovery, _ = recover_with_kmeans(proto, trial.reports, rng=seed)
            before.append(mse(trial.true_frequencies, trial.poisoned_frequencies))
            after.append(mse(trial.true_frequencies, recovery.frequencies))
        assert np.mean(after) < np.mean(before)

    def test_eta_override(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = InputPoisoningAttack(MGAAttack(domain_size=D, r=3, rng=0))
        trial = run_trial(DATASET, proto, attack, beta=0.05, mode="sampled", rng=1)
        recovery, _ = recover_with_kmeans(proto, trial.reports, eta=0.07, rng=2)
        assert recovery.eta == pytest.approx(0.07)

    def test_external_scenario_recorded(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = InputPoisoningAttack(MGAAttack(domain_size=D, r=3, rng=0))
        trial = run_trial(DATASET, proto, attack, beta=0.05, mode="sampled", rng=1)
        recovery, km = recover_with_kmeans(proto, trial.reports, rng=2)
        if km.malicious_frequencies is not None:
            assert recovery.scenario == "external"
