"""Meta-tests: documentation coverage and API hygiene.

A production library promises doc comments on every public item and a
coherent export surface; these tests enforce both mechanically.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports documented at their definition site
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocstrings:
    def test_package_docstring(self):
        assert repro.__doc__ and "LDPRecover" in repro.__doc__

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_members_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = [
            name for name, obj in _public_members(module) if not inspect.getdoc(obj)
        ]
        assert not undocumented, f"{module_name}: undocumented {undocumented}"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_methods_documented(self, module_name):
        module = importlib.import_module(module_name)
        missing: list[str] = []
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not inspect.getdoc(
                    getattr(cls, meth_name)
                ):
                    missing.append(f"{cls_name}.{meth_name}")
        assert not missing, f"{module_name}: undocumented methods {missing}"


class TestExports:
    def test_all_lists_resolve(self):
        for module_name in MODULES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_top_level_all_sorted_groups(self):
        # Every name in repro.__all__ must be importable from repro.
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_no_private_leaks_in_all(self):
        for module_name in MODULES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert not name.startswith("_"), f"{module_name} exports private {name}"


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro import exceptions

        for name, obj in vars(exceptions).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not exceptions.ReproError:
                    if obj.__module__ == "repro.exceptions":
                        assert issubclass(obj, exceptions.ReproError), name

    def test_invalid_parameter_is_value_error(self):
        from repro.exceptions import InvalidParameterError

        assert issubclass(InvalidParameterError, ValueError)

    def test_catchall_works(self):
        from repro.exceptions import ReproError
        from repro.protocols import GRR

        with pytest.raises(ReproError):
            GRR(epsilon=-1, domain_size=10)
