"""Meta-tests: documentation coverage and API hygiene.

A production library promises doc comments on every public item and a
coherent export surface; these tests enforce both mechanically.
"""

from __future__ import annotations

import importlib
import inspect
import os
import pathlib
import pkgutil
import re
import subprocess
import sys

import pytest

import repro
import repro.sim

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports documented at their definition site
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocstrings:
    def test_package_docstring(self):
        assert repro.__doc__ and "LDPRecover" in repro.__doc__

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_members_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = [
            name for name, obj in _public_members(module) if not inspect.getdoc(obj)
        ]
        assert not undocumented, f"{module_name}: undocumented {undocumented}"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_methods_documented(self, module_name):
        module = importlib.import_module(module_name)
        missing: list[str] = []
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not inspect.getdoc(
                    getattr(cls, meth_name)
                ):
                    missing.append(f"{cls_name}.{meth_name}")
        assert not missing, f"{module_name}: undocumented methods {missing}"


SIM_MODULES = [name for name in MODULES if name.startswith("repro.sim")]


class TestSimApiDocs:
    """The public sim API (the layer users script against) is held to a
    stricter bar: every callable documented, every parameter mentioned —
    notably the engine/cache knobs ``workers``, ``chunk_users`` and
    ``cache`` added by recent PRs."""

    def test_sim_exports_have_docstrings(self):
        undocumented = [
            name
            for name in repro.sim.__all__
            if callable(getattr(repro.sim, name))
            and not (inspect.getdoc(getattr(repro.sim, name)) or "").strip()
        ]
        assert not undocumented, f"repro.sim exports lack docstrings: {undocumented}"

    @pytest.mark.parametrize("module_name", SIM_MODULES)
    def test_public_function_parameters_documented(self, module_name):
        module = importlib.import_module(module_name)
        missing: list[str] = []
        for fn_name, fn in _public_members(module):
            if not inspect.isfunction(fn):
                continue
            doc = inspect.getdoc(fn) or ""
            for param in inspect.signature(fn).parameters:
                if param in ("self", "cls"):
                    continue
                if not re.search(rf"\b{re.escape(param)}\b", doc):
                    missing.append(f"{fn_name}({param})")
        assert not missing, f"{module_name}: parameters undocumented: {missing}"


class TestExports:
    def test_all_lists_resolve(self):
        for module_name in MODULES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_top_level_all_sorted_groups(self):
        # Every name in repro.__all__ must be importable from repro.
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_no_private_leaks_in_all(self):
        for module_name in MODULES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert not name.startswith("_"), f"{module_name} exports private {name}"


class TestDocsSkeleton:
    """The rendered documentation under docs/ stays in sync with the code."""

    EXHIBITS = REPO_ROOT / "docs" / "exhibits.md"

    def test_exhibits_md_names_every_exhibit(self):
        text = self.EXHIBITS.read_text(encoding="utf-8")
        for exhibit in [f"Figure {i}" for i in range(3, 11)] + ["Table I"]:
            assert exhibit in text, f"docs/exhibits.md misses {exhibit}"

    def test_exhibits_md_names_every_generator_function(self):
        text = self.EXHIBITS.read_text(encoding="utf-8")
        from repro.sim import figures

        generators = [
            name
            for name, obj in vars(figures).items()
            if inspect.isfunction(obj) and name.endswith("_rows")
        ]
        assert generators, "no generator functions found"
        for name in generators:
            assert name in text, f"docs/exhibits.md misses {name}"

    def test_exhibits_md_names_every_cli_figure(self):
        text = self.EXHIBITS.read_text(encoding="utf-8")
        from repro.sim.shard import SweepConfig

        for figure in SweepConfig.exhibit_names():
            assert f"--figure {figure}" in text or f"--exhibit {figure}" in text, (
                f"docs/exhibits.md misses the CLI invocation for {figure}"
            )

    def test_exhibits_md_names_every_scenario_generator(self):
        text = self.EXHIBITS.read_text(encoding="utf-8")
        from repro.sim.scenarios import SCENARIOS

        for name, exhibit in SCENARIOS.items():
            assert exhibit.rows.__name__ in text, (
                f"docs/exhibits.md misses the generator of scenario {name!r}"
            )

    def test_api_pages_cover_required_packages(self):
        api = REPO_ROOT / "docs" / "api"
        for page, module in [
            ("core.rst", "repro.core"),
            ("protocols.rst", "repro.protocols"),
            ("attacks.rst", "repro.attacks"),
            ("sim.rst", "repro.sim.cache"),
            ("sim.rst", "repro.sim.scenarios"),
            ("kv.rst", "repro.kv"),
        ]:
            text = (api / page).read_text(encoding="utf-8")
            assert f".. automodule:: {module}" in text, f"{page} misses {module}"

    def test_every_subpackage_has_an_autodoc_page(self):
        """Each ``repro`` subpackage must own a docs/api page that autodocs
        it (and that page must be reachable from the api toctree), so the
        next subpackage someone adds without docs fails CI instead of
        silently missing from the rendered API reference."""
        api = REPO_ROOT / "docs" / "api"
        toctree = (api / "index.rst").read_text(encoding="utf-8")
        subpackages = [
            name
            for _, name, is_pkg in pkgutil.iter_modules(repro.__path__, prefix="repro.")
            if is_pkg
        ]
        assert subpackages, "no repro subpackages found"
        for module_name in subpackages:
            short = module_name.rsplit(".", 1)[-1]
            page = api / f"{short}.rst"
            assert page.is_file(), f"docs/api/{short}.rst missing for {module_name}"
            text = page.read_text(encoding="utf-8")
            assert f".. automodule:: {module_name}" in text, (
                f"docs/api/{short}.rst does not autodoc {module_name}"
            )
            assert re.search(rf"^\s*{short}\s*$", toctree, re.MULTILINE), (
                f"docs/api/index.rst toctree misses {short}"
            )

    def test_sphinx_build_is_warning_clean(self, tmp_path):
        pytest.importorskip("sphinx")
        pytest.importorskip("myst_parser")
        result = subprocess.run(
            [
                sys.executable, "-m", "sphinx", "-b", "html", "-W", "-q",
                str(REPO_ROOT / "docs"), str(tmp_path / "html"),
            ],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, f"sphinx -W failed:\n{result.stderr}"


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro import exceptions

        for name, obj in vars(exceptions).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not exceptions.ReproError:
                    if obj.__module__ == "repro.exceptions":
                        assert issubclass(obj, exceptions.ReproError), name

    def test_invalid_parameter_is_value_error(self):
        from repro.exceptions import InvalidParameterError

        assert issubclass(InvalidParameterError, ValueError)

    def test_catchall_works(self):
        from repro.exceptions import ReproError
        from repro.protocols import GRR

        with pytest.raises(ReproError):
            GRR(epsilon=-1, domain_size=10)
