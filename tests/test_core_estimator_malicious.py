"""Tests for the genuine frequency estimator and malicious learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import (
    estimator_law,
    estimator_variance,
    genuine_frequency_estimate,
    validate_eta,
)
from repro.core.framework import genuine_frequency_law
from repro.core.malicious import (
    build_malicious_estimate,
    learned_malicious_sum,
    partial_knowledge_malicious_estimate,
    split_domain,
    uniform_malicious_estimate,
)
from repro.exceptions import InvalidParameterError, RecoveryError
from repro.protocols import GRR, OLH, OUE


@pytest.fixture()
def params():
    return GRR(epsilon=0.5, domain_size=10).params


class TestEstimator:
    def test_eq19_formula(self):
        poisoned = np.array([0.5, 0.5])
        malicious = np.array([1.0, 0.0])
        eta = 0.25
        estimate = genuine_frequency_estimate(poisoned, malicious, eta)
        np.testing.assert_allclose(estimate, 1.25 * poisoned - 0.25 * malicious)

    def test_eta_zero_passthrough(self):
        poisoned = np.array([0.3, 0.7])
        np.testing.assert_allclose(
            genuine_frequency_estimate(poisoned, np.zeros(2), 0.0), poisoned
        )

    def test_shape_mismatch(self):
        with pytest.raises(RecoveryError):
            genuine_frequency_estimate(np.zeros(3), np.zeros(2), 0.1)

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), float("inf")])
    def test_validate_eta_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            validate_eta(bad)

    def test_theorem3_variance_equals_lemma2(self, params):
        f, n = 0.2, 5000
        assert estimator_variance(f, params, n) == pytest.approx(
            genuine_frequency_law(f, params, n).variance
        )

    def test_estimator_law_unbiased(self, params):
        law = estimator_law(0.33, params, 1000)
        assert law.mean == pytest.approx(0.33)

    def test_estimator_recovers_exactly_with_truth(self, params):
        # With the exact malicious vector and the true eta, Eq. 19 inverts
        # Eq. 14 perfectly.
        genuine = np.array([0.1, 0.2, 0.3, 0.4] + [0.0] * 6)
        malicious = np.array([0.9, 0.1] + [0.0] * 8)
        n, m = 2000, 400
        poisoned = (n * genuine + m * malicious) / (n + m)
        estimate = genuine_frequency_estimate(poisoned, malicious, eta=m / n)
        np.testing.assert_allclose(estimate, genuine, atol=1e-12)


class TestLearnedSum:
    def test_eq21_value(self, params):
        expected = (1 - params.q * params.domain_size) / (params.p - params.q)
        assert learned_malicious_sum(params) == pytest.approx(expected)

    def test_grr_value_is_one(self):
        # GRR identity p + (d-1)q = 1 makes the learned sum exactly 1.
        params = GRR(epsilon=0.7, domain_size=50).params
        assert learned_malicious_sum(params) == pytest.approx(1.0)

    def test_oue_value_negative(self):
        params = OUE(epsilon=0.5, domain_size=102).params
        assert learned_malicious_sum(params) < 0

    def test_matches_empirical_single_item_crafting(self):
        # Crafted single-item GRR reports: aggregated malicious frequencies
        # sum to the learned constant in expectation.
        proto = GRR(epsilon=0.5, domain_size=20)
        rng = np.random.default_rng(0)
        m = 5000
        items = rng.integers(0, 20, size=m)
        crafted = proto.craft_supporting(items)
        total = float(proto.aggregate(crafted).sum())
        assert total == pytest.approx(learned_malicious_sum(proto.params), abs=1e-9)

    def test_olh_empirical_sum_deviates_from_eq21(self):
        # Known model gap (documented in DESIGN.md/EXPERIMENTS.md): Eq. 21
        # assumes each crafted report supports exactly one item.  An OLH
        # report also supports ~(d-1)/g collision items, so the *actual*
        # expected sum is (1 - 1/g)/(p - q), not the Eq. 21 constant.
        # LDPRecover still applies Eq. 21 (the projection absorbs the
        # uniform shift); this test pins the true value so the gap is
        # intentional, not a bug.
        proto = OLH(epsilon=0.5, domain_size=30)
        rng = np.random.default_rng(1)
        totals = []
        for seed in range(50):
            items = rng.integers(0, 30, size=2000)
            crafted = proto.craft_supporting(items, seed)
            totals.append(float(proto.aggregate(crafted).sum()))
        true_expected = (1.0 - 1.0 / proto.g) / (proto.p - proto.q)
        assert np.mean(totals) == pytest.approx(true_expected, abs=0.5)
        assert abs(np.mean(totals) - learned_malicious_sum(proto.params)) > 10


class TestSplitDomain:
    def test_partition(self):
        poisoned = np.array([0.5, -0.1, 0.0, 0.2])
        d0, d1 = split_domain(poisoned)
        np.testing.assert_array_equal(d0, [False, True, True, False])
        np.testing.assert_array_equal(d1, ~d0)

    def test_all_positive(self):
        d0, d1 = split_domain(np.array([0.1, 0.9]))
        assert not d0.any()
        assert d1.all()


class TestUniformEstimate:
    def test_eq26_spread(self, params):
        poisoned = np.zeros(params.domain_size)
        poisoned[:4] = 0.25
        estimate = uniform_malicious_estimate(poisoned, params)
        total = learned_malicious_sum(params)
        np.testing.assert_allclose(estimate[:4], total / 4)
        np.testing.assert_allclose(estimate[4:], 0.0)

    def test_sum_matches_learned(self, params):
        poisoned = np.full(params.domain_size, 0.1)
        estimate = uniform_malicious_estimate(poisoned, params)
        assert estimate.sum() == pytest.approx(learned_malicious_sum(params))

    def test_degenerate_all_nonpositive(self, params):
        poisoned = np.full(params.domain_size, -0.1)
        estimate = uniform_malicious_estimate(poisoned, params)
        assert estimate.sum() == pytest.approx(learned_malicious_sum(params))

    def test_wrong_shape(self, params):
        with pytest.raises(RecoveryError):
            uniform_malicious_estimate(np.zeros(params.domain_size + 1), params)


class TestPartialKnowledgeEstimate:
    def test_eq30_values(self, params):
        targets = np.array([0, 1])
        estimate = partial_knowledge_malicious_estimate(params, targets)
        d, p, q = params.domain_size, params.p, params.q
        non_target_each = -q * d / ((d - 2) * (p - q))
        np.testing.assert_allclose(estimate[2:], non_target_each)
        # Target share: (learned_sum + qd/(p-q)) / |T| = 1/(|T|(p-q)).
        np.testing.assert_allclose(estimate[:2], 1.0 / (2 * (p - q)))

    def test_sum_matches_learned(self, params):
        estimate = partial_knowledge_malicious_estimate(params, np.array([3, 7]))
        assert estimate.sum() == pytest.approx(learned_malicious_sum(params))

    def test_duplicates_collapsed(self, params):
        a = partial_knowledge_malicious_estimate(params, np.array([3, 3, 7]))
        b = partial_knowledge_malicious_estimate(params, np.array([3, 7]))
        np.testing.assert_allclose(a, b)

    def test_empty_targets_rejected(self, params):
        with pytest.raises(RecoveryError):
            partial_knowledge_malicious_estimate(params, np.array([], dtype=int))

    def test_out_of_range_rejected(self, params):
        with pytest.raises(RecoveryError):
            partial_knowledge_malicious_estimate(params, np.array([params.domain_size]))

    def test_full_domain_rejected(self, params):
        with pytest.raises(RecoveryError):
            partial_knowledge_malicious_estimate(
                params, np.arange(params.domain_size)
            )

    def test_closer_to_true_mga_than_uniform(self):
        # Fig. 7's mechanism: for MGA, the partial-knowledge estimate is
        # much closer to the true malicious frequencies than the uniform
        # split.
        proto = GRR(epsilon=0.5, domain_size=30)
        targets = np.array([2, 11, 25])
        rng = np.random.default_rng(5)
        items = rng.choice(targets, size=20_000)
        true_malicious = proto.aggregate(proto.craft_supporting(items))
        poisoned_proxy = np.full(30, 0.05)
        uniform = uniform_malicious_estimate(poisoned_proxy, proto.params)
        partial = partial_knowledge_malicious_estimate(proto.params, targets)
        err_uniform = float(np.mean((uniform - true_malicious) ** 2))
        err_partial = float(np.mean((partial - true_malicious) ** 2))
        assert err_partial < err_uniform / 10


class TestBuildMaliciousEstimate:
    def test_dispatch_non_knowledge(self, params):
        poisoned = np.full(params.domain_size, 0.1)
        est = build_malicious_estimate(poisoned, params)
        assert est.scenario == "non-knowledge"

    def test_dispatch_partial(self, params):
        poisoned = np.full(params.domain_size, 0.1)
        est = build_malicious_estimate(poisoned, params, target_items=np.array([1]))
        assert est.scenario == "partial-knowledge"

    def test_dispatch_external_takes_precedence(self, params):
        poisoned = np.full(params.domain_size, 0.1)
        external = np.full(params.domain_size, 0.2)
        est = build_malicious_estimate(
            poisoned, params, target_items=np.array([1]), external_estimate=external
        )
        assert est.scenario == "external"
        np.testing.assert_allclose(est.frequencies, external)

    def test_external_shape_checked(self, params):
        with pytest.raises(RecoveryError):
            build_malicious_estimate(
                np.full(params.domain_size, 0.1),
                params,
                external_estimate=np.zeros(3),
            )

    def test_total_property(self, params):
        poisoned = np.full(params.domain_size, 0.1)
        est = build_malicious_estimate(poisoned, params)
        assert est.total == pytest.approx(learned_malicious_sum(params))
