"""Cross-module integration scenarios.

Each test is a miniature version of a full deployment story: collect →
poison → recover → evaluate, exercising the public API exactly as the
examples do.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestQuickstartScenario:
    """The README quickstart, verified end to end."""

    def test_quickstart_flow(self):
        data = repro.ipums_like(num_users=20_000)
        protocol = repro.GRR(epsilon=0.5, domain_size=data.domain_size)
        attack = repro.MGAAttack(domain_size=data.domain_size, r=10, rng=1)
        trial = repro.run_trial(data, protocol, attack, beta=0.05, rng=2)
        result = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
        assert repro.mse(trial.true_frequencies, result.frequencies) < repro.mse(
            trial.true_frequencies, trial.poisoned_frequencies
        )


class TestFullMatrixScenario:
    """Every protocol x every attack recovers, via the public API only."""

    @pytest.mark.parametrize("protocol_name", ["grr", "oue", "olh"])
    def test_matrix(self, protocol_name):
        data = repro.fire_like(num_users=15_000)
        protocol = repro.make_protocol(
            protocol_name, epsilon=0.5, domain_size=data.domain_size
        )
        attacks = [
            repro.ManipAttack(domain_size=data.domain_size, rng=0),
            repro.MGAAttack(domain_size=data.domain_size, r=10, rng=0),
            repro.AdaptiveAttack(domain_size=data.domain_size, rng=0),
        ]
        improvements = []
        for attack in attacks:
            before_vals, after_vals = [], []
            for seed in range(3):
                trial = repro.run_trial(data, protocol, attack, beta=0.05, rng=seed)
                result = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
                before_vals.append(
                    repro.mse(trial.true_frequencies, trial.poisoned_frequencies)
                )
                after_vals.append(repro.mse(trial.true_frequencies, result.frequencies))
            improvements.append(np.mean(before_vals) / np.mean(after_vals))
        # Recovery helps against every attack for this protocol.
        assert min(improvements) > 1.0


class TestOutlierDrivenStarScenario:
    """The partial-knowledge loop: history -> outlier detector -> LDPRecover*."""

    def test_detector_feeds_star_recovery(self):
        from repro.sim.outliers import ZScoreOutlierDetector

        data = repro.ipums_like(num_users=30_000)
        protocol = repro.GRR(epsilon=0.5, domain_size=data.domain_size)
        history = np.array(
            [
                repro.run_trial(data, protocol, None, rng=seed).genuine_frequencies
                for seed in range(12)
            ]
        )
        detector = ZScoreOutlierDetector(threshold=4.0).fit(history)
        attack = repro.MGAAttack(domain_size=data.domain_size, r=10, rng=3)
        trial = repro.run_trial(data, protocol, attack, beta=0.05, rng=99)
        detected = detector.detect(trial.poisoned_frequencies)
        assert detected.size > 0
        star = repro.recover_frequencies(
            trial.poisoned_frequencies, protocol, target_items=detected
        )
        plain = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
        # Detector-driven star recovery matches or beats non-knowledge.
        star_fg = repro.frequency_gain(
            trial.genuine_frequencies, star.frequencies, attack.target_items
        )
        plain_fg = repro.frequency_gain(
            trial.genuine_frequencies, plain.frequencies, attack.target_items
        )
        assert abs(star_fg) <= abs(plain_fg) + 0.05


class TestHarmonyScenario:
    """Section VII-A: mean-estimation poisoning recovered via LDPRecover."""

    def test_mean_recovery(self):
        harmony = repro.Harmony(epsilon=1.0)
        rng = np.random.default_rng(0)
        values = rng.beta(2, 5, size=60_000) * 2 - 1  # skewed in [-1, 1]
        true_mean = float(values.mean())

        genuine_reports = harmony.perturb(values, rng)
        m = 6_000
        poison = harmony.craft_poison_reports(m, bit=1)
        combined = np.concatenate([genuine_reports, poison])

        poisoned_mean = harmony.estimate_mean(combined)
        assert poisoned_mean > true_mean + 0.05  # attack visibly inflates

        poisoned_freq = harmony.aggregate_frequencies(combined)
        result = repro.recover_frequencies(
            poisoned_freq, harmony.params, eta=m / values.size
        )
        recovered_mean = harmony.mean_from_frequencies(result.frequencies)
        assert abs(recovered_mean - true_mean) < abs(poisoned_mean - true_mean)


class TestMultiAttackerScenario:
    """Section VII-C: five attackers, one recovery."""

    def test_five_adaptive_attackers(self):
        data = repro.ipums_like(num_users=20_000)
        protocol = repro.OUE(epsilon=0.5, domain_size=data.domain_size)
        attackers = [
            repro.AdaptiveAttack(domain_size=data.domain_size, rng=i) for i in range(5)
        ]
        attack = repro.MultiAttacker(attackers)
        before, after = [], []
        for seed in range(3):
            trial = repro.run_trial(data, protocol, attack, beta=0.1, rng=seed)
            result = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
            before.append(repro.mse(trial.true_frequencies, trial.poisoned_frequencies))
            after.append(repro.mse(trial.true_frequencies, result.frequencies))
        assert np.mean(after) < np.mean(before)


class TestCustomProtocolScenario:
    """A downstream user plugs a custom pure protocol into the pipeline."""

    def test_custom_protocol_via_registry(self):
        from repro.protocols import registry
        from repro.protocols.grr import GRR as BaseGRR

        class QuietGRR(BaseGRR):
            """GRR with a doubled privacy budget, as a stand-in custom oracle."""

            name = "quiet-grr"

            def __init__(self, epsilon, domain_size):
                super().__init__(epsilon * 2, domain_size)

        registry.register_protocol("quiet-grr", QuietGRR)
        try:
            data = repro.zipf_dataset(domain_size=20, num_users=10_000, rng=0)
            protocol = repro.make_protocol("quiet-grr", epsilon=0.5, domain_size=20)
            attack = repro.AdaptiveAttack(domain_size=20, rng=0)
            before, after = [], []
            for seed in range(4):
                # Strong poisoning so the attack bias dominates LDP noise.
                trial = repro.run_trial(data, protocol, attack, beta=0.2, rng=seed)
                result = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
                before.append(
                    repro.mse(trial.true_frequencies, trial.poisoned_frequencies)
                )
                after.append(repro.mse(trial.true_frequencies, result.frequencies))
            assert np.mean(after) < np.mean(before)
        finally:
            registry._FACTORIES.pop("quiet-grr", None)


class TestPublicAPISurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"
