"""Tests for input poisoning (IPA) and multi-attacker composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    AdaptiveAttack,
    InputPoisoningAttack,
    ManipAttack,
    MGAAttack,
    MultiAttacker,
)
from repro.exceptions import AttackError
from repro.protocols import GRR, OUE

D = 25


class TestIPA:
    def test_wraps_item_distribution(self):
        inner = MGAAttack(domain_size=D, targets=[1, 2], rng=0)
        ipa = InputPoisoningAttack(inner)
        proto = GRR(epsilon=0.5, domain_size=D)
        np.testing.assert_array_equal(
            ipa.item_distribution(proto), inner.item_distribution(proto)
        )
        np.testing.assert_array_equal(ipa.target_items, [1, 2])
        assert ipa.targeted is True

    def test_reports_are_perturbed(self):
        # Under IPA with GRR, reports leak off the targets with probability
        # 1 - p (perturbation noise); direct crafting never does.
        proto = GRR(epsilon=0.5, domain_size=D)
        inner = MGAAttack(domain_size=D, targets=[0], rng=0)
        ipa = InputPoisoningAttack(inner)
        reports = ipa.craft(proto, 20_000, rng=1)
        on_target_rate = float(np.mean(reports == 0))
        assert on_target_rate == pytest.approx(proto.p, abs=0.01)

    def test_direct_vs_ipa_strength(self):
        # IPA shifts the aggregate far less than direct crafting (Fig. 8).
        proto = GRR(epsilon=0.5, domain_size=D)
        inner = MGAAttack(domain_size=D, targets=[0], rng=0)
        direct = inner.craft(proto, 10_000, rng=1)
        via_ipa = InputPoisoningAttack(inner).craft(proto, 10_000, rng=1)
        direct_freq = proto.aggregate(direct)[0]
        ipa_freq = proto.aggregate(via_ipa)[0]
        assert direct_freq > ipa_freq * 2

    def test_ipa_oue_vectors(self):
        proto = OUE(epsilon=0.5, domain_size=D)
        inner = MGAAttack(domain_size=D, targets=[3], rng=0)
        reports = InputPoisoningAttack(inner).craft(proto, 100, rng=1)
        assert reports.shape == (100, D)

    def test_describe(self):
        ipa = InputPoisoningAttack(MGAAttack(domain_size=D, r=2, rng=0))
        assert ipa.describe().startswith("ipa(")


class TestMultiAttacker:
    def _attacks(self):
        return [
            AdaptiveAttack(domain_size=D, rng=i) for i in range(3)
        ]

    def test_equal_split(self):
        multi = MultiAttacker(self._attacks())
        np.testing.assert_array_equal(multi.split_users(9), [3, 3, 3])

    def test_split_sums_to_m(self):
        multi = MultiAttacker(self._attacks(), weights=[0.2, 0.5, 0.3])
        for m in (0, 1, 7, 100, 12345):
            assert multi.split_users(m).sum() == m

    def test_weights_validation(self):
        with pytest.raises(AttackError):
            MultiAttacker(self._attacks(), weights=[1.0])
        with pytest.raises(AttackError):
            MultiAttacker(self._attacks(), weights=[-1, 1, 1])
        with pytest.raises(AttackError):
            MultiAttacker([])

    def test_craft_total_reports(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        multi = MultiAttacker(self._attacks())
        reports = multi.craft(proto, 100, rng=0)
        assert proto.num_reports(reports) == 100

    def test_mixture_distribution(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        p1 = np.zeros(D)
        p1[0] = 1.0
        p2 = np.zeros(D)
        p2[1] = 1.0
        multi = MultiAttacker(
            [
                AdaptiveAttack(domain_size=D, probabilities=p1),
                AdaptiveAttack(domain_size=D, probabilities=p2),
            ],
            weights=[0.75, 0.25],
        )
        mix = multi.item_distribution(proto)
        assert mix[0] == pytest.approx(0.75)
        assert mix[1] == pytest.approx(0.25)

    def test_target_union(self):
        multi = MultiAttacker(
            [
                MGAAttack(domain_size=D, targets=[1, 2]),
                MGAAttack(domain_size=D, targets=[2, 3]),
                AdaptiveAttack(domain_size=D, rng=0),
            ]
        )
        np.testing.assert_array_equal(multi.target_items, [1, 2, 3])
        assert multi.targeted is True

    def test_no_targets_when_all_untargeted(self):
        multi = MultiAttacker(self._attacks())
        assert multi.target_items is None
        assert multi.targeted is False

    def test_sample_items_counts(self):
        proto = GRR(epsilon=0.5, domain_size=D)
        multi = MultiAttacker(self._attacks())
        items = multi.sample_items(proto, 99, rng=1)
        assert items.shape == (99,)

    def test_item_distribution_none_when_inner_lacks_one(self):
        proto = GRR(epsilon=0.5, domain_size=D)

        class Opaque(MGAAttack):
            def item_distribution(self, protocol):
                return None

        multi = MultiAttacker([Opaque(domain_size=D, r=2, rng=0)])
        assert multi.item_distribution(proto) is None

    def test_describe_lists_components(self):
        multi = MultiAttacker([ManipAttack(domain_size=D, rng=0)])
        assert multi.describe().startswith("multi[")
