"""Tests for the KKT simplex projection, including hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.projection import (
    is_probability_vector,
    project_onto_simplex_kkt,
    project_onto_simplex_sort,
)
from repro.exceptions import RecoveryError

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=60),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False),
)


class TestKKTProjection:
    def test_already_on_simplex_unchanged(self):
        vec = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_onto_simplex_kkt(vec), vec, atol=1e-12)

    def test_uniform_shift_removed(self):
        # A constant added to a simplex vector projects back to it — the
        # property that makes LDPRecover robust to a misestimated learned
        # sum (DESIGN.md section 3).
        vec = np.array([0.1, 0.2, 0.3, 0.4])
        shifted = vec + 0.7
        np.testing.assert_allclose(project_onto_simplex_kkt(shifted), vec, atol=1e-12)

    def test_negative_entries_zeroed(self):
        result = project_onto_simplex_kkt(np.array([1.5, -0.5, -0.5]))
        np.testing.assert_allclose(result, [1.0, 0.0, 0.0])

    def test_single_element(self):
        np.testing.assert_allclose(project_onto_simplex_kkt(np.array([-3.0])), [1.0])

    def test_all_negative_input(self):
        result = project_onto_simplex_kkt(np.array([-5.0, -1.0, -2.0]))
        assert is_probability_vector(result)
        # Mass concentrates on the least-negative coordinate.
        assert result[1] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(RecoveryError):
            project_onto_simplex_kkt(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(RecoveryError):
            project_onto_simplex_kkt(np.array([0.5, np.nan]))

    def test_2d_rejected(self):
        with pytest.raises(RecoveryError):
            project_onto_simplex_kkt(np.zeros((2, 2)))

    def test_max_iterations_too_small_raises(self):
        with pytest.raises(RecoveryError):
            project_onto_simplex_kkt(np.array([-5.0, -1.0, -2.0]), max_iterations=1)

    def test_default_cap_always_converges(self):
        # d iterations always suffice: each removes >= 1 coordinate.
        vec = -np.arange(50, dtype=np.float64)
        result = project_onto_simplex_kkt(vec)
        assert is_probability_vector(result)


class TestSortProjection:
    def test_matches_kkt_on_examples(self):
        for vec in (
            np.array([0.5, 0.5]),
            np.array([2.0, -1.0, 0.3]),
            np.array([-1.0, -2.0, -3.0]),
            np.linspace(-1, 1, 17),
        ):
            np.testing.assert_allclose(
                project_onto_simplex_sort(vec),
                project_onto_simplex_kkt(vec),
                atol=1e-10,
            )

    def test_empty_rejected(self):
        with pytest.raises(RecoveryError):
            project_onto_simplex_sort(np.array([]))


class TestIsProbabilityVector:
    def test_accepts_simplex(self):
        assert is_probability_vector(np.array([0.4, 0.6]))

    def test_rejects_negative(self):
        assert not is_probability_vector(np.array([-0.1, 1.1]))

    def test_rejects_bad_sum(self):
        assert not is_probability_vector(np.array([0.4, 0.4]))

    def test_tolerance(self):
        assert is_probability_vector(np.array([0.5, 0.5 + 1e-12]))


class TestProjectionProperties:
    """Property-based invariants of the exact simplex projection."""

    @given(finite_vectors)
    @settings(max_examples=200, deadline=None)
    def test_output_is_probability_vector(self, vec):
        result = project_onto_simplex_kkt(vec)
        assert is_probability_vector(result, atol=1e-8)

    @given(finite_vectors)
    @settings(max_examples=200, deadline=None)
    def test_kkt_equals_sort_reference(self, vec):
        kkt = project_onto_simplex_kkt(vec)
        sort = project_onto_simplex_sort(vec)
        np.testing.assert_allclose(kkt, sort, atol=1e-8)

    @given(finite_vectors)
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, vec):
        once = project_onto_simplex_kkt(vec)
        twice = project_onto_simplex_kkt(once)
        np.testing.assert_allclose(once, twice, atol=1e-8)

    @given(finite_vectors)
    @settings(max_examples=100, deadline=None)
    def test_projection_is_closest_point(self, vec):
        # No random simplex perturbation of the output should be closer.
        result = project_onto_simplex_kkt(vec)
        base_dist = float(np.sum((result - vec) ** 2))
        rng = np.random.default_rng(0)
        for _ in range(5):
            other = rng.dirichlet(np.ones(vec.size))
            other_dist = float(np.sum((other - vec) ** 2))
            assert base_dist <= other_dist + 1e-8

    @given(finite_vectors, st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_shift_invariance(self, vec, shift):
        # Projection onto the simplex is invariant to uniform shifts.
        a = project_onto_simplex_kkt(vec)
        b = project_onto_simplex_kkt(vec + shift)
        np.testing.assert_allclose(a, b, atol=1e-8)

    @given(finite_vectors)
    @settings(max_examples=100, deadline=None)
    def test_order_preservation(self, vec):
        # The projection never swaps the order of two coordinates.
        result = project_onto_simplex_kkt(vec)
        idx = np.argsort(vec, kind="stable")
        sorted_result = result[idx]
        assert np.all(np.diff(sorted_result) >= -1e-9)
