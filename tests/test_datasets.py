"""Tests for the dataset container and the IPUMS/Fire surrogates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    FIRE_DOMAIN_SIZE,
    FIRE_NUM_USERS,
    IPUMS_DOMAIN_SIZE,
    IPUMS_NUM_USERS,
    dirichlet_dataset,
    fire_like,
    geometric_dataset,
    ipums_like,
    uniform_dataset,
    zipf_dataset,
)
from repro.exceptions import InvalidParameterError


class TestDataset:
    def test_properties(self):
        data = Dataset(name="toy", counts=np.array([3, 0, 7]))
        assert data.domain_size == 3
        assert data.num_users == 10
        np.testing.assert_allclose(data.frequencies, [0.3, 0.0, 0.7])

    def test_frequencies_sum_to_one(self):
        data = zipf_dataset(domain_size=50, num_users=999, rng=0)
        assert data.frequencies.sum() == pytest.approx(1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            Dataset(name="bad", counts=np.array([1, -1]))

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            Dataset(name="bad", counts=np.array([0, 0]))

    def test_single_bin_rejected(self):
        with pytest.raises(InvalidParameterError):
            Dataset(name="bad", counts=np.array([5]))

    def test_scaled_preserves_total_and_profile(self):
        data = zipf_dataset(domain_size=30, num_users=100_000, rng=1)
        scaled = data.scaled(1_234)
        assert scaled.num_users == 1_234
        assert scaled.domain_size == 30
        # Profile approximately preserved.
        np.testing.assert_allclose(
            scaled.frequencies, data.frequencies, atol=1.0 / 1_234
        )

    def test_scaled_invalid(self):
        data = uniform_dataset(domain_size=4, num_users=100)
        with pytest.raises(InvalidParameterError):
            data.scaled(0)


class TestGenerators:
    def test_zipf_skew(self):
        data = zipf_dataset(domain_size=100, num_users=100_000, exponent=1.2, shuffle=False)
        freqs = data.frequencies
        assert freqs[0] > freqs[50] > freqs[99]

    def test_zipf_exponent_zero_is_uniform(self):
        data = zipf_dataset(domain_size=10, num_users=1000, exponent=0.0, shuffle=False)
        np.testing.assert_allclose(data.frequencies, 0.1, atol=1e-3)

    def test_zipf_shuffle_determinism(self):
        a = zipf_dataset(domain_size=20, num_users=500, rng=5)
        b = zipf_dataset(domain_size=20, num_users=500, rng=5)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_zipf_validation(self):
        with pytest.raises(InvalidParameterError):
            zipf_dataset(domain_size=1, num_users=10)
        with pytest.raises(InvalidParameterError):
            zipf_dataset(domain_size=5, num_users=0)
        with pytest.raises(InvalidParameterError):
            zipf_dataset(domain_size=5, num_users=10, exponent=-1)

    def test_uniform_counts_balanced(self):
        data = uniform_dataset(domain_size=7, num_users=100)
        assert data.num_users == 100
        assert data.counts.max() - data.counts.min() <= 1

    def test_geometric_profile(self):
        data = geometric_dataset(domain_size=20, num_users=10_000, ratio=0.7, shuffle=False)
        assert data.counts[0] > data.counts[10]

    def test_geometric_ratio_validation(self):
        with pytest.raises(InvalidParameterError):
            geometric_dataset(domain_size=5, num_users=10, ratio=1.0)

    def test_dirichlet_deterministic(self):
        a = dirichlet_dataset(domain_size=15, num_users=1000, rng=2)
        b = dirichlet_dataset(domain_size=15, num_users=1000, rng=2)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_dirichlet_concentration_validation(self):
        with pytest.raises(InvalidParameterError):
            dirichlet_dataset(domain_size=5, num_users=10, concentration=0)


class TestSurrogates:
    def test_ipums_paper_shape(self):
        data = ipums_like()
        assert data.domain_size == IPUMS_DOMAIN_SIZE == 102
        assert data.num_users == IPUMS_NUM_USERS == 389_894

    def test_ipums_deterministic(self):
        np.testing.assert_array_equal(ipums_like().counts, ipums_like().counts)

    def test_ipums_scaled(self):
        data = ipums_like(num_users=10_000)
        assert data.num_users == 10_000
        assert data.domain_size == 102

    def test_ipums_heavy_tail(self):
        freqs = np.sort(ipums_like().frequencies)[::-1]
        # Zipf-ish head: the top item carries much more than the median.
        assert freqs[0] > 10 * freqs[51]

    def test_fire_paper_shape(self):
        data = fire_like()
        assert data.domain_size == FIRE_DOMAIN_SIZE == 490
        assert data.num_users == FIRE_NUM_USERS == 667_574

    def test_fire_deterministic(self):
        np.testing.assert_array_equal(fire_like().counts, fire_like().counts)

    def test_fire_no_idle_units(self):
        # The blend guarantees every unit has some calls.
        assert fire_like().counts.min() > 0

    def test_fire_scaled(self):
        data = fire_like(num_users=5_000)
        assert data.num_users == 5_000
