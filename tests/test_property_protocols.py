"""Property-based tests on the protocol layer (hypothesis).

Invariants exercised across random epsilon/domain/item configurations:
support counts bounded by populations, aggregation identities, crafting
support guarantees, and the unified estimator's algebra.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols import GRR, OLH, OUE, make_protocol

protocol_names = st.sampled_from(["grr", "oue", "olh"])
epsilons = st.floats(min_value=0.1, max_value=4.0, allow_nan=False)
domains = st.integers(min_value=2, max_value=40)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def protocol_and_items(draw):
    name = draw(protocol_names)
    eps = draw(epsilons)
    d = draw(domains)
    n = draw(st.integers(min_value=1, max_value=300))
    seed = draw(seeds)
    rng = np.random.default_rng(seed)
    items = rng.integers(0, d, size=n)
    proto = make_protocol(name, epsilon=eps, domain_size=d)
    return proto, items, seed


class TestProtocolInvariants:
    @given(protocol_and_items())
    @settings(max_examples=60, deadline=None)
    def test_support_counts_bounded_by_population(self, setup):
        proto, items, seed = setup
        reports = proto.perturb(items, seed)
        counts = proto.support_counts(reports)
        assert counts.shape == (proto.domain_size,)
        assert counts.min() >= 0
        assert counts.max() <= items.size

    @given(protocol_and_items())
    @settings(max_examples=60, deadline=None)
    def test_grr_support_sums_to_population(self, setup):
        proto, items, seed = setup
        if not isinstance(proto, GRR):
            return
        reports = proto.perturb(items, seed)
        assert proto.support_counts(reports).sum() == items.size

    @given(protocol_and_items())
    @settings(max_examples=60, deadline=None)
    def test_num_reports_roundtrip(self, setup):
        proto, items, seed = setup
        reports = proto.perturb(items, seed)
        assert proto.num_reports(reports) == items.size

    @given(protocol_and_items())
    @settings(max_examples=60, deadline=None)
    def test_concat_is_additive(self, setup):
        proto, items, seed = setup
        a = proto.perturb(items, seed)
        b = proto.craft_supporting(items, seed + 1)
        combined = proto.concat_reports(a, b)
        assert proto.num_reports(combined) == 2 * items.size
        np.testing.assert_array_equal(
            proto.support_counts(combined),
            proto.support_counts(a) + proto.support_counts(b),
        )

    @given(protocol_and_items())
    @settings(max_examples=60, deadline=None)
    def test_crafted_reports_support_their_item(self, setup):
        proto, items, seed = setup
        crafted = proto.craft_supporting(items, seed)
        counts = proto.support_counts(crafted)
        histogram = np.bincount(items, minlength=proto.domain_size)
        # Every crafted report supports its chosen item (possibly others).
        assert np.all(counts >= histogram)

    @given(protocol_and_items())
    @settings(max_examples=60, deadline=None)
    def test_select_then_count_consistent(self, setup):
        proto, items, seed = setup
        reports = proto.perturb(items, seed)
        rng = np.random.default_rng(seed)
        mask = rng.random(items.size) < 0.5
        kept = proto.select_reports(reports, mask)
        assert proto.num_reports(kept) == int(mask.sum())

    @given(protocol_and_items())
    @settings(max_examples=40, deadline=None)
    def test_estimate_frequencies_affine_in_counts(self, setup):
        proto, items, seed = setup
        n = max(items.size, 1)
        zero = proto.estimate_frequencies(np.full(proto.domain_size, n * proto.q), n)
        np.testing.assert_allclose(zero, 0.0, atol=1e-9)
        one = proto.estimate_frequencies(np.full(proto.domain_size, n * proto.p), n)
        np.testing.assert_allclose(one, 1.0, atol=1e-9)

    @given(protocol_and_items())
    @settings(max_examples=40, deadline=None)
    def test_fast_counts_bounded(self, setup):
        proto, items, seed = setup
        histogram = np.bincount(items, minlength=proto.domain_size)
        counts = proto.sample_genuine_counts(histogram, seed)
        assert counts.min() >= 0
        assert counts.max() <= items.size

    @given(protocol_and_items())
    @settings(max_examples=40, deadline=None)
    def test_privacy_ratio(self, setup):
        # p/q <= e^eps for GRR-style keep/flip probabilities (the LDP
        # guarantee's likelihood-ratio bound at the report level).
        proto, _, _ = setup
        import math

        if isinstance(proto, GRR):
            assert proto.p / proto.q == pytest.approx(math.exp(proto.epsilon))
        elif isinstance(proto, OUE):
            # OUE: the worst-case ratio across the two bit channels is e^eps.
            ratio = (proto.p / proto.q) * ((1 - proto.q) / (1 - proto.p))
            assert ratio <= math.exp(proto.epsilon) * (1 + 1e-9)
        elif isinstance(proto, OLH):
            # Perturbation-level GRR on the hashed domain has ratio e^eps.
            q_perturb = (1 - proto._p_perturb) / (proto.g - 1)
            assert proto._p_perturb / q_perturb == pytest.approx(
                math.exp(proto.epsilon)
            )


class TestDeterminism:
    @given(protocol_and_items())
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_reports(self, setup):
        proto, items, seed = setup
        a = proto.support_counts(proto.perturb(items, seed))
        b = proto.support_counts(proto.perturb(items, seed))
        np.testing.assert_array_equal(a, b)
