"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests execute each one
in a subprocess (the same way a user would) and check both the exit code
and a signature line of its output.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "MSE after LDPRecover"),
    ("census_city_audit.py", "largest recovery win"),
    ("targeted_promotion_defense.py", "after LDPRecover*"),
    ("mean_estimation.py", "informed recovery restores"),
    ("multi_attacker_kmeans.py", "LDPRecover-KM improves"),
    ("heavy_hitter_audit.py", "planted items after LDPRecover*"),
]


@pytest.mark.parametrize("script,signature", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, signature):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    assert signature in result.stdout, (
        f"{script} output missing {signature!r}:\n{result.stdout[-2000:]}"
    )


def test_examples_directory_complete():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {c[0] for c in CASES} == scripts, "CASES must track examples/ exactly"
