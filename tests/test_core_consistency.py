"""Tests for the consistency post-processing baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.consistency import (
    CONSISTENCY_METHODS,
    base_cut,
    norm,
    norm_cut,
    norm_mul,
    norm_sub,
)
from repro.core.projection import is_probability_vector, project_onto_simplex_kkt
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR

vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False),
)


class TestNorm:
    def test_sums_to_one(self):
        assert norm(np.array([0.1, 0.2, 0.3])).sum() == pytest.approx(1.0)

    def test_preserves_differences(self):
        vec = np.array([0.5, -0.2, 0.1])
        result = norm(vec)
        np.testing.assert_allclose(np.diff(result), np.diff(vec))

    def test_can_stay_negative(self):
        result = norm(np.array([2.0, -3.0]))
        assert result.min() < 0

    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_property_sums_to_one(self, vec):
        assert norm(vec).sum() == pytest.approx(1.0, abs=1e-8)


class TestNormMul:
    def test_probability_output(self):
        result = norm_mul(np.array([0.4, -0.1, 0.8]))
        assert is_probability_vector(result, atol=1e-9)

    def test_preserves_ratios_of_positives(self):
        result = norm_mul(np.array([0.2, 0.4, -1.0]))
        assert result[1] == pytest.approx(2 * result[0])

    def test_degenerate_all_negative_uniform(self):
        result = norm_mul(np.array([-1.0, -2.0]))
        np.testing.assert_allclose(result, 0.5)

    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_property_probability_vector(self, vec):
        assert is_probability_vector(norm_mul(vec), atol=1e-8)


class TestNormCut:
    def test_no_rescaling_when_under_one(self):
        vec = np.array([0.2, -0.5, 0.3])
        np.testing.assert_allclose(norm_cut(vec), [0.2, 0.0, 0.3])

    def test_cuts_smallest_when_over_one(self):
        vec = np.array([0.9, 0.5, 0.05])
        result = norm_cut(vec)
        assert result[2] == 0.0  # smallest cut first
        assert result.sum() <= 1.0 + 1e-12

    def test_head_never_rescaled(self):
        vec = np.array([0.9, 0.5, 0.05])
        assert norm_cut(vec)[0] == pytest.approx(0.9)

    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_property_nonnegative_and_bounded(self, vec):
        result = norm_cut(vec)
        assert np.all(result >= 0)
        # After cutting, the total never exceeds one by more than the
        # largest single element boundary case.
        assert result.sum() <= max(1.0, vec.max() if vec.size else 0) + 1e-9


class TestNormSub:
    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_equals_kkt_projection(self, vec):
        np.testing.assert_allclose(
            norm_sub(vec), project_onto_simplex_kkt(vec), atol=1e-9
        )


class TestBaseCut:
    def test_zeros_noise_level_items(self):
        params = GRR(epsilon=0.5, domain_size=10).params
        n = 10_000
        vec = np.full(10, 1e-6)
        vec[0] = 0.9
        result = base_cut(vec, params, n)
        assert result[0] == pytest.approx(0.9)
        np.testing.assert_allclose(result[1:], 0.0)

    def test_threshold_scales_with_n(self):
        params = GRR(epsilon=0.5, domain_size=10).params
        vec = np.full(10, 0.02)
        few = base_cut(vec, params, n=1_000)
        many = base_cut(vec, params, n=10_000_000)
        # With more users the noise floor drops and small values survive.
        assert many.sum() >= few.sum()

    def test_validation(self):
        params = GRR(epsilon=0.5, domain_size=10).params
        with pytest.raises(InvalidParameterError):
            base_cut(np.zeros(10), params, n=0)
        with pytest.raises(InvalidParameterError):
            base_cut(np.zeros(10), params, n=10, threshold_sigmas=0)


class TestMethodMap:
    def test_registry_contents(self):
        assert set(CONSISTENCY_METHODS) == {"norm", "norm-mul", "norm-cut", "norm-sub"}

    def test_all_methods_run(self):
        vec = np.array([0.5, -0.2, 0.4, 0.1])
        for fn in CONSISTENCY_METHODS.values():
            out = fn(vec)
            assert out.shape == vec.shape

    def test_input_validation_shared(self):
        for fn in CONSISTENCY_METHODS.values():
            with pytest.raises(InvalidParameterError):
                fn(np.array([np.nan, 0.5]))
            with pytest.raises(InvalidParameterError):
                fn(np.array([]))


class TestAgainstPoisoning:
    def test_ldprecover_star_beats_generic_consistency_under_mga(self):
        """Generic post-processing knows nothing about poisoning.  Plain
        LDPRecover roughly matches the best generic method (its uniform
        malicious split largely cancels under projection — by design),
        while LDPRecover*'s targeted deduction beats every generic method.
        """
        from repro.attacks import MGAAttack
        from repro.core.recover import recover_frequencies
        from repro.datasets import zipf_dataset
        from repro.sim import mse, run_trial

        D = 24
        data = zipf_dataset(domain_size=D, num_users=40_000, rng=5)
        proto = GRR(epsilon=0.5, domain_size=D)
        attack = MGAAttack(domain_size=D, r=4, rng=0)
        plain, star = [], []
        generic = {name: [] for name in CONSISTENCY_METHODS}
        for seed in range(5):
            trial = run_trial(data, proto, attack, beta=0.05, rng=seed)
            truth = trial.true_frequencies
            plain.append(
                mse(
                    truth,
                    recover_frequencies(trial.poisoned_frequencies, proto).frequencies,
                )
            )
            star.append(
                mse(
                    truth,
                    recover_frequencies(
                        trial.poisoned_frequencies,
                        proto,
                        target_items=attack.target_items,
                    ).frequencies,
                )
            )
            for name, fn in CONSISTENCY_METHODS.items():
                generic[name].append(mse(truth, fn(trial.poisoned_frequencies)))
        best_generic = min(np.mean(v) for v in generic.values())
        assert np.mean(star) < best_generic, "LDPRecover* must beat every generic"
        assert np.mean(plain) <= 2 * best_generic, "plain LDPRecover stays competitive"
        # And the whole family beats doing nothing about negatives (norm).
        assert np.mean(plain) < np.mean(generic["norm"])
