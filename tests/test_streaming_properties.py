"""Algebraic properties of the streaming aggregation state and wire codec.

Two contracts pinned here (ISSUE 10 satellite 2):

* :meth:`repro.sim.AggregatorState.merge` is a commutative, associative
  monoid operation with the empty state as identity — checked over
  random partitions of random multi-epoch report streams, for every
  protocol including OLH's cohort mode, so fan-in topology can never
  change results;
* the ``encode_reports`` / ``decode_reports`` wire codec round-trips
  byte-for-byte through real JSON, and rejects malformed payloads
  (fuzzed truncations, padded lengths, foreign dtypes, missing fields)
  loudly with :class:`~repro.exceptions.ProtocolError` instead of
  mis-slicing untrusted bytes.
"""

from __future__ import annotations

import base64
import json

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, ProtocolError
from repro.protocols import make_protocol
from repro.sim.streaming import AggregatorState, fan_in

EPSILON = 1.0
DOMAIN = 24

PROTOCOL_GRID = [
    ("grr", {}),
    ("oue", {}),
    ("olh", {}),
    ("olh", {"cohort": 8}),
]
PROTOCOL_IDS = ["grr", "oue", "olh", "olh-cohort"]


def _protocol(name, kwargs):
    return make_protocol(name, EPSILON, DOMAIN, **kwargs)


def _reports(protocol, n, seed):
    items = np.random.default_rng(seed).integers(0, DOMAIN, size=n)
    return protocol.perturb(items, np.random.default_rng(seed + 1))


def _report_arrays(protocol, reports):
    """The raw ndarrays of a batch, protocol-shape agnostic."""
    if protocol.name == "olh":
        return [reports.seeds, reports.values]
    return [np.asarray(reports)]


def _epoch_equal(a: AggregatorState, b: AggregatorState) -> None:
    assert a.epoch_names() == b.epoch_names()
    for name in a.epoch_names():
        np.testing.assert_array_equal(a.support_counts(name), b.support_counts(name))
        assert a.num_reports(name) == b.num_reports(name)
        np.testing.assert_array_equal(
            a.estimate_frequencies(name), b.estimate_frequencies(name)
        )


@pytest.mark.parametrize("name,kwargs", PROTOCOL_GRID, ids=PROTOCOL_IDS)
class TestMergeMonoid:
    def test_random_partitions_fan_in_to_the_direct_state(self, name, kwargs):
        """Any random split of any epoch across collectors merges back."""
        protocol = _protocol(name, kwargs)
        rng = np.random.default_rng(7)
        direct = AggregatorState(protocol)
        collectors = [AggregatorState(protocol) for _ in range(3)]
        for seed, epoch in enumerate(("day-0", "day-1", "day-2")):
            reports = _reports(protocol, 400 + 50 * seed, seed)
            direct.ingest(epoch, reports)
            lanes = rng.integers(0, len(collectors), size=protocol.num_reports(reports))
            for lane, state in enumerate(collectors):
                share = protocol.select_reports(reports, lanes == lane)
                if protocol.num_reports(share):
                    state.ingest(epoch, share)
        _epoch_equal(fan_in(collectors), direct)

    def test_merge_is_commutative_and_associative(self, name, kwargs):
        protocol = _protocol(name, kwargs)
        # Overlapping epoch sets, so merging actually sums shared epochs.
        parts = []
        for seed, epochs in enumerate((("a", "b"), ("b", "c"), ("a", "c"))):
            state = AggregatorState(protocol)
            for epoch in epochs:
                state.ingest(epoch, _reports(protocol, 300, 10 * seed + len(epoch)))
            parts.append(state)
        a, b, c = parts

        def fold(*states):
            out = AggregatorState(protocol)
            for state in states:
                out.merge(state)
            return out

        left = fold(fold(a, b), c)
        right = fold(a, fold(b, c))
        shuffled = fold(c, a, b)
        # Full snapshot equality: counts, report totals and batch totals.
        assert left.snapshot() == right.snapshot() == shuffled.snapshot()

    def test_empty_state_is_the_identity(self, name, kwargs):
        protocol = _protocol(name, kwargs)
        state = AggregatorState(protocol)
        state.ingest("e", _reports(protocol, 500, 3))
        before = state.snapshot()
        state.merge(AggregatorState(protocol))
        assert state.snapshot() == before
        absorbed = AggregatorState(protocol)
        absorbed.merge(state)
        assert absorbed.snapshot() == before

    def test_merge_rejects_foreign_protocol_identities(self, name, kwargs):
        state = AggregatorState(_protocol(name, kwargs))
        other = AggregatorState(make_protocol(name, EPSILON * 2, DOMAIN, **kwargs))
        with pytest.raises(ProtocolError):
            state.merge(other)
        with pytest.raises(InvalidParameterError):
            fan_in([])

    def test_chunk_users_is_execution_only_for_merge(self, name, kwargs):
        """Different fold slice bounds share one protocol identity."""
        protocol = _protocol(name, kwargs)
        reports = _reports(protocol, 700, 5)
        coarse = AggregatorState(protocol)
        fine = AggregatorState(protocol, chunk_users=64)
        coarse.ingest("e", reports)
        fine.ingest("e", reports)
        merged = fan_in([coarse, fine])
        np.testing.assert_array_equal(
            merged.support_counts("e"), 2 * coarse.support_counts("e")
        )


@pytest.mark.parametrize("name,kwargs", PROTOCOL_GRID, ids=PROTOCOL_IDS)
class TestWireCodec:
    def test_round_trip_is_byte_identical_through_json(self, name, kwargs):
        protocol = _protocol(name, kwargs)
        reports = _reports(protocol, 600, 2)
        payload = json.loads(json.dumps(protocol.encode_reports(reports)))
        decoded = protocol.decode_reports(payload)
        for original, restored in zip(
            _report_arrays(protocol, reports), _report_arrays(protocol, decoded)
        ):
            assert restored.dtype == original.dtype
            assert restored.shape == original.shape
            np.testing.assert_array_equal(restored, original)
        # Re-encoding the decoded batch reproduces the exact wire bytes.
        assert protocol.encode_reports(decoded) == protocol.encode_reports(reports)
        np.testing.assert_array_equal(
            protocol.aggregate(decoded), protocol.aggregate(reports)
        )

    def test_fuzzed_truncations_and_paddings_rejected(self, name, kwargs):
        """No prefix, cut or extension of the data bytes may decode."""
        protocol = _protocol(name, kwargs)
        payload = protocol.encode_reports(_reports(protocol, 64, 4))
        rng = np.random.default_rng(0)
        for array_payload, mutate in _array_payload_sites(payload):
            raw = base64.b64decode(array_payload["data"])
            cuts = {int(c) for c in rng.integers(0, len(raw), size=8)} | {0, len(raw) - 1}
            grown = [raw + b"\x00", raw + raw[:17]]
            for bad_bytes in [raw[:cut] for cut in sorted(cuts)] + grown:
                if len(bad_bytes) == len(raw):
                    continue
                corrupt = dict(
                    array_payload,
                    data=base64.b64encode(bad_bytes).decode("ascii"),
                )
                with pytest.raises(ProtocolError):
                    protocol.decode_reports(mutate(corrupt))

    def test_foreign_dtypes_rejected(self, name, kwargs):
        protocol = _protocol(name, kwargs)
        payload = protocol.encode_reports(_reports(protocol, 32, 4))
        for array_payload, mutate in _array_payload_sites(payload):
            for dtype in ("float64", "int32", "uint8", "complex128", "object"):
                corrupt = dict(array_payload, dtype=dtype)
                with pytest.raises(ProtocolError):
                    protocol.decode_reports(mutate(corrupt))

    def test_missing_fields_rejected(self, name, kwargs):
        protocol = _protocol(name, kwargs)
        payload = protocol.encode_reports(_reports(protocol, 32, 4))
        for array_payload, mutate in _array_payload_sites(payload):
            for field in ("dtype", "shape", "data"):
                corrupt = {k: v for k, v in array_payload.items() if k != field}
                with pytest.raises(ProtocolError):
                    protocol.decode_reports(mutate(corrupt))
        with pytest.raises(ProtocolError):
            protocol.decode_reports(None)

    def test_shape_byte_count_mismatch_rejected(self, name, kwargs):
        protocol = _protocol(name, kwargs)
        payload = protocol.encode_reports(_reports(protocol, 32, 4))
        for array_payload, mutate in _array_payload_sites(payload):
            shape = list(array_payload["shape"])
            shape[0] += 1
            with pytest.raises(ProtocolError):
                protocol.decode_reports(mutate(dict(array_payload, shape=shape)))


def _array_payload_sites(payload):
    """Each wire-array sub-payload plus a function grafting a corrupted
    version of it back into a full ``decode_reports`` input."""
    if "seeds" in payload:  # OLH: two arrays side by side
        return [
            (payload["seeds"], lambda bad: {**payload, "seeds": bad}),
            (payload["values"], lambda bad: {**payload, "values": bad}),
        ]
    return [(payload, lambda bad: bad)]
