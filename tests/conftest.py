"""Shared fixtures for the test suite.

Small-but-nontrivial populations keep statistical assertions meaningful
while the suite stays fast.  Every fixture is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, zipf_dataset
from repro.protocols import GRR, OLH, OUE

EPSILON = 0.5
SMALL_DOMAIN = 16
SMALL_USERS = 6_000


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_dataset() -> Dataset:
    return zipf_dataset(
        domain_size=SMALL_DOMAIN, num_users=SMALL_USERS, exponent=1.0, rng=7
    )


@pytest.fixture()
def grr() -> GRR:
    return GRR(epsilon=EPSILON, domain_size=SMALL_DOMAIN)


@pytest.fixture()
def oue() -> OUE:
    return OUE(epsilon=EPSILON, domain_size=SMALL_DOMAIN)


@pytest.fixture()
def olh() -> OLH:
    return OLH(epsilon=EPSILON, domain_size=SMALL_DOMAIN)


@pytest.fixture(params=["grr", "oue", "olh"])
def protocol(request, grr, oue, olh):
    """Parametrized fixture iterating over all three protocols."""
    return {"grr": grr, "oue": oue, "olh": olh}[request.param]
