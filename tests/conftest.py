"""Shared fixtures for the test suite.

Small-but-nontrivial populations keep statistical assertions meaningful
while the suite stays fast.  Every fixture is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, zipf_dataset
from repro.protocols import GRR, OLH, OUE

EPSILON = 0.5
SMALL_DOMAIN = 16
SMALL_USERS = 6_000


@pytest.fixture(autouse=True)
def _isolated_cell_cache(tmp_path, monkeypatch):
    """Point the default cell-cache directory at a per-test tmp dir.

    CLI invocations without ``--cache-dir`` fall back to
    ``$REPRO_CACHE_DIR``; without this, test runs would populate the
    user's real cache and later runs could serve rows cached by an older
    build of the code under test.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cell-cache"))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_dataset() -> Dataset:
    return zipf_dataset(
        domain_size=SMALL_DOMAIN, num_users=SMALL_USERS, exponent=1.0, rng=7
    )


@pytest.fixture()
def grr() -> GRR:
    return GRR(epsilon=EPSILON, domain_size=SMALL_DOMAIN)


@pytest.fixture()
def oue() -> OUE:
    return OUE(epsilon=EPSILON, domain_size=SMALL_DOMAIN)


@pytest.fixture()
def olh() -> OLH:
    return OLH(epsilon=EPSILON, domain_size=SMALL_DOMAIN)


@pytest.fixture(params=["grr", "oue", "olh"])
def protocol(request, grr, oue, olh):
    """Parametrized fixture iterating over all three protocols."""
    return {"grr": grr, "oue": oue, "olh": olh}[request.param]
