"""Tests for the experiment harness (multi-trial evaluation, sweeps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AdaptiveAttack, MGAAttack
from repro.datasets import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.protocols import GRR
from repro.sim.experiment import (
    evaluate_recovery,
    format_table,
    resolve_star_targets,
    sweep_parameter,
)
from repro.sim.pipeline import run_trial

D = 16
DATASET = zipf_dataset(domain_size=D, num_users=10_000, exponent=1.0, rng=8)


@pytest.fixture()
def proto():
    return GRR(epsilon=0.5, domain_size=D)


class TestEvaluateRecovery:
    def test_basic_fields(self, proto):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        ev = evaluate_recovery(DATASET, proto, attack, trials=3, rng=1)
        assert ev.trials == 3
        assert ev.protocol == "grr"
        assert ev.mse_before > 0
        assert ev.mse_recover > 0
        assert ev.mse_recover_star is not None
        assert ev.fg_before is not None

    def test_untargeted_attack_has_no_fg(self, proto):
        attack = AdaptiveAttack(domain_size=D, rng=0)
        ev = evaluate_recovery(DATASET, proto, attack, trials=2, rng=1)
        assert ev.fg_before is None
        # Star still runs via the top-increase rule.
        assert ev.mse_recover_star is not None

    def test_no_attack(self, proto):
        ev = evaluate_recovery(DATASET, proto, None, trials=2, rng=1)
        assert ev.attack == "none"
        assert ev.mse_malicious_estimate is None

    def test_detection_requires_sampled(self, proto):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        with pytest.raises(InvalidParameterError):
            evaluate_recovery(
                DATASET, proto, attack, trials=1, mode="fast", with_detection=True
            )

    def test_detection_in_sampled_mode(self, proto):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        ev = evaluate_recovery(
            DATASET, proto, attack, trials=2, mode="sampled", with_detection=True, rng=1
        )
        assert ev.mse_detection is not None
        assert ev.fg_detection is not None

    def test_trials_validation(self, proto):
        with pytest.raises(InvalidParameterError):
            evaluate_recovery(DATASET, proto, None, trials=0)

    def test_deterministic(self, proto):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        a = evaluate_recovery(DATASET, proto, attack, trials=2, rng=9)
        b = evaluate_recovery(DATASET, proto, attack, trials=2, rng=9)
        assert a.mse_before == b.mse_before
        assert a.mse_recover == b.mse_recover

    def test_with_star_disabled(self, proto):
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        ev = evaluate_recovery(DATASET, proto, attack, trials=2, with_star=False, rng=1)
        assert ev.mse_recover_star is None

    def test_as_row_keys(self, proto):
        ev = evaluate_recovery(DATASET, proto, None, trials=1, rng=1)
        row = ev.as_row()
        assert row["protocol"] == "grr"
        assert "mse_before" in row

    def test_as_row_includes_malicious_estimate_columns(self, proto):
        """Regression: Figure 7's metric used to be dropped from dumps."""
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        row = evaluate_recovery(DATASET, proto, attack, trials=2, rng=1).as_row()
        assert row["trials"] == 2
        assert row["mse_malicious_estimate"] is not None
        assert row["mse_malicious_estimate_star"] is not None

    def test_as_row_columns_are_stable_across_cells(self, proto):
        """Poisoned and unpoisoned cells must emit identical columns so the
        CSV/JSON writers (which require a uniform header) accept them."""
        attack = MGAAttack(domain_size=D, r=3, rng=0)
        poisoned = evaluate_recovery(DATASET, proto, attack, trials=1, rng=1).as_row()
        clean = evaluate_recovery(DATASET, proto, None, trials=1, rng=1).as_row()
        assert list(poisoned.keys()) == list(clean.keys())


class TestResolveStarTargets:
    def test_explicit_targets_win(self, proto):
        attack = MGAAttack(domain_size=D, targets=[2, 5], rng=0)
        trial = run_trial(DATASET, proto, attack, beta=0.05, rng=1)
        np.testing.assert_array_equal(
            resolve_star_targets(attack, trial, aa_top_k=3), [2, 5]
        )

    def test_top_increase_for_untargeted(self, proto):
        attack = AdaptiveAttack(domain_size=D, rng=0)
        trial = run_trial(DATASET, proto, attack, beta=0.05, rng=1)
        targets = resolve_star_targets(attack, trial, aa_top_k=4)
        assert targets.size == 4


class TestSweep:
    def test_values_and_children(self, proto):
        attack = AdaptiveAttack(domain_size=D, rng=0)

        def evaluate(beta, rng):
            return evaluate_recovery(DATASET, proto, attack, beta=beta, trials=1, rng=rng)

        results = sweep_parameter("beta", [0.01, 0.05], evaluate, rng=3)
        assert [r.value for r in results] == [0.01, 0.05]
        assert all(r.parameter == "beta" for r in results)

    def test_poisoning_grows_with_beta(self, proto):
        attack = AdaptiveAttack(domain_size=D, rng=1)

        def evaluate(beta, rng):
            return evaluate_recovery(DATASET, proto, attack, beta=beta, trials=3, rng=rng)

        results = sweep_parameter("beta", [0.01, 0.2], evaluate, rng=4)
        assert results[1].evaluation.mse_before > results[0].evaluation.mse_before


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_none(self):
        rows = [
            {"name": "a", "value": 0.5, "extra": None},
            {"name": "longer", "value": 1.25e-4, "extra": None},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, divider, 2 rows
        assert "name" in lines[0]
        assert "-" in lines[2]  # None rendered as dash

    def test_float_format(self):
        rows = [{"x": 0.123456}]
        text = format_table(rows, float_format="{:.2f}")
        assert "0.12" in text
