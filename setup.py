"""Legacy entry point so `python setup.py develop` works where the
PEP 660 editable build is unavailable (offline environments without the
`wheel` package)."""
from setuptools import setup

setup()
