"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library errors without also
swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its valid range (e.g. epsilon <= 0)."""


class ProtocolError(ReproError):
    """A protocol was used inconsistently (wrong report shape, etc.)."""


class AttackError(ReproError):
    """An attack was configured inconsistently with the protocol."""


class RecoveryError(ReproError):
    """Frequency recovery could not be performed on the given input."""


class ShardIncompleteError(ReproError, RuntimeError):
    """A sharded sweep cannot merge: the shared cache is missing cells.

    Raised by :func:`repro.sim.shard.merge_sweep` when some of the
    sweep's enumerated cells have not been completed (run, claimed by a
    crashed peer whose claim has not yet expired, or never assigned).
    """
