"""Checked-in lint baseline: accepted findings, each with a justification.

Rules sometimes flag code that is *deliberately* what it is — e.g. the
cache's ``time.time()`` bookkeeping for entry ages and prune horizons,
which is metadata that never enters a canonical key.  Rather than
sprinkling inline suppressions through load-bearing modules, those
accepted findings live in one reviewed JSON file
(``.repro-lint-baseline.json`` at the repo root) where every entry
**must** carry a one-line justification — an unexplained baseline entry
fails loading, so the file cannot silently accumulate debt.

Entries match findings on ``(rule, path, code)`` where ``code`` is the
stripped source line, **not** the line number: unrelated edits above a
baselined line do not invalidate the baseline, while any edit to the
flagged line itself (or moving the file) surfaces the finding again for
re-review.

Identical occurrences are matched **by slot**, not by budget.  The
file's findings for one ``(rule, path, code)`` key are numbered 0, 1, 2…
in line order; an entry covers the ``count`` consecutive slots starting
at ``occurrence`` (default 0).  Slot accounting is exact in both
directions: a *new* copy of an already-baselined pattern lands in an
uncovered slot and is reported, and an entry whose covered slot no
longer exists is stale — a ``count: 2`` entry can no longer silently
absorb one surviving occurrence plus one brand-new one.

Stale entries — baselined findings the tree no longer produces — are
reported by the runner so the baseline shrinks as code improves.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.exceptions import InvalidParameterError
from repro.lint.findings import Finding

#: Default baseline filename, looked up at the repo root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: rule + location-independent match + why.

    ``occurrence`` is the 0-based index (in line order) of the first
    identical occurrence this entry covers; ``count`` how many
    consecutive occurrences from there.  Two entries may share a
    ``(rule, path, code)`` key only when their slot ranges are disjoint.
    """

    rule: str
    path: str
    code: str
    justification: str
    count: int = 1
    occurrence: int = 0

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)

    @property
    def slots(self) -> range:
        """The occurrence indices this entry covers."""
        return range(self.occurrence, self.occurrence + self.count)


def load_baseline(path: pathlib.Path) -> list[BaselineEntry]:
    """Parse and validate a baseline file.

    Every entry must provide ``rule``, ``path``, ``code`` and a non-empty
    ``justification``; anything else raises so review debt cannot hide in
    a malformed file.  Entries sharing a ``(rule, path, code)`` key must
    cover disjoint occurrence slots.
    """
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or not isinstance(raw.get("entries"), list):
        raise InvalidParameterError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    entries: list[BaselineEntry] = []
    claimed: dict[tuple[str, str, str], set[int]] = {}
    for index, item in enumerate(raw["entries"]):
        if not isinstance(item, dict):
            raise InvalidParameterError(f"baseline entry #{index} is not an object")
        missing = [k for k in ("rule", "path", "code", "justification") if not item.get(k)]
        if missing:
            raise InvalidParameterError(
                f"baseline entry #{index} is missing {', '.join(missing)}: every "
                "accepted finding needs a rule, a path, the flagged source line, "
                "and a one-line justification"
            )
        justification = str(item["justification"]).strip()
        if not justification:
            raise InvalidParameterError(
                f"baseline entry #{index} has an empty justification"
            )
        count = item.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise InvalidParameterError(
                f"baseline entry #{index} has invalid count {count!r} (need int >= 1)"
            )
        occurrence = item.get("occurrence", 0)
        if not isinstance(occurrence, int) or occurrence < 0:
            raise InvalidParameterError(
                f"baseline entry #{index} has invalid occurrence {occurrence!r} "
                "(need int >= 0)"
            )
        entry = BaselineEntry(
            rule=str(item["rule"]),
            path=str(item["path"]),
            code=str(item["code"]).strip(),
            justification=justification,
            count=count,
            occurrence=occurrence,
        )
        taken = claimed.setdefault(entry.key, set())
        overlap = taken.intersection(entry.slots)
        if overlap:
            raise InvalidParameterError(
                f"baseline entry #{index} duplicates occurrence slot(s) "
                f"{sorted(overlap)} of {entry.key}; entries for the same "
                "(rule, path, code) must cover disjoint slots — widen one "
                "entry's 'count' or move the other's 'occurrence'"
            )
        taken.update(entry.slots)
        entries.append(entry)
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split findings into (still-reported, ...) and collect stale entries.

    Occurrences of one ``(rule, path, code)`` key are numbered in line
    order and matched slot-for-slot against the entries covering them.
    A finding in an uncovered slot is kept; an entry with **any** covered
    slot that matched no finding is stale — exact accounting in both
    directions, so one justified entry cannot absorb a different, newer
    occurrence of the same pattern.
    """
    slot_owner: dict[tuple[str, str, str, int], BaselineEntry] = {}
    for entry in entries:
        for slot in entry.slots:
            # load_baseline guarantees disjoint slots; last-wins is fine
            # for hand-built entry lists in tests.
            slot_owner[entry.key + (slot,)] = entry
    next_slot: dict[tuple[str, str, str], int] = {}
    matched: set[tuple[str, str, str, int]] = set()
    kept: list[Finding] = []
    for finding in sorted(findings):
        key = (finding.rule, finding.path, finding.code.strip())
        slot = next_slot.get(key, 0)
        next_slot[key] = slot + 1
        owner = slot_owner.get(key + (slot,))
        if owner is not None:
            matched.add(key + (slot,))
        else:
            kept.append(finding)
    stale = [
        entry
        for entry in entries
        if any(entry.key + (slot,) not in matched for slot in entry.slots)
    ]
    return kept, stale
