"""Checked-in lint baseline: accepted findings, each with a justification.

Rules sometimes flag code that is *deliberately* what it is — e.g. the
cache's ``time.time()`` bookkeeping for entry ages and prune horizons,
which is metadata that never enters a canonical key.  Rather than
sprinkling inline suppressions through load-bearing modules, those
accepted findings live in one reviewed JSON file
(``.repro-lint-baseline.json`` at the repo root) where every entry
**must** carry a one-line justification — an unexplained baseline entry
fails loading, so the file cannot silently accumulate debt.

Entries match findings on ``(rule, path, code)`` where ``code`` is the
stripped source line, **not** the line number: unrelated edits above a
baselined line do not invalidate the baseline, while any edit to the
flagged line itself (or moving the file) surfaces the finding again for
re-review.  Each entry also declares how many identical occurrences it
covers (``count``, default 1), so a *new* copy of an already-baselined
pattern is still reported.

Stale entries — baselined findings the tree no longer produces — are
reported by the runner so the baseline shrinks as code improves.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.exceptions import InvalidParameterError
from repro.lint.findings import Finding

#: Default baseline filename, looked up at the repo root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: rule + location-independent match + why."""

    rule: str
    path: str
    code: str
    justification: str
    count: int = 1

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)


def load_baseline(path: pathlib.Path) -> list[BaselineEntry]:
    """Parse and validate a baseline file.

    Every entry must provide ``rule``, ``path``, ``code`` and a non-empty
    ``justification``; anything else raises so review debt cannot hide in
    a malformed file.
    """
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or not isinstance(raw.get("entries"), list):
        raise InvalidParameterError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    entries: list[BaselineEntry] = []
    seen: set[tuple[str, str, str]] = set()
    for index, item in enumerate(raw["entries"]):
        if not isinstance(item, dict):
            raise InvalidParameterError(f"baseline entry #{index} is not an object")
        missing = [k for k in ("rule", "path", "code", "justification") if not item.get(k)]
        if missing:
            raise InvalidParameterError(
                f"baseline entry #{index} is missing {', '.join(missing)}: every "
                "accepted finding needs a rule, a path, the flagged source line, "
                "and a one-line justification"
            )
        justification = str(item["justification"]).strip()
        if not justification:
            raise InvalidParameterError(
                f"baseline entry #{index} has an empty justification"
            )
        count = item.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise InvalidParameterError(
                f"baseline entry #{index} has invalid count {count!r} (need int >= 1)"
            )
        entry = BaselineEntry(
            rule=str(item["rule"]),
            path=str(item["path"]),
            code=str(item["code"]).strip(),
            justification=justification,
            count=count,
        )
        if entry.key in seen:
            raise InvalidParameterError(
                f"baseline entry #{index} duplicates {entry.key}; merge them and "
                "bump 'count' instead"
            )
        seen.add(entry.key)
        entries.append(entry)
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split findings into (still-reported, ...) and collect stale entries.

    Returns ``(kept_findings, stale_entries)``: a finding is absorbed when
    an entry with the same ``(rule, path, stripped-code)`` still has
    budget left (``count``); entries that absorb **nothing** are stale
    and should be deleted from the baseline file.
    """
    budget: dict[tuple[str, str, str], int] = {e.key: e.count for e in entries}
    used: set[tuple[str, str, str]] = set()
    kept: list[Finding] = []
    for finding in sorted(findings):
        key = (finding.rule, finding.path, finding.code.strip())
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            used.add(key)
        else:
            kept.append(finding)
    stale = [entry for entry in entries if entry.key not in used]
    return kept, stale
