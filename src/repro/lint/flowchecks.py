"""The REP2xx whole-program flow rules.

Where :mod:`repro.lint.checks` pins per-module invariants, the rules
here consume the project symbol table / call graph
(:mod:`repro.lint.callgraph`) and the CFG/taint engine
(:mod:`repro.lint.flow`) to catch the inter-procedural rot the
per-module pass cannot see:

* **REP201** ``seed-provenance`` — RNG values reaching trial/spec code
  must trace to :mod:`repro._rng`'s per-trial ``SeedSequence`` streams;
  flags constant-seeded generators in trial-reachable functions,
  module-level RNG singletons read from trial code, and RNG locals
  captured by closures handed to ``parallel_map``.
* **REP202** ``claim-leak`` — every ``claim()``/``acquire()`` must reach
  a matching ``release()`` on all non-exception paths or sit inside
  ``try/finally``; delegation wrappers (``return q.acquire(k)``) hand
  ownership to the caller and are exempt.
* **REP203** ``fingerprint-mutation`` — attribute writes to
  cache-fingerprinted classes outside ``__init__``-family methods and
  ``with_*`` copy constructors, anywhere in the project.
* **REP204** ``order-sensitive-reduction`` — float accumulation over
  unordered sources (sets, ``as_completed``, ``imap_unordered``) that
  bypasses ``Welford.merge`` or an ordering ``sorted(...)`` refold.
* **REP205** ``entropy-re-export`` — calls that resolve *through*
  module-level or cross-module aliases to a REP002-banned entropy
  source, invisible to the per-module import-alias pass.

All five are registered with ``scope="project"``: the runner builds one
:class:`~repro.lint.callgraph.ProjectContext` over every scanned module
and invokes each checker once.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.callgraph import (
    FunctionInfo,
    ProjectContext,
    ProjectIndex,
    name_chain,
)
from repro.lint.checks import (
    REP002_ALLOWED_MODULES,
    RNG_MODULES,
    _FINGERPRINTED_BASES,
    _REP002_CALLS,
    _REP002_PREFIXES,
)
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.flow import (
    GUARANTEE_FALLTHROUGH,
    GUARANTEE_LEAK,
    GUARANTEE_RELEASED,
    TaintSpec,
    analyze_taint,
    expr_tags,
    release_guarantee,
)
from repro.lint.registry import LintRule, register_rule

__all__ = ["REP201", "REP202", "REP203", "REP204", "REP205"]


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
#: numpy.random constructors that mint RNG state.
_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: repro._rng helpers whose results are (seeded) RNG values.
_RNG_HELPERS = frozenset({"as_generator", "spawn", "spawn_sequences"})


def _is_rng_construction(ctx: ModuleContext, node: ast.AST) -> bool:
    """Whether ``node`` constructs RNG state (numpy machinery or a
    :mod:`repro._rng` helper)."""
    if not isinstance(node, ast.Call):
        return False
    resolved = ctx.resolve(node.func)
    if resolved is None:
        return False
    if resolved[:2] == ("numpy", "random") and resolved[-1] in _RNG_CONSTRUCTORS:
        return True
    return resolved[-1] in _RNG_HELPERS


def _is_constant_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float, str)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_constant_literal(node.operand)
    return False


def _bound_names(func: ast.AST) -> set[str]:
    """Names a function binds locally: parameters plus every assignment,
    loop, with-as and nested-def target (shadowing a module global)."""
    out: set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            out.add(arg.arg)
        if args.vararg:
            out.add(args.vararg.arg)
        if args.kwarg:
            out.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            out.add(node.name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                out.add((alias.asname or alias.name).split(".")[0])
    return out


def _statement_calls(
    stmt: ast.stmt,
) -> Iterator[ast.Call]:
    """Calls belonging to ``stmt`` itself: its header/expression parts,
    not its nested statements (those are placed separately, with their
    own taint state) and not nested def/lambda bodies (deferred code)."""
    queue: list[ast.AST] = [
        child for child in ast.iter_child_nodes(stmt) if not isinstance(child, ast.stmt)
    ]
    while queue:
        node = queue.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        queue.extend(
            child
            for child in ast.iter_child_nodes(node)
            if not isinstance(child, ast.stmt)
        )


def _placed_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to ``func``'s own body (no nested defs)."""
    queue: list[ast.stmt] = list(getattr(func, "body", []))
    while queue:
        stmt = queue.pop(0)
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            queue.extend(getattr(stmt, field_name, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            queue.extend(handler.body)


def _ctx_for(pc: ProjectContext, module: str) -> Optional[ModuleContext]:
    table = pc.index.modules.get(module)
    return table.ctx if table else None


# ----------------------------------------------------------------------
# REP201: seed provenance
# ----------------------------------------------------------------------
_CONST_TAG = "const-literal"


def _rep201_taint_spec() -> TaintSpec:
    def source(expr: ast.expr) -> frozenset[str]:
        if _is_constant_literal(expr):
            return frozenset({_CONST_TAG})
        return frozenset()

    return TaintSpec(source=source)


def _trial_roots(index: ProjectIndex) -> set[str]:
    """Call-graph roots whose transitive callees count as trial/spec
    code: trial-named functions, ``*Task.__call__`` methods, spec
    builders, and every function handed to ``parallel_map``."""
    roots: set[str] = set()
    for info in index.functions():
        leaf = info.qualname.rsplit(".", 1)[-1]
        lowered = leaf.lower()
        if "trial" in lowered or lowered.endswith("_spec") or lowered.startswith("spec_"):
            roots.add(info.key)
        if leaf == "__call__" and info.qualname.split(".", 1)[0].endswith("Task"):
            roots.add(info.key)
    for module in sorted(index.modules):
        ctx = index.modules[module].ctx
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None or resolved[-1] != "parallel_map":
                continue
            chain = name_chain(node.args[0])
            if chain is None:
                continue
            res = index.resolve(module, chain)
            if res.kind == "function" and res.module and res.qualname:
                roots.add(f"{res.module}:{res.qualname}")
    return roots


def _module_of(index: ProjectIndex, ctx: ModuleContext) -> Optional[str]:
    """The index's module name for ``ctx`` (None if it wasn't indexed)."""
    for module, table in index.modules.items():
        if table.ctx is ctx:
            return module
    return None


def _check_rep201(pc: ProjectContext) -> Iterator[Finding]:
    index = pc.index
    spec = _rep201_taint_spec()
    reachable = index.reachable(_trial_roots(index))

    for key in sorted(reachable):
        info = index.function(key)
        if info is None:
            continue
        ctx = _ctx_for(pc, info.module)
        if ctx is None or ctx.relpath in RNG_MODULES:
            continue
        states = analyze_taint(info.node, spec)
        locals_bound = _bound_names(info.node)

        # (a) constant-seeded RNG constructions inside trial-reachable code.
        for stmt in _placed_statements(info.node):
            state = states.get(id(stmt), {})
            for call in _statement_calls(stmt):
                if not _is_rng_construction(ctx, call):
                    continue
                if not call.args:
                    continue  # argless default_rng() is REP001's finding
                seed_arg = call.args[0]
                constant = _is_constant_literal(seed_arg) or (
                    _CONST_TAG in expr_tags(seed_arg, state, spec)
                )
                if constant:
                    resolved = ctx.resolve(call.func) or ("rng",)
                    yield ctx.finding(
                        "REP201",
                        call,
                        f"{resolved[-1]}({ast.unparse(seed_arg)}) is a "
                        f"constant-seeded RNG in trial-reachable code "
                        f"({info.qualname}): every trial replays the same "
                        "stream — derive per-trial streams from repro._rng "
                        "SeedSequence spawning instead",
                    )

        # (b) module-level RNG singletons read from trial-reachable code.
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            if node.id in locals_bound:
                continue
            res = index.resolve(info.module, (node.id,))
            if res.kind != "value" or res.node is None or res.module is None:
                continue
            defining = index.modules.get(res.module)
            if defining is None or defining.ctx.relpath in RNG_MODULES:
                continue
            if _is_rng_construction(defining.ctx, res.node):
                yield ctx.finding(
                    "REP201",
                    node,
                    f"{node.id} is a module-level RNG (defined in "
                    f"{res.module}) shared across trials and processes; "
                    "trial code must take per-trial spawned streams as "
                    "arguments (repro._rng.spawn_sequences)",
                )

    # (c) RNG locals captured by closures handed to parallel_map: the
    # violation lives in the *caller*, reachable or not.
    for info in index.functions():
        ctx = _ctx_for(pc, info.module)
        if ctx is None or ctx.relpath in RNG_MODULES:
            continue
        rng_locals: set[str] = set()
        nested: dict[str, ast.AST] = {}
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_rng_construction(ctx, node.value)
            ):
                rng_locals.add(node.targets[0].id)
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not info.node
            ):
                nested[node.name] = node
        if not rng_locals:
            continue
        for call in ast.walk(info.node):
            if not (isinstance(call, ast.Call) and call.args):
                continue
            resolved = ctx.resolve(call.func)
            if resolved is None or resolved[-1] != "parallel_map":
                continue
            task = call.args[0]
            task_func: Optional[ast.AST] = None
            if isinstance(task, ast.Lambda):
                task_func = task.body
            elif isinstance(task, ast.Name) and task.id in nested:
                task_func = nested[task.id]
            if task_func is None:
                continue
            captured = _bound_names(task_func) if not isinstance(
                task_func, ast.expr
            ) else set()
            for load in ast.walk(task_func):
                if (
                    isinstance(load, ast.Name)
                    and isinstance(load.ctx, ast.Load)
                    and load.id in rng_locals
                    and load.id not in captured
                ):
                    yield ctx.finding(
                        "REP201",
                        load,
                        f"closure passed to parallel_map captures the RNG "
                        f"{load.id!r} from {info.qualname}: one stream shared "
                        "by every worker breaks workers=N == workers=1; "
                        "thread a per-trial spawned stream through the task",
                    )


REP201 = register_rule(
    LintRule(
        id="REP201",
        name="seed-provenance",
        summary="RNG values reaching trial/spec code trace to repro._rng streams",
        rationale=(
            "Bit-identical trials require every Generator/SeedSequence that "
            "trial or spec code consumes to descend from repro._rng's "
            "per-trial SeedSequence spawning. A constant-seeded generator "
            "replays one stream for every trial; a module-level RNG is "
            "shared mutable state across trials and worker processes; a "
            "closure-captured RNG hands one stream to N pool workers. The "
            "call graph marks trial-named functions, *Task.__call__, spec "
            "builders and parallel_map task functions as roots, and flags "
            "tainted constructions anywhere reachable from them."
        ),
        check=_check_rep201,
        scope="project",
    )
)


# ----------------------------------------------------------------------
# REP202: claim leak
# ----------------------------------------------------------------------
_CLAIM_METHODS = frozenset({"claim", "acquire"})
_RELEASE_METHODS = frozenset({"release"})


def _nearest_statement(ctx: ModuleContext, node: ast.AST) -> Optional[ast.stmt]:
    current: Optional[ast.AST] = node
    while current is not None and not isinstance(current, ast.stmt):
        current = ctx.parent(current)
    return current if isinstance(current, ast.stmt) else None


def _guarantee_after(
    ctx: ModuleContext, stmt: ast.stmt, is_release
) -> str:
    """Must-release verdict for the suffix of the program after ``stmt``,
    ascending through enclosing suites (loop bodies wrap around; a
    release later in the enclosing body still counts)."""
    current: ast.AST = stmt
    while True:
        parent = ctx.parent(current)
        if parent is None:
            return GUARANTEE_FALLTHROUGH
        progressed = False
        for field_name in ("body", "orelse", "finalbody"):
            suite = getattr(parent, field_name, None)
            if isinstance(suite, list) and current in suite:
                rest = suite[suite.index(current) + 1 :]
                verdict = release_guarantee(rest, is_release)
                if verdict != GUARANTEE_FALLTHROUGH:
                    return verdict
                if (
                    isinstance(parent, ast.Try)
                    and field_name in ("body", "orelse")
                    and release_guarantee(list(parent.finalbody), is_release)
                    == GUARANTEE_RELEASED
                ):
                    return GUARANTEE_RELEASED
                progressed = True
                break
        if not progressed:
            # current sits in a handler or another suite kind; treat the
            # enclosing statement as the next ascent step regardless.
            for handler in getattr(parent, "handlers", []) or []:
                if current in handler.body:
                    rest = handler.body[handler.body.index(current) + 1 :]
                    verdict = release_guarantee(rest, is_release)
                    if verdict != GUARANTEE_FALLTHROUGH:
                        return verdict
                    break
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            # Function body scanned with no verdict: execution falls off
            # the end still holding the claim.
            return GUARANTEE_FALLTHROUGH
        current = parent


def _check_rep202(pc: ProjectContext) -> Iterator[Finding]:
    for ctx in pc.contexts:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLAIM_METHODS
            ):
                continue
            receiver_src = ast.unparse(node.func.value)

            def is_release(call: ast.Call, _recv: str = receiver_src) -> bool:
                return (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in _RELEASE_METHODS
                    and ast.unparse(call.func.value) == _recv
                )

            stmt = _nearest_statement(ctx, node)
            if stmt is None:
                continue
            if isinstance(stmt, ast.Return):
                continue  # delegation: ownership transfers to the caller
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # claim in a default/decorator — out of scope

            verdict: str
            if isinstance(stmt, ast.If) and _expr_contains(stmt.test, node):
                if _under_not(ctx, node, stmt.test):
                    # `if not q.acquire(k): return` — ownership holds on
                    # the fallthrough side of the guard.
                    verdict = _guarantee_after(ctx, stmt, is_release)
                else:
                    verdict = release_guarantee(list(stmt.body), is_release)
                    if verdict == GUARANTEE_FALLTHROUGH:
                        verdict = _guarantee_after(ctx, stmt, is_release)
            elif isinstance(stmt, (ast.While,)) and _expr_contains(stmt.test, node):
                # spin-acquire loops hold the claim after the loop exits
                verdict = _guarantee_after(ctx, stmt, is_release)
            else:
                verdict = _guarantee_after(ctx, stmt, is_release)

            if verdict != GUARANTEE_RELEASED:
                yield ctx.finding(
                    "REP202",
                    node,
                    f"{receiver_src}.{node.func.attr}(...) can leak its "
                    "claim: a non-exception path leaves without "
                    f"{receiver_src}.release(...) — release on every path "
                    "or wrap the owned region in try/finally",
                )


def _expr_contains(haystack: ast.AST, needle: ast.AST) -> bool:
    return any(child is needle for child in ast.walk(haystack))


def _under_not(ctx: ModuleContext, node: ast.AST, test: ast.AST) -> bool:
    current = ctx.parent(node)
    while current is not None and current is not test:
        if isinstance(current, ast.UnaryOp) and isinstance(current.op, ast.Not):
            return True
        current = ctx.parent(current)
    return isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)


REP202 = register_rule(
    LintRule(
        id="REP202",
        name="claim-leak",
        summary="every claim()/acquire() releases on all non-exception paths",
        rationale=(
            "Exactly-once block arbitration (ClaimQueue, TrialBlockStore) "
            "relies on claims being released on every non-exception path: a "
            "leaked .claim file parks the cell until the stale-claim TTL "
            "expires, serializing peers behind a dead owner. The checker "
            "follows each claim()/acquire() call through branches, loops "
            "and try/finally with a must-release analysis; raise paths are "
            "exempt (the TTL steal is the designed recovery) and "
            "delegation wrappers (return q.acquire(k)) pass ownership to "
            "their caller. Deliberately deferred releases (ownership "
            "outliving the claiming function) belong in the baseline with "
            "a justification naming the releasing path."
        ),
        check=_check_rep202,
        scope="project",
    )
)


# ----------------------------------------------------------------------
# REP203: fingerprint mutation
# ----------------------------------------------------------------------
#: Methods allowed to write attributes: construction, copy/pickle
#: protocol, and the with_* copy-constructor convention.
_MUTATION_ALLOWED = frozenset(
    {"__init__", "__post_init__", "__setstate__", "__copy__", "__deepcopy__"}
)


def _method_may_mutate(name: str) -> bool:
    return name in _MUTATION_ALLOWED or name.startswith("with_")


def _self_attr_writes(method: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(method):
        targets: tuple[ast.AST, ...] = ()
        if isinstance(node, ast.Assign):
            targets = tuple(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = (node.target,)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and node.args
        ):
            # object.__setattr__(self, "attr", value)
            if (
                len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                yield node, node.args[1].value
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield node, target.attr


def _check_rep203(pc: ProjectContext) -> Iterator[Finding]:
    index = pc.index
    fingerprinted = index.subclass_closure(_FINGERPRINTED_BASES)

    # Self-writes in methods of fingerprinted classes.
    for key in sorted(fingerprinted):
        cls = index.class_of(key)
        if cls is None:
            continue
        ctx = _ctx_for(pc, cls.module)
        if ctx is None:
            continue
        excludes = fingerprinted[key]
        for method_name in sorted(cls.methods):
            if _method_may_mutate(method_name):
                continue
            method = cls.methods[method_name]
            for node, attr in _self_attr_writes(method.node):
                if attr in excludes or attr.startswith("_"):
                    continue
                yield ctx.finding(
                    "REP203",
                    node,
                    f"{cls.name}.{method_name} mutates fingerprinted "
                    f"attribute {attr!r} after construction: the cell cache "
                    "key was computed from the old value, so the mutation "
                    "silently aliases two different cells — return a with_* "
                    "copy instead, or add the attribute to "
                    "FINGERPRINT_EXCLUDE with a justification",
                )

    # External writes through a local variable of a fingerprinted type.
    for info in index.functions():
        if _method_may_mutate(info.qualname.rsplit(".", 1)[-1]):
            continue
        ctx = _ctx_for(pc, info.module)
        if ctx is None:
            continue
        local_types = index.local_class_types(info)
        typed = {
            name: cls
            for name, cls in local_types.items()
            if cls.key in fingerprinted
        }
        if not typed:
            continue
        own_class = info.qualname.split(".", 1)[0] if "." in info.qualname else None
        for node in ast.walk(info.node):
            targets = ()
            if isinstance(node, ast.Assign):
                targets = tuple(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = (node.target,)
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in typed
                ):
                    continue
                cls = typed[target.value.id]
                if own_class == cls.name:
                    continue  # with_*-style sibling construction helpers
                if target.attr in fingerprinted[cls.key] or target.attr.startswith("_"):
                    continue
                yield ctx.finding(
                    "REP203",
                    node,
                    f"{info.qualname} mutates {target.value.id}.{target.attr} "
                    f"on fingerprinted class {cls.name} after construction; "
                    "cells must be immutable once their cache key exists — "
                    "construct with the final value or use a with_* copy",
                )


REP203 = register_rule(
    LintRule(
        id="REP203",
        name="fingerprint-mutation",
        summary="no attribute writes to fingerprinted classes after construction",
        rationale=(
            "Content-addressed caching fingerprints protocol/attack/"
            "population objects at spec time; any later attribute write "
            "de-synchronizes the object from its cache key, so two "
            "logically different cells collide on one entry (or one cell "
            "silently recomputes). Construction (__init__/__post_init__/"
            "__setstate__) and the with_* copy-constructor convention are "
            "the sanctioned write sites; the project-wide pass also "
            "catches external writes through locals whose constructor or "
            "annotation pins a fingerprinted class. Underscore-private "
            "attributes are not flagged — lazy memo caches conventionally "
            "live there, and the runtime half of REP003 cross-references "
            "their fingerprint coverage against live vars()."
        ),
        check=_check_rep203,
        scope="project",
    )
)


# ----------------------------------------------------------------------
# REP204: order-sensitive reduction
# ----------------------------------------------------------------------
_UNORDERED_TAG = "unordered"

#: Resolved call names whose results arrive in nondeterministic order.
_UNORDERED_CALLS = frozenset({("concurrent", "futures", "as_completed")})

#: Reduction callables whose float result depends on operand order.
_ORDERED_REDUCERS = frozenset(
    {
        ("math", "fsum"),
        ("numpy", "sum"),
        ("numpy", "mean"),
        ("numpy", "prod"),
        ("numpy", "dot"),
    }
)


def _rep204_spec(ctx: ModuleContext) -> TaintSpec:
    def source(expr: ast.expr) -> frozenset[str]:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return frozenset({_UNORDERED_TAG})
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in ("set", "frozenset"):
                return frozenset({_UNORDERED_TAG})
            if isinstance(expr.func, ast.Attribute) and expr.func.attr == "imap_unordered":
                return frozenset({_UNORDERED_TAG})
            resolved = ctx.resolve(expr.func)
            if resolved is not None and resolved in _UNORDERED_CALLS:
                return frozenset({_UNORDERED_TAG})
        return frozenset()

    return TaintSpec(source=source)


def _is_ordered_reducer(ctx: ModuleContext, call: ast.Call) -> bool:
    if isinstance(call.func, ast.Name) and call.func.id == "sum":
        return True
    resolved = ctx.resolve(call.func)
    return resolved is not None and resolved in _ORDERED_REDUCERS


def _check_rep204(pc: ProjectContext) -> Iterator[Finding]:
    for ctx in pc.contexts:
        spec = _rep204_spec(ctx)
        module = _module_of(pc.index, ctx)
        table = pc.index.modules.get(module or "")
        if table is None:
            continue
        for qualname in sorted(table.functions):
            func = table.functions[qualname].node
            states = analyze_taint(func, spec)
            for stmt in _placed_statements(func):
                state = states.get(id(stmt), {})
                # sum(...)/fsum(...)/np.mean(...) over an unordered source
                for call in _statement_calls(stmt):
                    if not (call.args and _is_ordered_reducer(ctx, call)):
                        continue
                    if _UNORDERED_TAG in expr_tags(call.args[0], state, spec):
                        name = ast.unparse(call.func)
                        yield ctx.finding(
                            "REP204",
                            call,
                            f"{name}(...) floats-accumulates over an "
                            "unordered source: the result depends on hash "
                            "seed / completion order — sort first "
                            "(sorted(...)) or fold through Welford.merge",
                        )
                # manual `acc += x` accumulation inside an unordered loop
                if isinstance(stmt, (ast.For, ast.AsyncFor)) and (
                    _UNORDERED_TAG in expr_tags(stmt.iter, state, spec)
                ):
                    for inner in ast.walk(stmt):
                        if (
                            isinstance(inner, ast.AugAssign)
                            and isinstance(inner.op, (ast.Add, ast.Sub, ast.Mult))
                            and isinstance(inner.target, ast.Name)
                        ):
                            yield ctx.finding(
                                "REP204",
                                inner,
                                f"accumulating {inner.target.id!r} over an "
                                "unordered iteration: float folds are "
                                "order-sensitive — iterate sorted(...) or "
                                "merge per-item Welford states",
                            )


REP204 = register_rule(
    LintRule(
        id="REP204",
        name="order-sensitive-reduction",
        summary="no float accumulation over unordered/parallel result order",
        rationale=(
            "Float addition is not associative: summing the same values in "
            "set order, as_completed order or imap_unordered order yields "
            "different bits per run, which breaks the byte-stable tables "
            "and cache entries everything downstream diffs against. "
            "parallel_map results are order-preserving and Welford.merge "
            "folds shard states in a fixed sequence — reductions that "
            "bypass both (reducing a set, draining as_completed) must sort "
            "before folding. The taint engine tracks unordered values "
            "through assignments and list()/tuple() wraps; sorted(...) "
            "cleanses."
        ),
        check=_check_rep204,
        scope="project",
    )
)


# ----------------------------------------------------------------------
# REP205: entropy re-export
# ----------------------------------------------------------------------
def _is_banned_entropy(dotted: tuple[str, ...]) -> bool:
    return dotted in _REP002_CALLS or any(
        dotted[: len(prefix)] == prefix for prefix in _REP002_PREFIXES
    )


def _check_rep205(pc: ProjectContext) -> Iterator[Finding]:
    index = pc.index
    for ctx in pc.contexts:
        if ctx.relpath in REP002_ALLOWED_MODULES:
            continue
        module = _module_of(index, ctx)
        if module is None:
            continue
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = name_chain(node.func)
            if chain is None:
                continue
            local = ctx.resolve(node.func)
            if local is not None and _is_banned_entropy(local):
                continue  # the per-module pass (REP002) already flags this
            terminal = index.external_name(module, chain)
            if terminal is None or not _is_banned_entropy(terminal):
                continue
            yield ctx.finding(
                "REP205",
                node,
                f"{'.'.join(chain)}() resolves through aliases to "
                f"{'.'.join(terminal)} — a REP002-banned entropy source "
                "laundered past the per-module pass; call a deterministic "
                "alternative or justify it in the baseline",
            )


REP205 = register_rule(
    LintRule(
        id="REP205",
        name="entropy-re-export",
        summary="no aliased/re-exported wall-clock or entropy calls",
        rationale=(
            "REP002 resolves import aliases within one module, so `from "
            "time import time as now` is caught — but `clock = time.time` "
            "at module level, or `from helpers import clock` where helpers "
            "did the aliasing, is invisible to any single-file pass. The "
            "project index follows assignment aliases and re-export chains "
            "across modules to the terminal callable; calls landing on a "
            "REP002-banned entropy source are flagged at the call site "
            "with the full provenance. The REP002 module allowlist (shard "
            "claim bookkeeping, HTTP Date headers) applies to the calling "
            "module."
        ),
        check=_check_rep205,
        scope="project",
    )
)
