"""The AST checkers behind every registered ``REPnnn`` rule.

Each checker is a plain generator over one
:class:`~repro.lint.context.ModuleContext`; registration at import time
(:func:`repro.lint.registry.register_rule`) makes the set of enforced
contracts explicit and individually selectable.  The rules encode the
determinism and cache contracts the rest of the repo sells:

* **REP001** ``unseeded-randomness`` — all randomness flows through
  :mod:`repro._rng`'s ``SeedSequence`` spawning; module-level numpy
  randomness, argument-less ``default_rng()`` and stdlib :mod:`random`
  break ``workers=N == workers=1`` bit-identity.
* **REP002** ``wall-clock-entropy`` — wall clocks, OS entropy and UUIDs
  must not feed cell specs or trial execution; the allowlisted modules
  (shard claim bookkeeping, HTTP Date headers) use the clock as
  operational metadata only.
* **REP003** ``fingerprint-coverage`` (AST half) — ``FINGERPRINT_EXCLUDE``
  entries must name real attributes, and fingerprinted classes must not
  store callables in attributes (``fingerprint_object`` silently skips
  them, aliasing two different cells under one cache key).  The runtime
  half lives in :mod:`repro.lint.contracts`.
* **REP004** ``trial-task-picklability`` — trial-task classes and
  ``parallel_map`` callables must be importable module-level objects or
  the process pool cannot pickle them.
* **REP005** ``unordered-iteration`` — iterating sets or unsorted
  filesystem listings produces platform/hash-seed dependent order.
* **REP101** ``mutable-default-argument`` / **REP102** ``bare-except`` —
  generic hygiene.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import ALL_TIERS, LintRule, register_rule

__all__ = [
    "REP001",
    "REP002",
    "REP003",
    "REP004",
    "REP005",
    "REP101",
    "REP102",
    "REP002_ALLOWED_MODULES",
    "RNG_MODULES",
]


# ----------------------------------------------------------------------
# REP001: unseeded randomness
# ----------------------------------------------------------------------
#: Modules allowed to construct generators from nothing: the one place
#: ``rng=None -> fresh OS-seeded generator`` is the documented contract.
RNG_MODULES = frozenset({"repro/_rng.py"})

#: ``numpy.random`` attributes that are constructors/machinery rather
#: than draws off the legacy global state.  Everything else —
#: ``np.random.normal``, ``np.random.shuffle``, ``np.random.seed`` — uses
#: or reseeds the hidden module-level generator.
_NP_RANDOM_MACHINERY = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # explicit legacy object; flagged separately below
    }
)

#: Legacy constructions that are never acceptable, even with arguments.
_NP_RANDOM_FORBIDDEN = frozenset({"seed", "RandomState", "set_state"})


def _check_rep001(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.relpath in RNG_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = node.names[0].name if isinstance(node, ast.Import) else node.module
            roots = (
                [alias.name.split(".")[0] for alias in node.names]
                if isinstance(node, ast.Import)
                else [(node.module or "").split(".")[0]]
            )
            if "random" in roots:
                yield ctx.finding(
                    "REP001",
                    node,
                    f"stdlib 'random' import ({module}): all randomness must flow "
                    "through repro._rng SeedSequence streams",
                )
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None or len(resolved) < 2:
            continue
        if resolved[:2] != ("numpy", "random"):
            continue
        attr = resolved[-1] if len(resolved) > 2 else None
        if attr is None:
            continue
        if attr in _NP_RANDOM_FORBIDDEN:
            yield ctx.finding(
                "REP001",
                node,
                f"numpy.random.{attr} touches the hidden global generator; "
                "pass explicit Generator/SeedSequence objects instead",
            )
        elif attr == "default_rng":
            if not node.args and not node.keywords:
                yield ctx.finding(
                    "REP001",
                    node,
                    "default_rng() with no seed draws OS entropy; thread an "
                    "rng/SeedSequence argument through (repro._rng.as_generator)",
                )
        elif attr not in _NP_RANDOM_MACHINERY:
            yield ctx.finding(
                "REP001",
                node,
                f"module-level numpy.random.{attr}(...) draws from the hidden "
                "global state; use a Generator from repro._rng",
            )


REP001 = register_rule(
    LintRule(
        id="REP001",
        name="unseeded-randomness",
        summary="no unseeded or module-level randomness outside repro._rng",
        rationale=(
            "Every reproducibility guarantee (workers=N bit-identical to "
            "workers=1, cacheable cells keyed by their per-trial SeedSequence "
            "identities) assumes randomness flows exclusively through "
            "repro._rng's SeedSequence spawning. Module-level numpy.random "
            "calls and stdlib random share hidden global state across trials "
            "and processes; default_rng() with no argument draws OS entropy "
            "that can never be replayed."
        ),
        check=_check_rep001,
    )
)


# ----------------------------------------------------------------------
# REP002: wall-clock / entropy sources
# ----------------------------------------------------------------------
#: Modules exempt from REP002, with the justification for each.  Claim
#: bookkeeping in the shard coordinator is *about* wall-clock time (claim
#: staleness TTLs, report stamps), and the HTTP front end stamps RFC 7231
#: ``Date`` response headers; none of it enters cell identities or
#: streamed aggregation state.
REP002_ALLOWED_MODULES: dict[str, str] = {
    "repro/sim/shard.py": (
        "claim bookkeeping: TTL staleness and report stamps are coordination "
        "metadata, never part of a cell spec or trial"
    ),
    "repro/serve/http.py": (
        "RFC 7231 Date response header: transport metadata stamped at "
        "serialization time, never part of service or aggregation state"
    ),
}

#: Exact dotted names whose call is a wall-clock/entropy read.
_REP002_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("os", "urandom"),
        ("os", "getrandom"),
        ("datetime", "datetime", "now"),
        ("datetime", "datetime", "utcnow"),
        ("datetime", "datetime", "today"),
        ("datetime", "date", "today"),
        ("uuid", "uuid1"),
        ("uuid", "uuid3"),
        ("uuid", "uuid4"),
        ("uuid", "uuid5"),
        ("uuid", "getnode"),
    }
)

#: Module prefixes that are entropy sources wholesale.
_REP002_PREFIXES = (("secrets",),)


def _check_rep002(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.relpath in REP002_ALLOWED_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        dotted = ".".join(resolved)
        if resolved in _REP002_CALLS or any(
            resolved[: len(prefix)] == prefix for prefix in _REP002_PREFIXES
        ):
            yield ctx.finding(
                "REP002",
                node,
                f"{dotted}() is a wall-clock/entropy source; cell specs and "
                "trial execution must be pure functions of their seeds "
                "(time.monotonic/perf_counter are fine for durations)",
            )


REP002 = register_rule(
    LintRule(
        id="REP002",
        name="wall-clock-entropy",
        summary="no wall-clock or OS-entropy reads in spec/trial code",
        rationale=(
            "A cell's canonical cache key is a pure function of its spec; a "
            "timestamp, UUID or urandom draw leaking into a spec or a trial "
            "makes the cell unreproducible and the key unstable (every run a "
            "cache miss). Duration measurement (time.monotonic, "
            "time.perf_counter) is allowed; identity must never come from the "
            "clock. Allowlisted modules (REP002_ALLOWED_MODULES) use the "
            "clock as operational metadata only: shard claim TTLs/report "
            "stamps and the HTTP front end's Date headers never enter cell "
            "specs or aggregation state."
        ),
        check=_check_rep002,
    )
)


# ----------------------------------------------------------------------
# REP003: fingerprint coverage (AST half)
# ----------------------------------------------------------------------
#: Base-class names that mark a class as cache-fingerprinted via
#: ``fingerprint_object`` (subclass sets widen at runtime; the AST half
#: matches by name so fixtures work without imports).
_FINGERPRINTED_BASES = frozenset(
    {
        "FrequencyOracle",
        "PoisoningAttack",
        "ItemSamplingAttack",
        "KeyValueProtocol",
        "KVPoisoningAttack",
    }
)


def _string_elements(node: ast.AST) -> Optional[list[tuple[str, ast.AST]]]:
    """The literal string elements of a set/list/tuple/frozenset node."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "frozenset" and len(node.args) == 1:
            return _string_elements(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        out = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            out.append((element.value, element))
        return out
    return None


def _class_attribute_names(cls: ast.ClassDef) -> set[str]:
    """Attribute names a class instance carries: dataclass-style annotated
    class fields plus ``self.X`` assignments in ``__init__``/``__post_init__``."""
    attrs: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            attrs.add(stmt.target.id)
        if isinstance(stmt, ast.FunctionDef) and stmt.name in ("__init__", "__post_init__"):
            for node in ast.walk(stmt):
                targets: Sequence[ast.AST] = ()
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = (node.target,)
                elif isinstance(node, ast.Call):
                    # object.__setattr__(self, "name", ...) — the frozen-
                    # dataclass idiom used by __post_init__ bodies.
                    resolved = [
                        a.value
                        for a in node.args[1:2]
                        if isinstance(a, ast.Constant) and isinstance(a.value, str)
                    ]
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "__setattr__"
                        and resolved
                    ):
                        attrs.add(resolved[0])
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
    return attrs


def _is_fingerprinted_class(cls: ast.ClassDef, has_exclude: bool) -> bool:
    if has_exclude:
        return True
    for base in cls.bases:
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if name in _FINGERPRINTED_BASES:
            return True
    return False


def _check_rep003(ctx: ModuleContext) -> Iterator[Finding]:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        exclude_node = None
        for stmt in cls.body:
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if isinstance(target, ast.Name) and target.id == "FINGERPRINT_EXCLUDE":
                exclude_node = value
        excluded: set[str] = set()
        if exclude_node is not None:
            elements = _string_elements(exclude_node)
            if elements is None:
                yield ctx.finding(
                    "REP003",
                    exclude_node,
                    f"{cls.name}.FINGERPRINT_EXCLUDE must be a literal "
                    "set/frozenset of attribute-name strings so coverage is "
                    "statically checkable",
                )
            else:
                attrs = _class_attribute_names(cls)
                for name, node in elements:
                    excluded.add(name)
                    if name not in attrs:
                        yield ctx.finding(
                            "REP003",
                            node,
                            f"{cls.name}.FINGERPRINT_EXCLUDE names {name!r}, "
                            "which is not an attribute this class assigns — "
                            "a rotted exclude silently stops guarding anything",
                        )
        if not _is_fingerprinted_class(cls, exclude_node is not None):
            continue
        for stmt in cls.body:
            if not (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name in ("__init__", "__post_init__")
            ):
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if target.attr in excluded:
                        continue
                    if isinstance(node.value, ast.Lambda):
                        yield ctx.finding(
                            "REP003",
                            node,
                            f"{cls.name}.{target.attr} stores a lambda: "
                            "fingerprint_object silently skips callables, so "
                            "two cells differing only here share one cache "
                            "key — store data, or add the attribute to "
                            "FINGERPRINT_EXCLUDE with a justification",
                        )


REP003 = register_rule(
    LintRule(
        id="REP003",
        name="fingerprint-coverage",
        summary="every attribute of a fingerprinted class is hashed or excluded",
        rationale=(
            "Content-addressed cell caching is only sound if every attribute "
            "that can change a result enters fingerprint_object's traversal. "
            "The AST half checks that FINGERPRINT_EXCLUDE entries name real "
            "attributes (a typo silently unguards the cache) and that "
            "fingerprinted classes never store callables (which "
            "fingerprint_object skips, aliasing distinct cells). The runtime "
            "half (repro.lint.contracts) instantiates the real protocol / "
            "attack / dataset / population classes and cross-references live "
            "vars() against the produced fingerprints, catching fields added "
            "to classes with bespoke fingerprint functions "
            "(fingerprint_dataset, fingerprint_kv_population)."
        ),
        check=_check_rep003,
    )
)


# ----------------------------------------------------------------------
# REP004: trial-task picklability
# ----------------------------------------------------------------------
def _lambda_class_defaults(cls: ast.ClassDef) -> Iterator[ast.AST]:
    """Class-body field defaults that are lambdas (unpicklable)."""
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.value, ast.Lambda):
            yield stmt.value
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
            yield stmt.value


def _check_rep004(ctx: ModuleContext) -> Iterator[Finding]:
    reported: set[tuple[int, int]] = set()

    def report(node: ast.AST, message: str) -> Iterator[Finding]:
        location = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if location not in reported:
            reported.add(location)
            yield ctx.finding("REP004", node, message)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name.endswith("Task"):
            nested_in = next(
                (
                    a
                    for a in ctx.ancestors(node)
                    if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                ),
                None,
            )
            if nested_in is not None:
                yield from report(
                    node,
                    f"trial-task class {node.name} is defined inside a "
                    "function: the process pool pickles tasks by qualified "
                    "name, so function-local classes cannot ship to workers",
                )
            for default in _lambda_class_defaults(node):
                yield from report(
                    default,
                    f"trial-task class {node.name} has a lambda field default; "
                    "lambdas cannot pickle — use a module-level function",
                )
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_functions = {
                inner.name
                for inner in ast.walk(node)
                if inner is not node
                and isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for call in ast.walk(node):
                if not (isinstance(call, ast.Call) and call.args):
                    continue
                resolved = ctx.resolve(call.func)
                if resolved is None or resolved[-1] != "parallel_map":
                    continue
                first = call.args[0]
                if isinstance(first, ast.Lambda):
                    yield from report(
                        first,
                        "parallel_map task function is a lambda: lambdas "
                        "cannot pickle to pool workers",
                    )
                elif isinstance(first, ast.Name) and first.id in local_functions:
                    yield from report(
                        first,
                        f"parallel_map task function {first.id!r} is defined "
                        "inside a function (a closure): pool workers import "
                        "tasks by qualified name, so it must be module-level",
                    )
    # Module-level lambda handed to parallel_map (outside any function).
    for call in ast.walk(ctx.tree):
        if (
            isinstance(call, ast.Call)
            and call.args
            and isinstance(call.args[0], ast.Lambda)
        ):
            resolved = ctx.resolve(call.func)
            if resolved is not None and resolved[-1] == "parallel_map":
                yield from report(
                    call.args[0],
                    "parallel_map task function is a lambda: lambdas cannot "
                    "pickle to pool workers",
                )


REP004 = register_rule(
    LintRule(
        id="REP004",
        name="trial-task-picklability",
        summary="trial tasks and parallel_map callables must be module-level",
        rationale=(
            "The engine fans trials out through a process pool; tasks and "
            "task functions are pickled by qualified name. A *Task class "
            "defined inside a function, a lambda field default, or a closure "
            "passed to parallel_map works under workers=1 and then explodes "
            "(or silently serializes stale state) under workers=N — exactly "
            "the failure mode that only surfaces on the one machine shape "
            "the tests did not run."
        ),
        check=_check_rep004,
        tiers=ALL_TIERS,
    )
)


# ----------------------------------------------------------------------
# REP005: unordered iteration
# ----------------------------------------------------------------------
#: Attribute calls that enumerate a directory in OS-defined order.
_FS_ATTRS = frozenset({"glob", "rglob", "iterdir"})

#: Resolved module functions that enumerate in OS-defined order.
_FS_CALLS = frozenset(
    {
        ("os", "listdir"),
        ("os", "scandir"),
        ("os", "walk"),
        ("glob", "glob"),
        ("glob", "iglob"),
    }
)


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _check_rep005(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        # Iterating a set: `for x in {...}` / comprehension generators.
        iters: list[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for candidate in iters:
            if _is_set_expression(candidate):
                yield ctx.finding(
                    "REP005",
                    candidate,
                    "iterating a set: element order depends on the hash seed; "
                    "wrap in sorted(...) before any spec/row emission",
                )
        # Materializing a set in order: list({...}) / tuple({...}).
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and _is_set_expression(node.args[0])
        ):
            yield ctx.finding(
                "REP005",
                node,
                f"{node.func.id}() over a set captures hash-seed dependent "
                "order; use sorted(...)",
            )
        # Filesystem enumeration without an ordering wrapper.
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            is_fs = False
            if isinstance(node.func, ast.Attribute) and node.func.attr in _FS_ATTRS:
                is_fs = True
            elif resolved is not None and resolved in _FS_CALLS:
                is_fs = True
            if is_fs and not ctx.enclosing_statement_has_sorted(node):
                name = node.func.attr if isinstance(node.func, ast.Attribute) else (
                    ".".join(resolved or ())
                )
                yield ctx.finding(
                    "REP005",
                    node,
                    f"{name}(...) enumerates the filesystem in OS-defined "
                    "order; wrap in sorted(...) so output and cache scans are "
                    "deterministic",
                )


REP005 = register_rule(
    LintRule(
        id="REP005",
        name="unordered-iteration",
        summary="no hash-order or filesystem-order iteration in emitted output",
        rationale=(
            "Row tables, spec serialization and cache maintenance must be "
            "byte-stable across runs and machines. Set iteration order "
            "changes with PYTHONHASHSEED; directory listings change with the "
            "filesystem. Both belong behind sorted(...). Dict iteration is "
            "deliberately not flagged: insertion order is a language "
            "guarantee and the cache's canonical JSON already sorts keys."
        ),
        check=_check_rep005,
    )
)


# ----------------------------------------------------------------------
# REP101/REP102: generic hygiene
# ----------------------------------------------------------------------
def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set")
        and not node.args
        and not node.keywords
    )


def _check_rep101(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                name = getattr(node, "name", "<lambda>")
                yield ctx.finding(
                    "REP101",
                    default,
                    f"mutable default argument in {name}(): the object is "
                    "shared across calls; default to None and construct inside",
                )


REP101 = register_rule(
    LintRule(
        id="REP101",
        name="mutable-default-argument",
        summary="no list/dict/set literals as argument defaults",
        rationale=(
            "A mutable default is evaluated once and shared by every call; "
            "state leaking between trials or cells through one is a "
            "determinism bug that depends on call history."
        ),
        check=_check_rep101,
        tiers=ALL_TIERS,
    )
)


def _check_rep102(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ctx.finding(
                "REP102",
                node,
                "bare 'except:' swallows SystemExit/KeyboardInterrupt and "
                "hides real failures; catch the narrowest exception that the "
                "handler can actually recover from",
            )


REP102 = register_rule(
    LintRule(
        id="REP102",
        name="bare-except",
        summary="no bare except clauses",
        rationale=(
            "A bare except hides the very corruption signals (unpicklable "
            "task, truncated cache entry) the rest of the stack is designed "
            "to surface, and it catches SystemExit/KeyboardInterrupt."
        ),
        check=_check_rep102,
        tiers=ALL_TIERS,
    )
)
