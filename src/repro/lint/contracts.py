"""Runtime half of REP003: live fingerprint-coverage cross-referencing.

The AST half of REP003 (:mod:`repro.lint.checks`) can only see what a
class *assigns*; whether the cache actually *hashes* it is a property of
:func:`repro.sim.cache.fingerprint_object`'s traversal at runtime.  This
module instantiates the real protocol / attack / key-value / dataset
classes through a curated factory table, fingerprints each instance, and
cross-references live ``vars()`` against the produced fingerprint:

* an instance attribute absent from the fingerprint that is **not** RNG
  machinery (the documented skip) and **not** in ``FINGERPRINT_EXCLUDE``
  means the cache silently ignores result-shaping state — two distinct
  cells would share one key;
* a fingerprint value that fell back to a memory-address ``repr`` (the
  ``<... object at 0x...>`` shape) is unstable across processes — the
  same cell would never hit its own cache entry;
* classes with **bespoke** fingerprint functions
  (:func:`~repro.sim.cache.fingerprint_dataset`,
  :func:`~repro.sim.cache.fingerprint_kv_population`) are checked
  field-by-field: every dataclass field must appear in the fingerprint,
  so adding a field without extending the bespoke function is caught the
  day it lands.

Factories instantiate with pinned seeds (:func:`repro._rng.as_generator`)
so the contract scan itself is deterministic.
"""

from __future__ import annotations

import dataclasses
import inspect
import pathlib
import re
from typing import Any, Callable, Iterator, Optional

import numpy as np

from repro.lint.findings import Finding

#: ``repr`` fallbacks carrying a process-local memory address.
_ADDRESS_REPR_RE = re.compile(r" at 0x[0-9a-fA-F]+>")

#: Types :func:`repro.sim.cache._fingerprint_value` documents as skipped
#: because trial randomness flows through the spec's seed list instead.
_RNG_MACHINERY = (np.random.Generator, np.random.BitGenerator, np.random.SeedSequence)


def _class_location(cls: type) -> tuple[str, int]:
    """``(path, line)`` of a class definition, repo-relative if possible."""
    try:
        source = inspect.getsourcefile(cls) or "<unknown>"
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):  # pragma: no cover - C extensions only
        return "<unknown>", 1
    path = pathlib.Path(source)
    try:
        path = path.relative_to(pathlib.Path.cwd())
    except ValueError:
        pass
    return path.as_posix(), line


def _finding(cls: type, message: str) -> Finding:
    path, line = _class_location(cls)
    return Finding(path=path, line=line, col=0, rule="REP003", message=message)


def _unstable_reprs(value: Any, trail: str) -> Iterator[str]:
    """Dotted trails inside a fingerprint whose value is an address repr."""
    if isinstance(value, str):
        if _ADDRESS_REPR_RE.search(value):
            yield trail
    elif isinstance(value, dict):
        for key, sub in value.items():
            yield from _unstable_reprs(sub, f"{trail}.{key}" if trail else str(key))
    elif isinstance(value, (list, tuple)):
        for index, sub in enumerate(value):
            yield from _unstable_reprs(sub, f"{trail}[{index}]")


def check_fingerprint_object(label: str, obj: Any) -> Iterator[Finding]:
    """Cross-reference ``vars(obj)`` against ``fingerprint_object(obj)``."""
    from repro.sim.cache import fingerprint_object

    cls = type(obj)
    fingerprint = fingerprint_object(obj)
    exclude = getattr(cls, "FINGERPRINT_EXCLUDE", frozenset())
    for attr, value in sorted(vars(obj).items()):
        if attr in fingerprint or attr in exclude:
            continue
        if isinstance(value, _RNG_MACHINERY):
            continue  # the documented skip: randomness rides on the spec seeds
        if callable(value) and not isinstance(value, type):
            yield _finding(
                cls,
                f"{label}: attribute {attr!r} holds a callable that "
                "fingerprint_object silently skips; cells differing only in "
                f"{attr!r} would share one cache key — store data, or add it "
                "to FINGERPRINT_EXCLUDE with a justification",
            )
        else:
            yield _finding(
                cls,
                f"{label}: attribute {attr!r} (value type "
                f"{type(value).__name__}) is missing from the fingerprint "
                "and is not declared in FINGERPRINT_EXCLUDE",
            )
    for trail in _unstable_reprs(fingerprint, ""):
        yield _finding(
            cls,
            f"{label}: fingerprint entry {trail!r} fell back to a "
            "memory-address repr, which differs every process — the cell "
            "key is unstable, every run is a cache miss",
        )


def check_bespoke_fingerprint(
    label: str, obj: Any, fingerprint: dict[str, Any]
) -> Iterator[Finding]:
    """Every dataclass field of ``obj`` must appear in its bespoke fingerprint."""
    cls = type(obj)
    for field in dataclasses.fields(obj):
        if field.name not in fingerprint:
            yield _finding(
                cls,
                f"{label}: dataclass field {field.name!r} is absent from its "
                f"bespoke fingerprint ({sorted(fingerprint)}); extend the "
                "fingerprint function before the cache aliases cells",
            )
    for trail in _unstable_reprs(fingerprint, ""):
        yield _finding(
            cls,
            f"{label}: fingerprint entry {trail!r} is a memory-address repr "
            "and differs every process",
        )


def _fingerprinted_instances() -> Iterator[tuple[str, Any]]:
    """``(label, instance)`` pairs for every fingerprint_object class.

    One representative per concrete class the engine ever fingerprints:
    the protocol registry's oracles, every exported attack (including the
    wrapping/composing ones), and the key-value protocol and attack.
    Seeds are pinned so the scan never consumes OS entropy.
    """
    from repro._rng import as_generator
    from repro.attacks import (
        AdaptiveAttack,
        InputPoisoningAttack,
        ManipAttack,
        MGAAttack,
        MultiAttacker,
        RIAAttack,
        RPAAttack,
    )
    from repro.kv.attack import KVPoisoningAttack
    from repro.kv.protocol import KeyValueProtocol
    from repro.protocols import BLH, GRR, OLH, OUE, SUE, BinaryRandomizedResponse, Harmony

    d = 8
    yield "protocols.GRR", GRR(epsilon=1.0, domain_size=d)
    yield "protocols.OUE", OUE(epsilon=1.0, domain_size=d)
    yield "protocols.OLH", OLH(epsilon=1.0, domain_size=d, cohort=16)
    yield "protocols.SUE", SUE(epsilon=1.0, domain_size=d)
    yield "protocols.BLH", BLH(epsilon=1.0, domain_size=d)
    yield "protocols.BinaryRandomizedResponse", BinaryRandomizedResponse(epsilon=1.0)
    yield "protocols.Harmony", Harmony(epsilon=1.0)
    yield "attacks.MGAAttack", MGAAttack(d, r=3, rng=as_generator(11))
    yield "attacks.AdaptiveAttack", AdaptiveAttack(
        d, concentration=2.0, rng=as_generator(12)
    )
    yield "attacks.ManipAttack", ManipAttack(d, rng=as_generator(13))
    yield "attacks.RIAAttack", RIAAttack(d)
    yield "attacks.RPAAttack", RPAAttack(d)
    yield "attacks.InputPoisoningAttack", InputPoisoningAttack(
        MGAAttack(d, r=3, rng=as_generator(14))
    )
    yield "attacks.MultiAttacker", MultiAttacker(
        [MGAAttack(d, r=3, rng=as_generator(15)), RPAAttack(d)]
    )
    yield "kv.KeyValueProtocol", KeyValueProtocol(eps_key=0.5, eps_value=0.5, num_keys=d)
    yield "kv.KVPoisoningAttack", KVPoisoningAttack(d, rng=as_generator(16))


def _bespoke_instances() -> Iterator[tuple[str, Any, dict[str, Any]]]:
    """``(label, instance, fingerprint)`` for bespoke-fingerprint classes."""
    from repro.datasets.base import Dataset
    from repro.sim.cache import fingerprint_dataset, fingerprint_kv_population
    from repro.sim.scenarios import KVPopulation

    dataset = Dataset(name="lint-probe", counts=np.array([3, 2, 1, 4], dtype=np.int64))
    yield "datasets.Dataset", dataset, fingerprint_dataset(dataset)

    population = KVPopulation(
        name="lint-probe-kv",
        frequencies=np.array([0.4, 0.3, 0.2, 0.1]),
        means=np.array([0.5, -0.25, 0.0, 1.0]),
        num_users=1000,
    )
    yield (
        "scenarios.KVPopulation",
        population,
        fingerprint_kv_population(population),
    )


def check_contracts(
    extra_objects: Optional[
        Callable[[], Iterator[tuple[str, Any]]]
    ] = None,
) -> list[Finding]:
    """Run the full runtime fingerprint-coverage scan.

    ``extra_objects`` lets tests inject planted-violation instances
    through the same machinery the real classes go through.
    """
    findings: list[Finding] = []
    for label, obj in _fingerprinted_instances():
        findings.extend(check_fingerprint_object(label, obj))
    for label, obj, fingerprint in _bespoke_instances():
        findings.extend(check_bespoke_fingerprint(label, obj, fingerprint))
    if extra_objects is not None:
        for label, obj in extra_objects():
            findings.extend(check_fingerprint_object(label, obj))
    return sorted(findings)
