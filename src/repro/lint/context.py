"""Per-module analysis context shared by every AST lint rule.

One :class:`ModuleContext` is built per scanned file and handed to each
rule checker.  It owns the parsed tree plus the cross-cutting machinery
every rule needs:

* **name resolution** — an import-alias map built from the module's
  ``import``/``from`` statements, so ``np.random.default_rng`` and
  ``numpy.random.default_rng`` (or ``from time import time; time()``)
  resolve to the same canonical dotted name (:meth:`resolve`);
* **parent links** — ``child -> parent`` AST pointers
  (:meth:`parent`), used e.g. to accept ``sorted(path.glob(...))``
  while rejecting a bare ``path.glob(...)`` iteration;
* **suppressions** — ``# repro-lint: ignore[REPnnn]`` line comments and
  the ``# repro-lint: skip-file`` escape hatch, parsed once
  (:meth:`is_suppressed`);
* **finding construction** anchored to AST nodes with the source line
  attached for baseline matching (:meth:`finding`).
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Iterator, Optional

from repro.lint.findings import Finding

#: Inline suppression: ``# repro-lint: ignore[REP001]`` (one or more
#: comma-separated ids) or a blanket ``# repro-lint: ignore``.
_IGNORE_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")

#: Whole-file opt-out, honored only within the first few lines.
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

#: How many leading lines may carry ``skip-file``.
_SKIP_FILE_WINDOW = 5


def package_relpath(path: pathlib.Path) -> str:
    """``path`` rendered relative to the ``repro`` package when inside it.

    Rule scopes (the ``_rng.py`` randomness exemption, the ``shard.py``
    wall-clock allowlist) are declared against package-relative names like
    ``repro/sim/shard.py`` so they hold no matter where the tree is
    checked out or installed.  Files outside any ``repro`` directory keep
    their path as given (fixtures, benchmarks).
    """
    parts = path.as_posix().split("/")
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[start:])
    return path.as_posix()


class ModuleContext:
    """Everything rule checkers need to know about one parsed module."""

    def __init__(self, path: pathlib.Path, source: str, display_path: str) -> None:
        self.path = path
        self.display_path = display_path
        self.relpath = package_relpath(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[int, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        self.aliases = self._collect_aliases()
        self._suppressions = self._collect_suppressions()
        self.skip_file = any(
            _SKIP_FILE_RE.search(line) for line in self.lines[:_SKIP_FILE_WINDOW]
        )

    # -- imports and name resolution -----------------------------------
    def _collect_aliases(self) -> dict[str, tuple[str, ...]]:
        aliases: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = tuple(alias.name.split("."))
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c.
                    if alias.asname is not None:
                        aliases[alias.asname] = target
                    else:
                        aliases[target[0]] = target[:1]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                base = tuple(node.module.split("."))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    aliases[alias.asname or alias.name] = base + (alias.name,)
        return aliases

    def resolve(self, node: ast.AST) -> Optional[tuple[str, ...]]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        ``np.random.default_rng`` resolves to ``("numpy", "random",
        "default_rng")`` given ``import numpy as np``; a chain whose base
        is not a plain name (a call result, a subscript) resolves to
        ``None`` — rules treat that as "not a module-level access".
        """
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(node.id)
        chain.reverse()
        head = self.aliases.get(chain[0])
        if head is not None:
            return head + tuple(chain[1:])
        return tuple(chain)

    # -- structure helpers ---------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (``None`` for the module root)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk ``node``'s ancestors from parent to module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_statement_has_sorted(self, node: ast.AST) -> bool:
        """Whether an ancestor ``sorted(...)`` call wraps ``node`` before
        the enclosing statement — i.e. the value is ordered before use."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return False
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id == "sorted"
            ):
                return True
        return False

    # -- suppressions ---------------------------------------------------
    def _collect_suppressions(self) -> dict[int, Optional[frozenset[str]]]:
        """``line -> suppressed rule ids`` (``None`` = every rule)."""
        out: dict[int, Optional[frozenset[str]]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _IGNORE_RE.search(line)
            if not match:
                continue
            if match.group(1) is None:
                out[number] = None
            else:
                ids = frozenset(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
                out[number] = ids or None
        return out

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether an inline comment on ``line`` suppresses ``rule_id``."""
        if line not in self._suppressions:
            return False
        ids = self._suppressions[line]
        return ids is None or rule_id in ids

    # -- finding construction ------------------------------------------
    def code_at(self, line: int) -> str:
        """The stripped source text of 1-based ``line`` (baseline key)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for ``rule_id`` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.display_path,
            line=line,
            col=col,
            rule=rule_id,
            message=message,
            code=self.code_at(line),
        )
