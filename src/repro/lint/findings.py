"""The unit of lint output: one :class:`Finding` per contract violation.

A finding pins a rule id to an exact source location plus a one-line
message, and knows how to render itself in the two output formats the
``lint`` CLI offers — plain text for humans and GitHub workflow
annotations (``::error file=...``) for CI.  Findings order by location so
reports are stable regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file as scanned (repo-relative where possible),
    ``line``/``col`` the 1-based line and 0-based column of the offending
    node, ``rule`` the registered rule id (e.g. ``"REP001"``), ``message``
    the human explanation, and ``code`` the stripped source line —
    baseline entries match on it (see :mod:`repro.lint.baseline`) so
    unrelated line-number churn does not invalidate a baseline.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    code: str = field(default="", compare=False)

    def render_text(self) -> str:
        """The ``path:line:col: RULE message`` human rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def render_github(self) -> str:
        """The GitHub Actions workflow-annotation rendering.

        Emits an ``::error`` command so the finding surfaces inline on
        the PR diff; the message is sanitized per the workflow-command
        escaping rules (``%``, CR and LF cannot appear raw).
        """
        message = (
            f"{self.rule} {self.message}"
            .replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title=repro-lint {self.rule}::{message}"
        )
