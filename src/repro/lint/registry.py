"""The lint-rule registry: named, documented, individually selectable rules.

Mirrors the scenario registry (:func:`repro.sim.scenarios.register_scenario`):
every determinism/cache contract the repo enforces is one registered
:class:`LintRule` — an id (``REPnnn``), a slug, a one-line summary, a
rationale paragraph (rendered into ``docs/lint.rst``'s rule catalog), and
a checker callable.  The runner (:mod:`repro.lint.runner`) executes every
registered rule over each module; adding a new contract is one
:func:`register_rule` call, not a fork of the runner.

Checkers come in two shapes:

* **AST checkers** receive a :class:`repro.lint.context.ModuleContext`
  (parsed tree + import-alias map + parent links) and yield
  :class:`~repro.lint.findings.Finding` objects for one module;
* the **contract checker** of REP003 additionally has a runtime half
  (:mod:`repro.lint.contracts`) that imports the real classes and
  cross-references live ``vars()`` against the cache fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.exceptions import InvalidParameterError
from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (context -> registry)
    from repro.lint.context import ModuleContext


@dataclass(frozen=True)
class LintRule:
    """One registered determinism/cache contract.

    ``id`` is the stable code suppressions and baselines reference
    (``REPnnn``), ``name`` a kebab-case slug, ``summary`` the one-liner
    shown by ``lint --list-rules``, ``rationale`` the invariant the rule
    guards (rendered in the docs catalog), and ``check`` the per-module
    AST checker.
    """

    id: str
    name: str
    summary: str
    rationale: str
    check: Callable[["ModuleContext"], Iterable[Finding]]


#: Registered rules by id, in registration order (the order reports use).
RULES: dict[str, LintRule] = {}


def register_rule(rule: LintRule) -> LintRule:
    """Add ``rule`` to :data:`RULES`; ids must be unique.

    Returns the rule so modules can keep a handle on what they register.
    """
    if rule.id in RULES:
        raise InvalidParameterError(f"lint rule id {rule.id!r} is already taken")
    RULES[rule.id] = rule
    return rule


def rule_ids() -> tuple[str, ...]:
    """Registered rule ids, in registration order."""
    return tuple(RULES)


def resolve_rules(select: Iterable[str] | None = None) -> tuple[LintRule, ...]:
    """The rules a run should execute: all of them, or the ``select`` ids.

    Unknown ids raise so a typo in ``--select`` (or in a test) fails
    loudly instead of silently checking nothing.
    """
    if select is None:
        return tuple(RULES.values())
    out = []
    for rule_id in select:
        if rule_id not in RULES:
            raise InvalidParameterError(
                f"unknown lint rule {rule_id!r}; known: {', '.join(RULES)}"
            )
        out.append(RULES[rule_id])
    return tuple(out)
