"""The lint-rule registry: named, documented, individually selectable rules.

Mirrors the scenario registry (:func:`repro.sim.scenarios.register_scenario`):
every determinism/cache contract the repo enforces is one registered
:class:`LintRule` — an id (``REPnnn``), a slug, a one-line summary, a
rationale paragraph (rendered into ``docs/lint.rst``'s rule catalog), and
a checker callable.  The runner (:mod:`repro.lint.runner`) executes every
registered rule over each module; adding a new contract is one
:func:`register_rule` call, not a fork of the runner.

Checkers come in two shapes:

* **AST checkers** receive a :class:`repro.lint.context.ModuleContext`
  (parsed tree + import-alias map + parent links) and yield
  :class:`~repro.lint.findings.Finding` objects for one module;
* the **contract checker** of REP003 additionally has a runtime half
  (:mod:`repro.lint.contracts`) that imports the real classes and
  cross-references live ``vars()`` against the cache fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.exceptions import InvalidParameterError
from repro.lint.findings import Finding

#: The walk tiers a file can belong to.  Contract rules run over the
#: product and benchmark trees; test code is held to the hygiene and
#: picklability rules but may freely seed RNGs, read clocks, etc.
ALL_TIERS = frozenset({"src", "tests", "benchmarks"})

#: Tier set for determinism/cache contract rules (everything but tests).
CONTRACT_TIERS = frozenset({"src", "benchmarks"})


@dataclass(frozen=True)
class LintRule:
    """One registered determinism/cache contract.

    ``id`` is the stable code suppressions and baselines reference
    (``REPnnn``), ``name`` a kebab-case slug, ``summary`` the one-liner
    shown by ``lint --list-rules``, ``rationale`` the invariant the rule
    guards (rendered in the docs catalog), and ``check`` the checker.

    ``scope`` selects the checker's calling convention: ``"module"``
    checkers receive one :class:`~repro.lint.context.ModuleContext` per
    file; ``"project"`` checkers (the REP2xx flow rules) receive a single
    :class:`~repro.lint.callgraph.ProjectContext` spanning every scanned
    module and may follow imports, aliases and calls across files.

    ``tiers`` scopes where findings apply when walking directories:
    a finding in a ``tests/`` file is dropped unless the rule lists the
    ``"tests"`` tier.  Explicitly-passed files bypass tier gating (the
    fixture harness depends on that).
    """

    id: str
    name: str
    summary: str
    rationale: str
    check: Callable[..., Iterable[Finding]]
    scope: str = "module"
    tiers: frozenset[str] = field(default=CONTRACT_TIERS)


#: Registered rules by id, in registration order (the order reports use).
RULES: dict[str, LintRule] = {}


def register_rule(rule: LintRule) -> LintRule:
    """Add ``rule`` to :data:`RULES`; ids must be unique.

    Returns the rule so modules can keep a handle on what they register.
    """
    if rule.id in RULES:
        raise InvalidParameterError(f"lint rule id {rule.id!r} is already taken")
    RULES[rule.id] = rule
    return rule


def rule_ids() -> tuple[str, ...]:
    """Registered rule ids, in registration order."""
    return tuple(RULES)


def resolve_rules(select: Iterable[str] | None = None) -> tuple[LintRule, ...]:
    """The rules a run should execute: all of them, or the ``select`` ids.

    Unknown ids raise so a typo in ``--select`` (or in a test) fails
    loudly instead of silently checking nothing.
    """
    if select is None:
        return tuple(RULES.values())
    out = []
    for rule_id in select:
        if rule_id not in RULES:
            raise InvalidParameterError(
                f"unknown lint rule {rule_id!r}; known: {', '.join(RULES)}"
            )
        out.append(RULES[rule_id])
    return tuple(out)
