"""The lint driver: file discovery, rule execution, baseline, rendering.

:func:`lint_paths` is the one entry point the CLI and the tests share.
It walks the requested files/directories in sorted order (the runner
practices the determinism it preaches), builds one
:class:`~repro.lint.context.ModuleContext` per module, executes every
selected registered rule — per-module rules file by file, then the
project-scoped flow rules (:mod:`repro.lint.flowchecks`) once over a
whole-program :class:`~repro.lint.callgraph.ProjectContext` — folds in
the runtime contract scan (:mod:`repro.lint.contracts`) when REP003 is
in play, honors inline suppressions, and finally subtracts the
checked-in baseline.

Directory walks are **tiered**: a file under ``tests/`` only receives
findings from rules that opt into the ``"tests"`` tier (hygiene and
picklability), while ``src``/``benchmarks`` get the full contract set.
Files passed explicitly bypass tier gating — the fixture harness lints
single files with every rule.  ``fixtures`` directories encountered
*below* a requested root are skipped entirely: planted violations are
test data, not tree debt.

``changed_only`` narrows *reporting* to files touched since a git ref
(plus untracked files) without narrowing *analysis*: the project index
still spans every discovered module, so a change to a re-export is
still seen by flow rules, but only findings in changed files — and only
stale-baseline debt attributable to them — fail the run.

The resulting :class:`LintReport` renders as plain text, GitHub workflow
annotations, or SARIF 2.1.0 (:mod:`repro.lint.sarif`) and knows its own
exit code: findings (or a stale baseline entry, or an unparseable file)
mean failure.
"""

from __future__ import annotations

import pathlib
import subprocess
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import LintRule, resolve_rules

# Importing the checkers registers every rule as a side effect.
import repro.lint.checks  # noqa: F401  (registration import)
import repro.lint.flowchecks  # noqa: F401  (registration import)

#: Rule id used for files the scanner cannot parse at all.
PARSE_RULE_ID = "REP000"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding]
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()
    baselined: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """Clean run: nothing to report and no stale baseline debt."""
        return not self.findings and not self.stale_baseline

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render_text(self) -> str:
        """Human-readable report: one ``path:line:col`` line per finding,
        stale-baseline notices, then a one-line summary."""
        lines = [finding.render_text() for finding in self.findings]
        for entry in self.stale_baseline:
            lines.append(
                f"{entry.path}: stale baseline entry for {entry.rule} "
                f"({entry.code!r}) — the tree no longer produces it; delete it"
            )
        noun = "file" if self.files_scanned == 1 else "files"
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_scanned} {noun} "
            f"({len(self.rules_run)} rules"
        )
        if self.baselined:
            summary += f", {self.baselined} baselined"
        if self.suppressed:
            summary += f", {self.suppressed} suppressed inline"
        summary += ")"
        lines.append(summary)
        return "\n".join(lines)

    def render_github(self) -> str:
        """CI report: one ``::error`` workflow annotation per finding (and
        per stale baseline entry), surfacing inline on the PR diff."""
        lines = [finding.render_github() for finding in self.findings]
        for entry in self.stale_baseline:
            message = (
                f"stale baseline entry for {entry.rule} ({entry.code}); "
                "the tree no longer produces it - delete it"
            ).replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
            lines.append(
                f"::error file={entry.path},title=repro-lint baseline::{message}"
            )
        return "\n".join(lines)

    def render_sarif(self) -> str:
        """The SARIF 2.1.0 rendering (see :mod:`repro.lint.sarif`)."""
        from repro.lint.sarif import render_sarif

        return render_sarif(self)

    def render(self, fmt: str) -> str:
        """Render as ``"text"``, ``"github"`` or ``"sarif"`` (``--format``)."""
        if fmt == "text":
            return self.render_text()
        if fmt == "github":
            return self.render_github()
        if fmt == "sarif":
            return self.render_sarif()
        raise InvalidParameterError(f"unknown lint output format {fmt!r}")


def discover_files(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    """The sorted ``.py`` files under the requested paths.

    Directories recurse, skipping anything under a ``fixtures`` directory
    *below* the requested root (planted lint violations are test data);
    naming a fixtures directory — or a file inside one — explicitly still
    scans it.  Explicit files are taken as given (and may be non-``.py``
    if the caller insists).  Missing paths raise — a typo'd path silently
    scanning nothing is how lint rot starts.
    """
    out: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if "fixtures" in found.relative_to(path).parts[:-1]:
                    continue
                out.append(found)
        elif path.is_file():
            out.append(path)
        else:
            raise InvalidParameterError(f"lint path does not exist: {path}")
    unique: dict[pathlib.Path, None] = {}
    for path in out:
        unique.setdefault(path.resolve(), None)
    return sorted(unique)


def _display_path(path: pathlib.Path) -> str:
    try:
        return path.relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def file_tier(display: str) -> str:
    """The walk tier of a scanned file: ``tests``/``benchmarks``/``src``.

    Classified from the (repo-relative) path components, so a test helper
    in ``tests/helpers/`` and the suite itself land in the same tier.
    """
    parts = pathlib.PurePosixPath(display).parts
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "src"


def changed_files(
    ref: str, root: Optional[pathlib.Path] = None
) -> set[pathlib.Path]:
    """Resolved paths git reports as changed since ``ref``, plus untracked.

    Uses ``git diff --name-only <ref>`` (worktree vs. ref, so staged and
    unstaged edits both count) and ``git ls-files --others
    --exclude-standard`` for files git does not track yet.  Raises when
    git is unavailable or the ref does not resolve — a diff-aware run
    silently scanning nothing would defeat its purpose.
    """
    base = (root or pathlib.Path.cwd()).resolve()
    changed: set[pathlib.Path] = set()
    for cmd in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, cwd=base, capture_output=True, text=True, check=True
            )
        except FileNotFoundError as exc:
            raise InvalidParameterError(
                "--changed-only requires git on PATH"
            ) from exc
        except subprocess.CalledProcessError as exc:
            detail = (exc.stderr or "").strip() or f"exit code {exc.returncode}"
            raise InvalidParameterError(
                f"--changed-only: {' '.join(cmd)} failed: {detail}"
            ) from exc
        for line in proc.stdout.splitlines():
            name = line.strip()
            if name:
                changed.add((base / name).resolve())
    return changed


def lint_paths(
    paths: Sequence[str | pathlib.Path],
    *,
    select: Optional[Iterable[str]] = None,
    baseline_path: Optional[pathlib.Path] = None,
    use_baseline: bool = True,
    run_contracts: bool = True,
    changed_only: Optional[str] = None,
) -> LintReport:
    """Lint ``paths`` with the selected rules and return the report.

    ``baseline_path=None`` with ``use_baseline=True`` looks for
    ``.repro-lint-baseline.json`` in the current directory; a missing
    default baseline simply means "no accepted findings".  The runtime
    contract scan runs when REP003 is selected and ``run_contracts`` is
    true; its findings are kept only when they anchor inside a scanned
    file, so linting a fixture directory does not drag in the live tree.
    ``changed_only`` is a git ref: analysis still spans every discovered
    file (project rules need the whole program), but only findings in
    files changed since the ref are reported.
    """
    rules: tuple[LintRule, ...] = resolve_rules(select)
    module_rules = tuple(rule for rule in rules if rule.scope == "module")
    project_rules = tuple(rule for rule in rules if rule.scope == "project")
    files = discover_files(paths)
    explicit = {
        pathlib.Path(raw).resolve()
        for raw in paths
        if pathlib.Path(raw).is_file()
    }
    scanned_resolved = {path.resolve() for path in files}
    if changed_only is not None:
        changed = changed_files(changed_only)
        reportable = {path for path in scanned_resolved if path in changed}
    else:
        reportable = scanned_resolved

    findings: list[Finding] = []
    suppressed = 0
    contexts: list[ModuleContext] = []
    tiers: dict[int, str] = {}
    bypass: dict[int, bool] = {}
    for path in files:
        display = _display_path(path)
        reported = path.resolve() in reportable
        source = path.read_text(encoding="utf-8")
        try:
            ctx = ModuleContext(path, source, display)
        except SyntaxError as exc:
            if reported:
                findings.append(
                    Finding(
                        path=display,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule=PARSE_RULE_ID,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
            continue
        if ctx.skip_file:
            continue
        tier = file_tier(display)
        contexts.append(ctx)
        tiers[id(ctx)] = tier
        bypass[id(ctx)] = path.resolve() in explicit
        if not reported:
            continue
        for rule in module_rules:
            if tier not in rule.tiers and not bypass[id(ctx)]:
                continue
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)

    if project_rules and contexts:
        from repro.lint.callgraph import ProjectContext

        project = ProjectContext.build(contexts)
        by_display = project.by_display
        for rule in project_rules:
            for finding in rule.check(project):
                ctx = by_display.get(finding.path)
                if ctx is None:
                    continue
                if ctx.path.resolve() not in reportable:
                    continue
                if tiers[id(ctx)] not in rule.tiers and not bypass[id(ctx)]:
                    continue
                if ctx.is_suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)

    if run_contracts and any(rule.id == "REP003" for rule in rules):
        from repro.lint.contracts import check_contracts

        for finding in check_contracts():
            anchor = pathlib.Path(finding.path)
            if not anchor.is_absolute():
                anchor = pathlib.Path.cwd() / anchor
            if anchor.resolve() in reportable:
                findings.append(finding)

    findings.sort()

    stale: list[BaselineEntry] = []
    baselined = 0
    if use_baseline:
        resolved_baseline = baseline_path or pathlib.Path(DEFAULT_BASELINE_NAME)
        if baseline_path is not None and not resolved_baseline.is_file():
            raise InvalidParameterError(f"baseline file not found: {resolved_baseline}")
        if resolved_baseline.is_file():
            entries = load_baseline(resolved_baseline)
            before = len(findings)
            findings, stale = apply_baseline(findings, entries)
            baselined = before - len(findings)
            # A stale entry for a file outside this scan is not evidence of
            # anything — keep only staleness the scan could have refuted.
            stale = [
                entry
                for entry in stale
                if pathlib.Path(entry.path).resolve() in reportable
            ]

    return LintReport(
        findings=findings,
        stale_baseline=stale,
        files_scanned=len([p for p in files if p.resolve() in reportable]),
        rules_run=tuple(rule.id for rule in rules),
        baselined=baselined,
        suppressed=suppressed,
    )
