"""Intraprocedural CFG, reaching-definitions/taint engine, must-analysis.

Three small pieces, shared by the REP2xx flow rules
(:mod:`repro.lint.flowchecks`):

* :func:`build_cfg` — a statement-level control-flow graph for one
  function body.  ``if``/``while``/``for``/``try``/``with``, ``break``/
  ``continue``/``return``/``raise`` are modeled precisely enough for
  forward may-analyses; exceptions are approximated by an edge from a
  ``try`` body's entry to each handler (any statement may raise).
* :func:`analyze_taint` — a forward fixpoint over the CFG propagating
  tag sets (``var -> frozenset[str]``) through assignments, with
  rule-supplied sources and call effects (``"clean"`` drops tags —
  ``sorted(...)``; ``"pass"`` unions argument tags — ``list(...)``).
  The result maps every statement to the state *before* it executes,
  which is exactly what a sink check wants.  The same machinery doubles
  as reaching-definitions: a tag per definition site.
* :func:`release_guarantee` — a three-valued structural must-analysis
  for claim/release pairing: does every non-exception path through a
  statement list hit a matching release?  ``raise`` paths are exempt by
  contract (REP202 only demands release on *non-exception* paths or a
  ``try/finally``); a release anywhere in a ``finally`` suite satisfies
  the whole ``try``.

Like everything under :mod:`repro.lint`, the analyses are deterministic:
block ids are allocation-ordered, worklists are processed in id order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

__all__ = [
    "CFG",
    "GUARANTEE_FALLTHROUGH",
    "GUARANTEE_LEAK",
    "GUARANTEE_RELEASED",
    "TaintSpec",
    "analyze_taint",
    "build_cfg",
    "release_guarantee",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Calls whose result order/content mirrors their (single) argument.
_PASSTHROUGH_CALLS = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})

#: Calls that impose a deterministic order (cleansing unordered taint).
_CLEANSING_CALLS = frozenset({"sorted"})


# ----------------------------------------------------------------------
# Control-flow graph
# ----------------------------------------------------------------------
@dataclass
class CFG:
    """Basic blocks of simple statements plus successor edges.

    Compound statements (``if``/``for``/``while``/``try``/``with``)
    appear as the *last* statement of the block that evaluates their
    header (test / iterable / context managers); their suites live in
    successor blocks.
    """

    blocks: list[list[ast.stmt]] = field(default_factory=list)
    succs: list[set[int]] = field(default_factory=list)
    entry: int = 0
    exit: int = 0

    def new_block(self) -> int:
        """Allocate an empty basic block and return its index."""
        self.blocks.append([])
        self.succs.append(set())
        return len(self.blocks) - 1

    def edge(self, src: int, dst: int) -> None:
        """Add a control-flow edge from block ``src`` to block ``dst``."""
        self.succs[src].add(dst)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.entry = self.cfg.new_block()
        self.cfg.exit = self.cfg.new_block()
        #: (continue-target, break-target) per enclosing loop.
        self.loops: list[tuple[int, int]] = []

    def build(self, body: list[ast.stmt]) -> CFG:
        out = self._stmts(body, self.cfg.entry)
        if out is not None:
            self.cfg.edge(out, self.cfg.exit)
        return self.cfg

    def _stmts(self, stmts: list[ast.stmt], cur: Optional[int]) -> Optional[int]:
        """Thread ``stmts`` from block ``cur``; ``None`` means the path
        already diverted (return/raise/break) and the rest is dead."""
        for stmt in stmts:
            if cur is None:
                return None
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.blocks[cur].append(stmt)
            after = cfg.new_block()
            then_entry = cfg.new_block()
            cfg.edge(cur, then_entry)
            then_out = self._stmts(stmt.body, then_entry)
            if then_out is not None:
                cfg.edge(then_out, after)
            if stmt.orelse:
                else_entry = cfg.new_block()
                cfg.edge(cur, else_entry)
                else_out = self._stmts(stmt.orelse, else_entry)
                if else_out is not None:
                    cfg.edge(else_out, after)
            else:
                cfg.edge(cur, after)
            reachable = any(after in succ for succ in cfg.succs)
            return after if reachable else None
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            cfg.blocks[cur].append(stmt)
            header = cfg.new_block()
            cfg.blocks[header].append(stmt)  # re-evaluated each iteration
            after = cfg.new_block()
            cfg.edge(cur, header)
            cfg.edge(header, after)  # zero-iteration / loop-exit path
            body_entry = cfg.new_block()
            cfg.edge(header, body_entry)
            self.loops.append((header, after))
            body_out = self._stmts(stmt.body, body_entry)
            self.loops.pop()
            if body_out is not None:
                cfg.edge(body_out, header)
            if stmt.orelse:
                else_out = self._stmts(stmt.orelse, after)
                return else_out
            return after
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            cfg.blocks[cur].append(stmt)
            body_entry = cfg.new_block()
            cfg.edge(cur, body_entry)
            after = cfg.new_block()
            handler_entries = []
            for handler in stmt.handlers:
                h_entry = cfg.new_block()
                handler_entries.append(h_entry)
                # Any statement in the body may raise: approximate with an
                # edge from the body's entry to each handler.
                cfg.edge(body_entry, h_entry)
            body_out = self._stmts(stmt.body, body_entry)
            if stmt.orelse and body_out is not None:
                body_out = self._stmts(stmt.orelse, body_out)
            outs = [body_out] + [
                self._stmts(handler.body, h_entry)
                for handler, h_entry in zip(stmt.handlers, handler_entries)
            ]
            live = [o for o in outs if o is not None]
            if stmt.finalbody:
                final_entry = cfg.new_block()
                for out in live:
                    cfg.edge(out, final_entry)
                if not live:
                    # All paths diverted; the finally still runs on the
                    # way out — keep it connected for analysis.
                    cfg.edge(body_entry, final_entry)
                final_out = self._stmts(stmt.finalbody, final_entry)
                if final_out is not None:
                    cfg.edge(final_out, after)
                    return after
                return None
            for out in live:
                cfg.edge(out, after)
            return after if live else None
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.blocks[cur].append(stmt)
            body_entry = cfg.new_block()
            cfg.edge(cur, body_entry)
            return self._stmts(stmt.body, body_entry)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[cur].append(stmt)
            cfg.edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            cfg.blocks[cur].append(stmt)
            if self.loops:
                cfg.edge(cur, self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            cfg.blocks[cur].append(stmt)
            if self.loops:
                cfg.edge(cur, self.loops[-1][0])
            return None
        cfg.blocks[cur].append(stmt)
        return cur


def build_cfg(func: FunctionNode) -> CFG:
    """The control-flow graph of ``func``'s body."""
    return _Builder().build(func.body)


# ----------------------------------------------------------------------
# Taint / reaching definitions
# ----------------------------------------------------------------------
@dataclass
class TaintSpec:
    """Rule-supplied taint semantics.

    ``source(expr)`` returns the tags an expression introduces by itself
    (e.g. ``{"unordered"}`` for a set display).  ``call_effect(call)``
    classifies a call: ``"clean"`` (result unconditionally untagged),
    ``"pass"`` (result carries the union of its arguments' tags), or
    ``"opaque"`` (result untagged — unknown calls launder taint, which
    keeps the rules low-noise at the cost of missing deep flows).
    """

    source: Callable[[ast.expr], frozenset[str]]
    call_effect: Optional[Callable[[ast.Call], str]] = None

    def effect(self, call: ast.Call) -> str:
        """How ``call`` treats tainted arguments: ``"clean"`` (taint is
        scrubbed, e.g. ``sorted``), ``"pass"`` (taint flows through) or
        ``"opaque"`` (unknown callee — taint is dropped conservatively)."""
        if self.call_effect is not None:
            verdict = self.call_effect(call)
            if verdict in ("clean", "pass", "opaque"):
                return verdict
        if isinstance(call.func, ast.Name):
            if call.func.id in _CLEANSING_CALLS:
                return "clean"
            if call.func.id in _PASSTHROUGH_CALLS:
                return "pass"
        return "opaque"


TaintState = dict[str, frozenset[str]]


def expr_tags(expr: Optional[ast.expr], state: TaintState, spec: TaintSpec) -> frozenset[str]:
    """Tags carried by ``expr`` under ``state``."""
    if expr is None:
        return frozenset()
    tags = spec.source(expr)
    if isinstance(expr, ast.Name):
        return tags | state.get(expr.id, frozenset())
    if isinstance(expr, ast.Call):
        effect = spec.effect(expr)
        if effect == "clean":
            return frozenset()
        if effect == "pass":
            for arg in expr.args:
                tags |= expr_tags(arg, state, spec)
            return tags
        return tags
    if isinstance(expr, (ast.Lambda,)):
        return tags
    if isinstance(expr, ast.Subscript):
        # The index does not flow into the element: rngs[idx] carries
        # rngs' tags, not idx's.
        return tags | expr_tags(expr.value, state, spec)
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            tags |= expr_tags(child, state, spec)
    return tags


def _assign_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in target.elts:
            out.extend(_assign_names(element))
        return out
    if isinstance(target, ast.Starred):
        return _assign_names(target.value)
    return []


def _transfer(stmt: ast.stmt, state: TaintState, spec: TaintSpec) -> None:
    """Apply one statement's effect to ``state`` in place."""
    if isinstance(stmt, ast.Assign):
        tags = expr_tags(stmt.value, state, spec)
        for target in stmt.targets:
            for name in _assign_names(target):
                state[name] = tags
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        for name in _assign_names(stmt.target):
            state[name] = expr_tags(stmt.value, state, spec)
    elif isinstance(stmt, ast.AugAssign):
        extra = expr_tags(stmt.value, state, spec)
        for name in _assign_names(stmt.target):
            state[name] = state.get(name, frozenset()) | extra
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        # Loop target inherits the iterable's tags (iterating an
        # unordered collection yields elements in unordered order).
        tags = expr_tags(stmt.iter, state, spec)
        for name in _assign_names(stmt.target):
            state[name] = tags
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                tags = expr_tags(item.context_expr, state, spec)
                for name in _assign_names(item.optional_vars):
                    state[name] = tags


def _join(a: TaintState, b: TaintState) -> TaintState:
    out = dict(a)
    for name, tags in b.items():
        out[name] = out.get(name, frozenset()) | tags
    return out


def analyze_taint(
    func: FunctionNode, spec: TaintSpec
) -> dict[int, TaintState]:
    """Forward may-analysis over ``func``'s CFG.

    Returns ``id(stmt) -> state-before-stmt`` for every statement the
    CFG placed (compound headers included), after iterating block entry
    states to a fixpoint.  Parameters start untagged.
    """
    cfg = build_cfg(func)
    entry_states: list[Optional[TaintState]] = [None] * len(cfg.blocks)
    entry_states[cfg.entry] = {}
    worklist = [cfg.entry]
    while worklist:
        block = min(worklist)
        worklist.remove(block)
        state = dict(entry_states[block] or {})
        for stmt in cfg.blocks[block]:
            _transfer(stmt, state, spec)
        for succ in sorted(cfg.succs[block]):
            merged = (
                state
                if entry_states[succ] is None
                else _join(entry_states[succ], state)
            )
            if merged != entry_states[succ]:
                entry_states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    # Second pass: record the state before each statement.
    before: dict[int, TaintState] = {}
    for block, stmts in enumerate(cfg.blocks):
        state = dict(entry_states[block] or {})
        for stmt in stmts:
            existing = before.get(id(stmt))
            before[id(stmt)] = (
                dict(state) if existing is None else _join(existing, state)
            )
            _transfer(stmt, state, spec)
    return before


# ----------------------------------------------------------------------
# Must-release guarantee (REP202)
# ----------------------------------------------------------------------
GUARANTEE_RELEASED = "released"
GUARANTEE_LEAK = "leak"
GUARANTEE_FALLTHROUGH = "fallthrough"


def _contains_match(node: ast.AST, is_release: Callable[[ast.Call], bool]) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and is_release(child):
            return True
    return False


def release_guarantee(
    stmts: list[ast.stmt], is_release: Callable[[ast.Call], bool]
) -> str:
    """Three-valued must-analysis over a statement list.

    * ``"released"`` — every non-exception path through ``stmts``
      reaches a matching release (or diverts via ``raise``, which REP202
      exempts by contract);
    * ``"leak"`` — some path returns / breaks out of the analyzed region
      *without* releasing;
    * ``"fallthrough"`` — no verdict yet: execution can fall off the end
      still holding the claim (the caller keeps scanning the enclosing
      suite).
    """
    for stmt in stmts:
        if isinstance(stmt, ast.Raise):
            return GUARANTEE_RELEASED  # exception path: exempt
        if isinstance(stmt, ast.Return):
            if stmt.value is not None and _contains_match(stmt.value, is_release):
                return GUARANTEE_RELEASED
            return GUARANTEE_LEAK
        if isinstance(stmt, (ast.Break, ast.Continue)):
            # Leaves the analyzed region sideways; the claim is still
            # held, so the caller's fallthrough handling applies.
            return GUARANTEE_FALLTHROUGH
        if isinstance(stmt, ast.If):
            then_g = release_guarantee(stmt.body, is_release)
            else_g = release_guarantee(stmt.orelse, is_release)
            if GUARANTEE_LEAK in (then_g, else_g):
                return GUARANTEE_LEAK
            if then_g == GUARANTEE_RELEASED and else_g == GUARANTEE_RELEASED:
                return GUARANTEE_RELEASED
            continue  # some path falls through: keep scanning
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            body_g = release_guarantee(stmt.body, is_release)
            if body_g == GUARANTEE_LEAK:
                return GUARANTEE_LEAK
            if stmt.orelse:
                else_g = release_guarantee(stmt.orelse, is_release)
                if else_g == GUARANTEE_LEAK:
                    return GUARANTEE_LEAK
                if else_g == GUARANTEE_RELEASED:
                    return GUARANTEE_RELEASED
            # `while True: ... break`-style loops: a released body whose
            # only exits are breaks after releasing is still "released".
            if body_g == GUARANTEE_RELEASED and _loop_cannot_fall_through(stmt):
                return GUARANTEE_RELEASED
            continue
        if isinstance(stmt, ast.Try):
            if any(
                _contains_match(final_stmt, is_release)
                for final_stmt in stmt.finalbody
            ):
                return GUARANTEE_RELEASED
            body_g = release_guarantee(list(stmt.body) + list(stmt.orelse), is_release)
            if body_g != GUARANTEE_FALLTHROUGH:
                return body_g
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_g = release_guarantee(stmt.body, is_release)
            if body_g != GUARANTEE_FALLTHROUGH:
                return body_g
            continue
        if _contains_match(stmt, is_release):
            return GUARANTEE_RELEASED
    return GUARANTEE_FALLTHROUGH


def _loop_cannot_fall_through(loop: ast.stmt) -> bool:
    """``while True`` loops never exit via the test, only via break —
    the one loop shape where a released body proves the whole loop."""
    return (
        isinstance(loop, ast.While)
        and isinstance(loop.test, ast.Constant)
        and bool(loop.test.value)
    )
