"""Project-wide symbol table, alias resolution, and call graph.

The per-module pass (:mod:`repro.lint.checks`) sees one file at a time;
the invariants most likely to rot are *inter-procedural* — an RNG minted
in one module and threaded through three calls into trial code, or a
banned entropy source laundered through ``from helpers import clock``.
This module builds the whole-program view the REP2xx flow rules
(:mod:`repro.lint.flowchecks`) consume:

* :class:`ModuleTable` — one module's top-level symbols: functions,
  classes (with their methods and base expressions), module-level
  assignments, and the import-alias map already collected by
  :class:`~repro.lint.context.ModuleContext`;
* :class:`ProjectIndex` — the cross-module resolver.  :meth:`resolve`
  follows a dotted name through import aliases, re-exports
  (``from repro.sim.engine import parallel_map`` re-exported by
  ``repro.sim``) and module-level assignment aliases (``now =
  time.time``) to a terminal :class:`Resolution`: a project function,
  class, method, module-level value, or an external dotted name;
* a **call graph** attributing ``self.m()``, ``obj.m()`` (via local
  constructor/annotation type inference) and plain calls to known
  functions, plus :meth:`reachable` for transitive-closure queries;
* a **subclass closure** (:meth:`ProjectIndex.subclass_closure`)
  accumulating ``FINGERPRINT_EXCLUDE`` sets down inheritance chains.

Everything here is deterministic by construction: modules, symbols and
edges are stored and iterated in sorted order so two scans of the same
tree yield identical findings (pinned by ``tests/test_lint_flow.py``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.lint.context import ModuleContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleTable",
    "ProjectContext",
    "ProjectIndex",
    "Resolution",
    "name_chain",
    "module_name_for",
]

#: Function-ish AST nodes (async variants behave identically here).
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name_for(ctx: ModuleContext) -> str:
    """The dotted module name a file answers imports under.

    Files inside the ``repro`` package get their full dotted path
    (``repro/sim/engine.py`` -> ``repro.sim.engine``, with ``__init__``
    collapsing to the package itself); anything else — fixtures,
    benchmark scripts — answers to its bare stem, which is how sibling
    fixture modules import each other.
    """
    rel = ctx.relpath
    if rel.startswith("repro/") or rel == "repro":
        dotted = rel[: -len(".py")] if rel.endswith(".py") else rel
        parts = [p for p in dotted.split("/") if p]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)
    stem = ctx.path.stem
    return stem if stem != "__init__" else ctx.path.parent.name


@dataclass
class FunctionInfo:
    """One project function or method."""

    module: str
    qualname: str  # "f" for functions, "Cls.m" for methods
    node: FunctionNode

    @property
    def key(self) -> str:
        """Graph node id: ``module:qualname``."""
        return f"{self.module}:{self.qualname}"


@dataclass
class ClassInfo:
    """One project class: methods, base expressions, class-level names."""

    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_exprs: list[ast.expr] = field(default_factory=list)
    #: Literal FINGERPRINT_EXCLUDE strings declared on this class itself.
    own_excludes: frozenset[str] = frozenset()
    has_exclude: bool = False

    @property
    def key(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass(frozen=True)
class Resolution:
    """Where a dotted name landed after following every alias.

    ``kind`` is one of ``"function"``, ``"class"``, ``"value"`` (a
    module-level assignment whose right side is not a plain name chain,
    e.g. an RNG construction), ``"module"``, or ``"external"`` (the
    terminal dotted name does not live in the scanned tree — stdlib,
    numpy, or simply unknown).  ``dotted`` always carries the terminal
    dotted name; project symbols also carry ``module``/``qualname`` and
    the defining AST node.
    """

    kind: str
    dotted: tuple[str, ...]
    module: Optional[str] = None
    qualname: Optional[str] = None
    node: Optional[ast.AST] = None


class ModuleTable:
    """The top-level symbols of one parsed module."""

    def __init__(self, name: str, ctx: ModuleContext) -> None:
        self.name = name
        self.ctx = ctx
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Module-level ``name = <expr>`` assignments (last one wins,
        #: matching runtime semantics for linear module bodies).
        self.assigns: dict[str, ast.expr] = {}
        self._collect()

    def _collect(self) -> None:
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(self.name, stmt.name, stmt)
                self.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                self._collect_class(stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self.assigns[stmt.target.id] = stmt.value

    def _collect_class(self, cls: ast.ClassDef) -> None:
        info = ClassInfo(self.name, cls.name, cls, base_exprs=list(cls.bases))
        excludes: set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(self.name, f"{cls.name}.{stmt.name}", stmt)
                info.methods[stmt.name] = method
                self.functions[method.qualname] = method
            value: Optional[ast.expr] = None
            target: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id == "FINGERPRINT_EXCLUDE"
                and value is not None
            ):
                info.has_exclude = True
                excludes.update(_literal_strings(value))
        info.own_excludes = frozenset(excludes)
        self.classes[cls.name] = info


def _literal_strings(node: ast.AST) -> set[str]:
    """Literal string elements of a (possibly frozenset-wrapped) display."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "frozenset"
        and len(node.args) == 1
    ):
        return _literal_strings(node.args[0])
    out: set[str] = set()
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.add(element.value)
    return out


def name_chain(node: ast.AST) -> Optional[tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name bases."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    chain.append(node.id)
    chain.reverse()
    return tuple(chain)


class ProjectIndex:
    """Cross-module resolver + call graph over a set of ModuleContexts."""

    def __init__(self, contexts: Iterable[ModuleContext]) -> None:
        self.modules: dict[str, ModuleTable] = {}
        for ctx in sorted(contexts, key=lambda c: c.display_path):
            name = module_name_for(ctx)
            # First writer wins on a stem collision; dotted repro names
            # are unique by construction.
            self.modules.setdefault(name, ModuleTable(name, ctx))
        self._edges: Optional[dict[str, tuple[str, ...]]] = None

    # -- name resolution --------------------------------------------------
    def resolve(
        self, module: str, chain: tuple[str, ...], _seen: Optional[set] = None
    ) -> Resolution:
        """Follow ``chain`` (a dotted name as written in ``module``)
        through aliases, re-exports and assignment aliases to a terminal
        :class:`Resolution`.  Never raises: unknown names come back as
        ``"external"`` with the best-known dotted form, mirroring
        :meth:`ModuleContext.resolve`'s "treat as canonical" fallback.
        """
        if _seen is None:
            _seen = set()
        probe = (module, chain)
        if not chain or probe in _seen:
            return Resolution(kind="external", dotted=chain)
        _seen.add(probe)
        table = self.modules.get(module)
        if table is None:
            return Resolution(kind="external", dotted=chain)
        head = chain[0]
        if head in table.ctx.aliases:
            target = table.ctx.aliases[head] + chain[1:]
            return self._resolve_dotted(target, _seen)
        if head in table.classes:
            return self._resolve_in_class(table.classes[head], chain[1:])
        if head in table.functions:
            return Resolution(
                kind="function",
                dotted=(module,) + chain,
                module=module,
                qualname=head,
                node=table.functions[head].node,
            )
        if head in table.assigns:
            value = table.assigns[head]
            value_chain = name_chain(value)
            if value_chain is not None:
                return self.resolve(module, value_chain + chain[1:], _seen)
            return Resolution(
                kind="value",
                dotted=(module,) + chain,
                module=module,
                qualname=head,
                node=value,
            )
        return Resolution(kind="external", dotted=chain)

    def _resolve_dotted(
        self, dotted: tuple[str, ...], _seen: set
    ) -> Resolution:
        """Resolve a fully-dotted path: longest module prefix, then the
        remainder as a symbol inside that module."""
        for split in range(len(dotted), 0, -1):
            prefix = ".".join(dotted[:split])
            if prefix in self.modules:
                remainder = dotted[split:]
                if not remainder:
                    return Resolution(kind="module", dotted=dotted, module=prefix)
                return self.resolve(prefix, remainder, _seen)
        return Resolution(kind="external", dotted=dotted)

    def _resolve_in_class(
        self, cls: ClassInfo, rest: tuple[str, ...]
    ) -> Resolution:
        if rest:
            method = self.method_on(cls, rest[0])
            if method is not None:
                return Resolution(
                    kind="function",
                    dotted=(cls.module, cls.name) + rest,
                    module=method.module,
                    qualname=method.qualname,
                    node=method.node,
                )
        return Resolution(
            kind="class",
            dotted=(cls.module, cls.name) + rest,
            module=cls.module,
            qualname=cls.name,
            node=cls.node,
        )

    def external_name(
        self, module: str, chain: tuple[str, ...]
    ) -> Optional[tuple[str, ...]]:
        """The terminal external dotted name of ``chain``, if it resolves
        out of the project (``from helpers import clock`` where helpers
        says ``clock = time.time`` -> ``("time", "time")``)."""
        res = self.resolve(module, chain)
        if res.kind == "external":
            return res.dotted
        if res.kind == "value":
            value_chain = name_chain(res.node) if res.node is not None else None
            if value_chain is not None and res.module is not None:
                return self.external_name(res.module, value_chain)
        return None

    # -- class machinery ---------------------------------------------------
    def resolve_base(self, cls: ClassInfo, base: ast.expr) -> Optional[ClassInfo]:
        """Resolve one written base-class expression of ``cls`` to its
        in-project :class:`ClassInfo`, or ``None`` for external bases."""
        chain = name_chain(base)
        if chain is None:
            return None
        res = self.resolve(cls.module, chain)
        if res.kind == "class" and res.module is not None and res.qualname:
            table = self.modules.get(res.module)
            if table is not None:
                return table.classes.get(res.qualname)
        return None

    def method_on(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """``name`` looked up on ``cls`` then its project-resolvable bases."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.key in seen:
                continue
            seen.add(current.key)
            if name in current.methods:
                return current.methods[name]
            for base in current.base_exprs:
                resolved = self.resolve_base(current, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def subclass_closure(
        self, base_names: frozenset[str], *, include_marked: bool = True
    ) -> dict[str, frozenset[str]]:
        """Classes transitively rooted at ``base_names`` (matched on the
        written base name, so unimported fixture bases still count) — the
        fingerprinted set.  ``include_marked`` additionally seeds classes
        that declare ``FINGERPRINT_EXCLUDE`` themselves.  Returns
        ``class key -> accumulated excluded attribute names`` with
        excludes union-ed down each inheritance chain.
        """
        marked: dict[str, frozenset[str]] = {}
        changed = True
        while changed:
            changed = False
            for module in sorted(self.modules):
                for cls in self.modules[module].classes.values():
                    excludes = set(marked.get(cls.key, frozenset()))
                    hit = cls.key in marked
                    if include_marked and cls.has_exclude:
                        hit = True
                    if cls.has_exclude:
                        excludes.update(cls.own_excludes)
                    for base in cls.base_exprs:
                        chain = name_chain(base)
                        if chain and chain[-1] in base_names:
                            hit = True
                        resolved = self.resolve_base(cls, base)
                        if resolved is not None and resolved.key in marked:
                            hit = True
                            excludes.update(marked[resolved.key])
                    if hit and (
                        cls.key not in marked
                        or frozenset(excludes) != marked[cls.key]
                    ):
                        marked[cls.key] = frozenset(excludes)
                        changed = True
        return marked

    def class_of(self, key: str) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` behind a ``module:ClassName`` key."""
        module, _, name = key.partition(":")
        table = self.modules.get(module)
        return table.classes.get(name) if table else None

    # -- call graph ---------------------------------------------------------
    def functions(self) -> Iterable[FunctionInfo]:
        """Every function/method in the project, in sorted (module,
        qualname) order — the deterministic iteration the rules rely on."""
        for module in sorted(self.modules):
            table = self.modules[module]
            for qualname in sorted(table.functions):
                yield table.functions[qualname]

    def edges(self) -> dict[str, tuple[str, ...]]:
        """``caller key -> callee keys`` over every indexed function."""
        if self._edges is None:
            built: dict[str, tuple[str, ...]] = {}
            for info in self.functions():
                built[info.key] = tuple(sorted(self._callees(info)))
            self._edges = built
        return self._edges

    def _local_types(self, info: FunctionInfo) -> dict[str, ClassInfo]:
        """Local variable -> project class, from parameter annotations and
        direct constructor assignments (``v = ClassName(...)``)."""
        out: dict[str, ClassInfo] = {}
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            chain = name_chain(arg.annotation)
            if chain is None:
                continue
            res = self.resolve(info.module, chain)
            if res.kind == "class" and res.module and res.qualname:
                cls = self.class_of(f"{res.module}:{res.qualname}")
                if cls is not None:
                    out[arg.arg] = cls
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            chain = name_chain(node.value.func)
            if chain is None:
                continue
            res = self.resolve(info.module, chain)
            if res.kind == "class" and res.module and res.qualname:
                cls = self.class_of(f"{res.module}:{res.qualname}")
                if cls is not None:
                    out[target.id] = cls
        return out

    def local_class_types(self, info: FunctionInfo) -> dict[str, ClassInfo]:
        """Public alias of the call graph's local type inference, used by
        REP203 to spot post-construction writes through local variables."""
        return self._local_types(info)

    def _callees(self, info: FunctionInfo) -> set[str]:
        out: set[str] = set()
        own_class: Optional[ClassInfo] = None
        if "." in info.qualname:
            own_class = self.class_of(
                f"{info.module}:{info.qualname.split('.', 1)[0]}"
            )
        local_types = self._local_types(info)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                receiver = func.value.id
                target_cls: Optional[ClassInfo] = None
                if receiver == "self" and own_class is not None:
                    target_cls = own_class
                elif receiver in local_types:
                    target_cls = local_types[receiver]
                if target_cls is not None:
                    method = self.method_on(target_cls, func.attr)
                    if method is not None:
                        out.add(method.key)
                        continue
            chain = name_chain(func)
            if chain is None:
                continue
            res = self.resolve(info.module, chain)
            if res.kind == "function" and res.module and res.qualname:
                out.add(f"{res.module}:{res.qualname}")
            elif res.kind == "class" and res.module and res.qualname:
                cls = self.class_of(f"{res.module}:{res.qualname}")
                if cls is not None:
                    init = self.method_on(cls, "__init__")
                    if init is not None:
                        out.add(init.key)
        return out

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Function keys reachable from ``roots`` through the call graph
        (roots included when they exist in the index)."""
        edges = self.edges()
        seen: set[str] = set()
        queue = sorted(set(roots) & set(edges))
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            for callee in edges.get(key, ()):
                if callee not in seen:
                    queue.append(callee)
        return seen

    def function(self, key: str) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` behind a ``module:qualname`` key."""
        module, _, qualname = key.partition(":")
        table = self.modules.get(module)
        return table.functions.get(qualname) if table else None


@dataclass
class ProjectContext:
    """What a ``scope="project"`` rule checker receives: every scanned
    module plus the built index.  ``by_display`` keys contexts by the
    display path findings carry, so the runner can look suppressions up."""

    contexts: list[ModuleContext]
    index: ProjectIndex

    @classmethod
    def build(cls, contexts: Iterable[ModuleContext]) -> "ProjectContext":
        ordered = sorted(contexts, key=lambda c: c.display_path)
        return cls(contexts=ordered, index=ProjectIndex(ordered))

    @property
    def by_display(self) -> dict[str, ModuleContext]:
        return {ctx.display_path: ctx for ctx in self.contexts}
