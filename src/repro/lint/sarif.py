"""SARIF 2.1.0 output for repro-lint, plus a structural validator.

:func:`sarif_document` renders a :class:`~repro.lint.runner.LintReport`
as a SARIF ``log`` object: one run, the full rule catalog from the
registry as ``tool.driver.rules`` (id, slug, summary, rationale), one
``result`` per finding (and per stale baseline entry, so a SARIF
consumer sees everything that fails the exit code).  GitHub code
scanning ingests this directly via ``codeql-action/upload-sarif``.

:func:`validate_sarif` is a dependency-free structural validator for the
constraints the SARIF 2.1.0 schema imposes on documents of this shape —
CI validates the emitted file with it (``python -m repro.lint.sarif
<file>``), so a regression in the writer fails the build without needing
the 100 kB official JSON schema vendored in.  When :mod:`jsonschema` and
a schema file are available the CLI check composes with them; neither is
required.

SARIF quick reference (§ numbers from the OASIS 2.1.0 spec):

* ``version`` must be the string ``"2.1.0"`` (§3.13.2);
* ``runs`` is a non-empty array; each run needs ``tool.driver.name``
  (§3.14/§3.19);
* ``results[].ruleId`` should match a ``rules[]`` descriptor id, and
  ``ruleIndex`` (when present) must point at it (§3.27.5);
* ``message.text`` is required on every result (§3.27.11);
* regions are 1-based: ``startLine``/``startColumn`` >= 1 (§3.30).
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import TYPE_CHECKING, Any

from repro.exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner -> sarif)
    from repro.lint.runner import LintReport

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "sarif_document", "render_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

#: Result levels SARIF allows (§3.27.10).
_LEVELS = frozenset({"none", "note", "warning", "error"})

#: Synthetic rule id for stale baseline entries (they fail the run but
#: are bookkeeping debt, not a code-contract violation at a line).
STALE_BASELINE_RULE = "REP901"


def _rule_catalog() -> list[dict[str, Any]]:
    from repro.lint.registry import RULES
    from repro.lint.runner import PARSE_RULE_ID

    rules: list[dict[str, Any]] = [
        {
            "id": PARSE_RULE_ID,
            "name": "parse-error",
            "shortDescription": {"text": "file does not parse"},
            "fullDescription": {
                "text": "The scanner could not parse the file; nothing in it "
                "was checked."
            },
            "defaultConfiguration": {"level": "error"},
        }
    ]
    for rule in RULES.values():
        rules.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    rules.append(
        {
            "id": STALE_BASELINE_RULE,
            "name": "stale-baseline-entry",
            "shortDescription": {
                "text": "baseline entry no longer matched by any finding"
            },
            "fullDescription": {
                "text": "The tree no longer produces the baselined finding; "
                "delete the entry so the baseline cannot mask a future "
                "regression under a dead justification."
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    return rules


def sarif_document(report: "LintReport") -> dict[str, Any]:
    """``report`` as a SARIF 2.1.0 log object (a plain dict)."""
    rules = _rule_catalog()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}

    results: list[dict[str, Any]] = []
    for finding in report.findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            # Finding columns are 0-based (ast); SARIF is 1-based.
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    for entry in report.stale_baseline:
        results.append(
            {
                "ruleId": STALE_BASELINE_RULE,
                "ruleIndex": rule_index[STALE_BASELINE_RULE],
                "level": "error",
                "message": {
                    "text": (
                        f"stale baseline entry for {entry.rule} "
                        f"({entry.code!r}): the tree no longer produces it — "
                        "delete it from the baseline file"
                    )
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": entry.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
            }
        )

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/paper-repro/ldprecover"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(report: "LintReport") -> str:
    """``report`` as pretty-printed SARIF JSON."""
    return json.dumps(sarif_document(report), indent=2, sort_keys=False)


def validate_sarif(doc: Any) -> list[str]:
    """Structural SARIF 2.1.0 errors in ``doc`` (empty list = valid).

    Checks every constraint the official schema would enforce on
    documents repro-lint emits; written defensively so arbitrary JSON
    never raises, only accumulates errors.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("version") != SARIF_VERSION:
        errors.append(f"version must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    if "$schema" in doc and not isinstance(doc["$schema"], str):
        errors.append("$schema must be a string URI")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("runs must be a non-empty array")
        return errors
    for run_no, run in enumerate(runs):
        where = f"runs[{run_no}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {})
        driver = driver.get("driver", {}) if isinstance(driver, dict) else {}
        if not (isinstance(driver, dict) and isinstance(driver.get("name"), str) and driver["name"]):
            errors.append(f"{where}.tool.driver.name must be a non-empty string")
            driver = {}
        rules = driver.get("rules", [])
        rule_ids: list[str] = []
        if not isinstance(rules, list):
            errors.append(f"{where}.tool.driver.rules must be an array")
            rules = []
        for rule_no, rule in enumerate(rules):
            if not (isinstance(rule, dict) and isinstance(rule.get("id"), str) and rule["id"]):
                errors.append(
                    f"{where}.tool.driver.rules[{rule_no}].id must be a "
                    "non-empty string"
                )
                rule_ids.append("")
                continue
            if rule["id"] in rule_ids:
                errors.append(
                    f"{where}.tool.driver.rules has duplicate id {rule['id']!r}"
                )
            rule_ids.append(rule["id"])
        if "columnKind" in run and run["columnKind"] not in (
            "utf16CodeUnits",
            "unicodeCodePoints",
        ):
            errors.append(f"{where}.columnKind is invalid: {run['columnKind']!r}")
        results = run.get("results", [])
        if not isinstance(results, list):
            errors.append(f"{where}.results must be an array")
            continue
        for result_no, result in enumerate(results):
            rwhere = f"{where}.results[{result_no}]"
            if not isinstance(result, dict):
                errors.append(f"{rwhere} is not an object")
                continue
            rule_id = result.get("ruleId")
            if not (isinstance(rule_id, str) and rule_id):
                errors.append(f"{rwhere}.ruleId must be a non-empty string")
            elif rule_ids and rule_id not in rule_ids:
                errors.append(
                    f"{rwhere}.ruleId {rule_id!r} has no rules[] descriptor"
                )
            if "ruleIndex" in result:
                index = result["ruleIndex"]
                if not isinstance(index, int) or not 0 <= index < len(rule_ids):
                    errors.append(f"{rwhere}.ruleIndex {index!r} out of range")
                elif isinstance(rule_id, str) and rule_ids[index] != rule_id:
                    errors.append(
                        f"{rwhere}.ruleIndex points at "
                        f"{rule_ids[index]!r}, not {rule_id!r}"
                    )
            message = result.get("message")
            if not (
                isinstance(message, dict)
                and isinstance(message.get("text"), str)
                and message["text"]
            ):
                errors.append(f"{rwhere}.message.text must be a non-empty string")
            if "level" in result and result["level"] not in _LEVELS:
                errors.append(f"{rwhere}.level is invalid: {result['level']!r}")
            for loc_no, location in enumerate(result.get("locations", []) or []):
                lwhere = f"{rwhere}.locations[{loc_no}]"
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not isinstance(physical, dict):
                    errors.append(f"{lwhere}.physicalLocation missing")
                    continue
                artifact = physical.get("artifactLocation")
                if not (
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str)
                ):
                    errors.append(f"{lwhere}.artifactLocation.uri must be a string")
                region = physical.get("region")
                if region is None:
                    continue
                if not isinstance(region, dict):
                    errors.append(f"{lwhere}.region is not an object")
                    continue
                for bound in ("startLine", "startColumn", "endLine", "endColumn"):
                    if bound in region and (
                        not isinstance(region[bound], int) or region[bound] < 1
                    ):
                        errors.append(
                            f"{lwhere}.region.{bound} must be an int >= 1, "
                            f"got {region[bound]!r}"
                        )
    return errors


def assert_valid_sarif(doc: Any) -> None:
    """Raise :class:`InvalidParameterError` on the first invalid SARIF."""
    errors = validate_sarif(doc)
    if errors:
        raise InvalidParameterError(
            "invalid SARIF 2.1.0 document: " + "; ".join(errors[:10])
        )


def _main(argv: list[str]) -> int:
    """``python -m repro.lint.sarif FILE``: validate a SARIF file."""
    if len(argv) != 1:
        print("usage: python -m repro.lint.sarif <file.sarif>", file=sys.stderr)
        return 2
    path = pathlib.Path(argv[0])
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable SARIF: {exc}", file=sys.stderr)
        return 1
    errors = validate_sarif(doc)
    for error in errors:
        print(f"{path}: {error}", file=sys.stderr)
    if not errors:
        results = sum(len(run.get("results", [])) for run in doc["runs"])
        print(f"{path}: valid SARIF {SARIF_VERSION} ({results} result(s))")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(_main(sys.argv[1:]))
