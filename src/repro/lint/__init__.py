"""repro-lint: the AST-based determinism & cache-contract analyzer.

The simulation stack's guarantees — bit-identical results for any worker
count, content-addressed cell caching that is sound across machines —
rest on code-level invariants no unit test can pin forever: randomness
flows only through :mod:`repro._rng`, wall clocks never leak into specs,
every result-shaping attribute enters the cache fingerprint, trial tasks
pickle, emitted orders are sorted.  This subpackage turns each invariant
into a named, registered, documented lint rule and ships the runner that
enforces them in CI (``repro lint``).

Layout:

* :mod:`~repro.lint.registry` — :class:`LintRule` + :func:`register_rule`
  (the scenario-registry pattern applied to contracts);
* :mod:`~repro.lint.checks` — the AST checkers (REP001–REP005 plus the
  REP101/REP102 hygiene rules), registered at import;
* :mod:`~repro.lint.contracts` — REP003's runtime half: live
  fingerprint-coverage cross-referencing of the real classes;
* :mod:`~repro.lint.context` — per-module AST context (import-alias
  resolution, parent links, ``# repro-lint: ignore[...]`` suppressions);
* :mod:`~repro.lint.baseline` — the checked-in accepted-findings file,
  justification-required, matched on source text not line numbers;
* :mod:`~repro.lint.runner` — discovery, execution, rendering
  (:func:`lint_paths` / :class:`LintReport`);
* :mod:`~repro.lint.findings` — the :class:`Finding` record and its
  text / GitHub-annotation renderings.
"""

from repro.lint.baseline import BaselineEntry, apply_baseline, load_baseline
from repro.lint.context import ModuleContext, package_relpath
from repro.lint.findings import Finding
from repro.lint.registry import RULES, LintRule, register_rule, resolve_rules, rule_ids
from repro.lint.runner import LintReport, discover_files, lint_paths

# Importing the runner imported the checkers, so RULES is populated here.

__all__ = [
    "BaselineEntry",
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "RULES",
    "apply_baseline",
    "discover_files",
    "lint_paths",
    "load_baseline",
    "package_relpath",
    "register_rule",
    "resolve_rules",
    "rule_ids",
]
