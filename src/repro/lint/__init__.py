"""repro-lint: the AST-based determinism & cache-contract analyzer.

The simulation stack's guarantees — bit-identical results for any worker
count, content-addressed cell caching that is sound across machines —
rest on code-level invariants no unit test can pin forever: randomness
flows only through :mod:`repro._rng`, wall clocks never leak into specs,
every result-shaping attribute enters the cache fingerprint, trial tasks
pickle, emitted orders are sorted.  This subpackage turns each invariant
into a named, registered, documented lint rule and ships the runner that
enforces them in CI (``repro lint``).

Layout:

* :mod:`~repro.lint.registry` — :class:`LintRule` + :func:`register_rule`
  (the scenario-registry pattern applied to contracts), including each
  rule's scope (module vs. project) and tier set (src/tests/benchmarks);
* :mod:`~repro.lint.checks` — the per-module AST checkers (REP001–REP005
  plus the REP101/REP102 hygiene rules), registered at import;
* :mod:`~repro.lint.callgraph` — the project-wide symbol table, alias
  resolution and call graph the flow rules ride on;
* :mod:`~repro.lint.flow` — intraprocedural CFG, taint engine and the
  three-valued claim/release guarantee analysis;
* :mod:`~repro.lint.flowchecks` — the whole-program flow rules
  (REP201 seed-provenance, REP202 claim-leak, REP203
  fingerprint-mutation, REP204 order-sensitive reduction, REP205
  entropy-re-export), registered at import;
* :mod:`~repro.lint.contracts` — REP003's runtime half: live
  fingerprint-coverage cross-referencing of the real classes;
* :mod:`~repro.lint.context` — per-module AST context (import-alias
  resolution, parent links, ``# repro-lint: ignore[...]`` suppressions);
* :mod:`~repro.lint.baseline` — the checked-in accepted-findings file,
  justification-required, matched slot-exactly on source text (one
  entry covers one numbered occurrence, never a budget);
* :mod:`~repro.lint.runner` — discovery, tier gating, diff-aware
  ``changed_only`` execution, rendering
  (:func:`lint_paths` / :class:`LintReport`);
* :mod:`~repro.lint.sarif` — SARIF 2.1.0 rendering plus the structural
  validator CI runs over the emitted document;
* :mod:`~repro.lint.findings` — the :class:`Finding` record and its
  text / GitHub-annotation renderings.
"""

from repro.lint.baseline import BaselineEntry, apply_baseline, load_baseline
from repro.lint.callgraph import ProjectContext, ProjectIndex
from repro.lint.context import ModuleContext, package_relpath
from repro.lint.findings import Finding
from repro.lint.registry import RULES, LintRule, register_rule, resolve_rules, rule_ids
from repro.lint.runner import (
    LintReport,
    changed_files,
    discover_files,
    file_tier,
    lint_paths,
)
from repro.lint.sarif import render_sarif, sarif_document, validate_sarif

# Importing the runner imported the checkers (module and flow), so RULES
# is fully populated here.

__all__ = [
    "BaselineEntry",
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "ProjectContext",
    "ProjectIndex",
    "RULES",
    "apply_baseline",
    "changed_files",
    "discover_files",
    "file_tier",
    "lint_paths",
    "load_baseline",
    "package_relpath",
    "register_rule",
    "render_sarif",
    "resolve_rules",
    "rule_ids",
    "sarif_document",
    "validate_sarif",
]
