"""Schedule-aware crafting for evolving-population (epoch) runs.

The ``epochs`` scenario exhibit (:mod:`repro.sim.scenarios`) models
attacks that change over a multi-epoch collection: running constantly,
bursting on at a chosen epoch, or ramping their adversary fraction
mid-stream.  :class:`ScheduledAttack` binds one
:class:`~repro.attacks.base.PoisoningAttack` to one
:class:`~repro.sim.history.AttackSchedule` over a fixed epoch horizon and
exposes per-epoch crafting: each epoch's malicious count follows the
scheduled fraction ``beta_e`` through the same ``m = beta*n/(1-beta)``
convention as a single-shot trial, and the crafted reports come from the
wrapped attack's ordinary :meth:`~repro.attacks.base.PoisoningAttack.craft`.

The wrapper holds only the attack, the schedule, and the horizon — all
content-fingerprintable — so it drops straight into scenario cell specs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple

import numpy as np

from repro._rng import RngLike
from repro.exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim -> attacks)
    from repro.attacks.base import PoisoningAttack
    from repro.protocols.base import FrequencyOracle
    from repro.sim.history import AttackSchedule


class ScheduledAttack:
    """A poisoning attack driven by a per-epoch malicious-fraction schedule.

    Not itself a :class:`~repro.attacks.base.PoisoningAttack`: the base
    contract crafts one batch of ``m`` reports, while a scheduled attack
    crafts a *sequence* of batches whose sizes the schedule dictates.  The
    wrapped attack supplies the report distribution; this class only
    decides how many malicious users show up in each epoch.
    """

    name = "scheduled"

    def __init__(
        self, attack: "PoisoningAttack", schedule: "AttackSchedule", num_epochs: int
    ) -> None:
        if num_epochs < 1:
            raise InvalidParameterError(f"num_epochs must be >= 1, got {num_epochs}")
        self.attack = attack
        self.schedule = schedule
        self.num_epochs = int(num_epochs)

    def beta_at(self, epoch: int) -> float:
        """The malicious fraction scheduled for ``epoch``."""
        return self.schedule.beta_at(epoch, self.num_epochs)

    def betas(self) -> Tuple[float, ...]:
        """The full per-epoch malicious-fraction vector."""
        return self.schedule.betas(self.num_epochs)

    def malicious_count_at(self, epoch: int, num_genuine: int) -> int:
        """Malicious users joining ``num_genuine`` genuine ones at ``epoch``."""
        from repro.sim.pipeline import malicious_count  # deferred: sim imports attacks

        return malicious_count(num_genuine, self.beta_at(epoch))

    def craft_epoch(
        self,
        protocol: "FrequencyOracle",
        epoch: int,
        num_genuine: int,
        rng: RngLike = None,
    ) -> Tuple[int, Optional[Any]]:
        """Craft epoch ``epoch``'s malicious reports.

        Returns ``(m, reports)`` where ``m`` is the scheduled malicious
        count for a population of ``num_genuine`` genuine users and
        ``reports`` the wrapped attack's crafted batch — ``None`` in
        clean epochs (``m == 0``), so callers skip aggregation entirely
        and the RNG stream is left untouched.
        """
        m = self.malicious_count_at(epoch, num_genuine)
        if m == 0:
            return 0, None
        return m, self.attack.craft(protocol, m, rng)

    @property
    def target_items(self) -> Optional[np.ndarray]:
        """The wrapped attack's target items (``None`` when untargeted)."""
        return self.attack.target_items

    def describe(self) -> str:
        """One-line human description for exhibit rows and logs."""
        return f"{self.attack.describe()} @ {self.schedule.describe()}"


__all__ = ["ScheduledAttack"]
