"""Poisoning attacks against LDP frequency estimation.

* :class:`~repro.attacks.manip.ManipAttack` — untargeted (Cheu et al.).
* :class:`~repro.attacks.mga.MGAAttack` — targeted Maximal Gain Attack
  (Cao et al.) with protocol-specific crafting.
* :class:`~repro.attacks.adaptive.AdaptiveAttack` — the paper's AA.
* :class:`~repro.attacks.ipa.InputPoisoningAttack` — IPA wrapper
  (Section VII-B).
* :class:`~repro.attacks.multi.MultiAttacker` — multi-attacker composition
  (Section VII-C).
"""

from repro.attacks.adaptive import AdaptiveAttack
from repro.attacks.base import ItemSamplingAttack, PoisoningAttack, resolve_target_items
from repro.attacks.baselines import RIAAttack, RPAAttack
from repro.attacks.ipa import InputPoisoningAttack
from repro.attacks.manip import ManipAttack
from repro.attacks.mga import MGAAttack
from repro.attacks.multi import MultiAttacker
from repro.attacks.schedule import ScheduledAttack

__all__ = [
    "PoisoningAttack",
    "ItemSamplingAttack",
    "resolve_target_items",
    "ManipAttack",
    "MGAAttack",
    "AdaptiveAttack",
    "InputPoisoningAttack",
    "MultiAttacker",
    "RIAAttack",
    "RPAAttack",
    "ScheduledAttack",
]
