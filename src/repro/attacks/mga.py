"""MGA: the Maximal Gain Attack of Cao, Jia & Gong (USENIX Security'21).

A targeted poisoning attack that maximizes the frequency gain of the
attacker-chosen target items ``T`` (``|T| = r``).  The crafted report is
protocol specific:

* **GRR** — each malicious user reports a uniformly chosen target item.
* **OUE** — each malicious user sends a bit vector with all target bits on;
  to evade count-based detection the total number of on-bits is padded with
  random non-target bits up to the expected genuine count
  ``round(p + (d-1)*q)``.
* **OLH** — each malicious user picks a hash key whose induced hash maps as
  many targets as possible to one value, and reports that ``(key, value)``
  pair, so a single report supports many targets at once.

The item-level distribution (uniform over targets, the paper's Section
VI-A3 description) backs the IPA variant and analysis code.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.attacks.base import ItemSamplingAttack, resolve_target_items
from repro.exceptions import AttackError
from repro.protocols import hashing
from repro.protocols.base import FrequencyOracle
from repro.protocols.grr import GRR
from repro.protocols.olh import OLH, OLHReports
from repro.protocols.oue import OUE


class MGAAttack(ItemSamplingAttack):
    """Maximal Gain Attack promoting ``r`` target items.

    Parameters
    ----------
    domain_size:
        Size of the item domain.
    targets:
        Explicit target items; mutually exclusive with random selection.
    r:
        Number of random target items to select when ``targets`` is omitted
        (paper default: 10).
    pad_oue:
        Whether the OUE crafted vectors are padded to the expected genuine
        on-bit count (MGA's detection evasion; default True).
    seed_candidates:
        Number of candidate hash keys scanned for the OLH report search.
    rng:
        Randomness for random target selection.
    """

    name = "mga"
    targeted = True

    def __init__(
        self,
        domain_size: int,
        targets: Optional[Sequence[int]] = None,
        r: Optional[int] = 10,
        pad_oue: bool = True,
        seed_candidates: int = 256,
        rng: RngLike = None,
    ) -> None:
        if domain_size < 2:
            raise AttackError(f"domain_size must be >= 2, got {domain_size}")
        self.domain_size = int(domain_size)
        self._targets = resolve_target_items(
            None if targets is None else np.asarray(list(targets)),
            r,
            self.domain_size,
            rng,
        )
        self.pad_oue = bool(pad_oue)
        if seed_candidates < 1:
            raise AttackError(f"seed_candidates must be >= 1, got {seed_candidates}")
        self.seed_candidates = int(seed_candidates)

    @property
    def target_items(self) -> np.ndarray:
        return self._targets

    @property
    def r(self) -> int:
        """Number of target items."""
        return int(self._targets.size)

    def item_distribution(self, protocol: FrequencyOracle) -> np.ndarray:
        if protocol.domain_size != self.domain_size:
            raise AttackError(
                f"attack built for domain size {self.domain_size}, protocol has "
                f"{protocol.domain_size}"
            )
        probs = np.zeros(self.domain_size, dtype=np.float64)
        probs[self._targets] = 1.0 / self._targets.size
        return probs

    # ------------------------------------------------------------------
    # Protocol-specific crafting
    # ------------------------------------------------------------------
    def craft(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> Any:
        m = self._validate_m(m)
        gen = as_generator(rng)
        if isinstance(protocol, OLH):
            return self._craft_olh(protocol, m, gen)
        if isinstance(protocol, OUE):
            return self._craft_oue(protocol, m, gen)
        if isinstance(protocol, GRR):
            return protocol.craft_supporting(self.sample_items(protocol, m, gen), gen)
        # Unknown pure protocol: fall back to the generic sampling template.
        return super().craft(protocol, m, gen)

    def _craft_oue(self, protocol: OUE, m: int, gen: np.random.Generator) -> np.ndarray:
        d = protocol.domain_size
        bits = np.zeros((m, d), dtype=bool)
        bits[:, self._targets] = True
        if not self.pad_oue:
            return bits
        expected_ones = int(round(protocol.p + (d - 1) * protocol.q))
        pad = max(0, expected_ones - self._targets.size)
        if pad == 0:
            return bits
        non_targets = np.setdiff1d(np.arange(d, dtype=np.int64), self._targets)
        pad = min(pad, non_targets.size)
        if pad and m:
            # Per-report sample of `pad` distinct non-target bits via the
            # random-key argpartition trick (vectorized sampling without
            # replacement).
            keys = gen.random((m, non_targets.size))
            chosen = np.argpartition(keys, pad - 1, axis=1)[:, :pad]
            rows = np.repeat(np.arange(m), pad)
            bits[rows, non_targets[chosen].ravel()] = True
        return bits

    def _craft_olh(self, protocol: OLH, m: int, gen: np.random.Generator) -> OLHReports:
        best_seeds, best_values = self._search_olh_reports(protocol, gen)
        pick = gen.integers(0, best_seeds.size, size=m)
        return OLHReports(seeds=best_seeds[pick], values=best_values[pick])

    def _search_olh_reports(
        self, protocol: OLH, gen: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scan candidate hash keys; keep the (key, value) pairs covering
        the most targets.  Each malicious user then samples a winner, which
        matches MGA's per-user maximization at a fraction of the cost."""
        seeds = hashing.draw_seeds(self.seed_candidates, gen)
        grid = hashing.hash_items(
            seeds[:, None], self._targets.astype(np.uint64)[None, :], protocol.g
        ).astype(np.int64)
        coverage = np.zeros(self.seed_candidates, dtype=np.int64)
        best_value = np.zeros(self.seed_candidates, dtype=np.int64)
        for i in range(self.seed_candidates):
            buckets = np.bincount(grid[i], minlength=protocol.g)
            best_value[i] = int(buckets.argmax())
            coverage[i] = int(buckets.max())
        winners = coverage == coverage.max()
        return seeds[winners], best_value[winners]

    def describe(self) -> str:
        return f"mga(r={self.r}, pad_oue={self.pad_oue})"
