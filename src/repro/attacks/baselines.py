"""Baseline poisoning attacks from Cao, Jia & Gong (USENIX Security'21).

MGA is the *maximal* gain attack; the same paper defines two weaker
baselines that LDPRecover's related work references and that are useful
for calibrating any defense:

* **RIA** (Random Item Attack): each malicious user picks a uniformly
  random *item* and encodes it faithfully — indistinguishable from a
  genuine user with a uniform value, hence the weakest output poisoning.
* **RPA** (Random Perturbed-value Attack): each malicious user picks a
  uniformly random value from the *encoded* domain — a random item for
  GRR, a uniform random bit vector for OUE, a random (seed, value) pair
  for OLH.  Stronger than RIA for unary encodings because a uniform bit
  vector has ~d/2 on-bits, far above the genuine rate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro._rng import RngLike, as_generator
from repro.attacks.base import ItemSamplingAttack, PoisoningAttack
from repro.exceptions import AttackError
from repro.protocols import hashing
from repro.protocols.base import FrequencyOracle
from repro.protocols.grr import GRR
from repro.protocols.olh import OLH, OLHReports
from repro.protocols.oue import OUE


class RIAAttack(ItemSamplingAttack):
    """Random Item Attack: faithful encodings of uniform random items."""

    name = "ria"
    targeted = False

    def __init__(self, domain_size: int) -> None:
        if domain_size < 2:
            raise AttackError(f"domain_size must be >= 2, got {domain_size}")
        self.domain_size = int(domain_size)

    def item_distribution(self, protocol: FrequencyOracle) -> np.ndarray:
        if protocol.domain_size != self.domain_size:
            raise AttackError(
                f"attack built for domain size {self.domain_size}, protocol has "
                f"{protocol.domain_size}"
            )
        return np.full(self.domain_size, 1.0 / self.domain_size)


class RPAAttack(PoisoningAttack):
    """Random Perturbed-value Attack: uniform samples of the encoded domain."""

    name = "rpa"
    targeted = False

    def __init__(self, domain_size: int) -> None:
        if domain_size < 2:
            raise AttackError(f"domain_size must be >= 2, got {domain_size}")
        self.domain_size = int(domain_size)

    def craft(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> Any:
        m = self._validate_m(m)
        if protocol.domain_size != self.domain_size:
            raise AttackError(
                f"attack built for domain size {self.domain_size}, protocol has "
                f"{protocol.domain_size}"
            )
        gen = as_generator(rng)
        if isinstance(protocol, OLH):
            seeds = hashing.draw_seeds(m, gen)
            values = gen.integers(0, protocol.g, size=m, dtype=np.int64)
            return OLHReports(seeds=seeds, values=values)
        if isinstance(protocol, OUE):
            # Uniform element of {0,1}^d: each bit on with probability 1/2.
            return gen.random((m, protocol.domain_size)) < 0.5
        if isinstance(protocol, GRR):
            return gen.integers(0, protocol.domain_size, size=m, dtype=np.int64)
        raise AttackError(
            f"RPA has no encoded-domain sampler for protocol {protocol.name!r}"
        )

    def sample_items(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> np.ndarray:
        # The item-level shadow of RPA is uniform (used by the IPA variant).
        m = self._validate_m(m)
        return as_generator(rng).integers(0, self.domain_size, size=m, dtype=np.int64)

    def item_distribution(self, protocol: FrequencyOracle) -> np.ndarray:
        return np.full(self.domain_size, 1.0 / self.domain_size)
