"""Attack abstractions (paper Sections II, IV-A, V-C).

The paper's threat model: an attacker controls ``m`` malicious users who
send attacker-crafted *encoded* data directly to the server, bypassing the
LDP perturbation.  The adaptive-attack framework of Section V-C observes
that every such attack is equivalent to sampling each malicious report
i.i.d. from an attacker-designed distribution over the encoded domain.

:class:`PoisoningAttack` captures that contract: ``craft`` produces the
``m`` malicious reports for a given protocol.  Attacks whose design is
naturally expressed as a distribution over *items* additionally implement
``sample_items`` (used by the item-level analysis and by the IPA variant,
where the crafted items go through the genuine perturbation instead).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Optional

import numpy as np

from repro._rng import RngLike, as_generator
from repro.exceptions import AttackError
from repro.protocols.base import FrequencyOracle


class PoisoningAttack(ABC):
    """Base class for poisoning attacks against LDP frequency estimation."""

    #: Short attack name, e.g. ``"mga"``; set by subclasses.
    name: ClassVar[str] = "abstract"

    #: True when the attack promotes specific items (targeted attacks).
    targeted: ClassVar[bool] = False

    #: True when crafted reports are i.i.d. draws, so ``craft(m)`` may be
    #: split into smaller batches without changing the report distribution
    #: (the adaptive-attack contract).  Attacks whose output depends on the
    #: batch size as a whole (e.g. deterministic user splits) set False;
    #: chunked simulation then falls back to a single craft call.
    iid_reports: ClassVar[bool] = True

    @abstractmethod
    def craft(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> Any:
        """Produce ``m`` malicious reports for ``protocol``.

        The reports are in the protocol's report representation, exactly as
        if sent by ``m`` malicious users.
        """

    def sample_items(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> np.ndarray:
        """Sample ``m`` items from the attack's item-level distribution.

        Optional: only attacks with a natural item-level design implement
        this (Manip, MGA, AA).  Needed by the input-poisoning variant and
        by analysis code.
        """
        raise AttackError(f"{type(self).__name__} has no item-level distribution")

    def item_distribution(self, protocol: FrequencyOracle) -> Optional[np.ndarray]:
        """The attacker-designed distribution over items, if one exists.

        Returns ``None`` for attacks without an item-level description.
        Used to compute *true* malicious frequencies in Figure 7.
        """
        return None

    @property
    def target_items(self) -> Optional[np.ndarray]:
        """Attacker-selected items for targeted attacks, else ``None``."""
        return None

    def describe(self) -> str:
        """One-line human description for experiment logs."""
        return self.name

    @staticmethod
    def _validate_m(m: int) -> int:
        if m < 0:
            raise AttackError(f"number of malicious users m must be >= 0, got {m}")
        return int(m)


class ItemSamplingAttack(PoisoningAttack):
    """Attacks defined by a distribution over items.

    Subclasses implement :meth:`item_distribution`; crafting then samples
    items from it and encodes each with the protocol's
    :meth:`~repro.protocols.base.FrequencyOracle.craft_supporting`
    primitive.  This is exactly the paper's adaptive-attack template.
    """

    def sample_items(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> np.ndarray:
        m = self._validate_m(m)
        probs = self.item_distribution(protocol)
        if probs is None:
            raise AttackError(f"{type(self).__name__} did not define an item distribution")
        probs = np.asarray(probs, dtype=np.float64)
        if probs.shape != (protocol.domain_size,):
            raise AttackError(
                f"item distribution has shape {probs.shape}, expected ({protocol.domain_size},)"
            )
        total = probs.sum()
        if total <= 0:
            raise AttackError("item distribution must have positive mass")
        gen = as_generator(rng)
        return gen.choice(protocol.domain_size, size=m, p=probs / total)

    def craft(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> Any:
        gen = as_generator(rng)
        items = self.sample_items(protocol, m, gen)
        return protocol.craft_supporting(items, gen)


def resolve_target_items(
    targets: Optional[np.ndarray],
    r: Optional[int],
    domain_size: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Resolve explicit target items or draw ``r`` random distinct ones.

    Mirrors the paper's MGA setup ("we randomly select target items").
    """
    if targets is not None:
        arr = np.unique(np.asarray(targets, dtype=np.int64))
        if arr.size == 0:
            raise AttackError("target item set must be non-empty")
        if arr.min() < 0 or arr.max() >= domain_size:
            raise AttackError(f"target items must lie in [0, {domain_size})")
        return arr
    if r is None or r <= 0:
        raise AttackError("either explicit targets or a positive r is required")
    if r > domain_size:
        raise AttackError(f"r={r} exceeds domain size {domain_size}")
    gen = as_generator(rng)
    return np.sort(gen.choice(domain_size, size=r, replace=False).astype(np.int64))
