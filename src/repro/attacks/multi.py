"""Multi-attacker poisoning (paper Section VII-C).

Several attackers control disjoint groups of malicious users, each sampling
from its own attacker-designed distribution.  The paper observes this is
equivalent to a single adaptive attacker sampling from the mixture of the
individual distributions, so LDPRecover applies unchanged; Figure 10
validates it with five independent adaptive attackers.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro._rng import RngLike, as_generator, spawn
from repro.attacks.base import PoisoningAttack
from repro.exceptions import AttackError
from repro.protocols.base import FrequencyOracle


class MultiAttacker(PoisoningAttack):
    """Compose several attacks, splitting malicious users among them.

    Parameters
    ----------
    attacks:
        The individual attackers.
    weights:
        Relative share of malicious users per attacker (default: equal).
        Users are split by rounding the cumulative shares, so the total is
        always exactly ``m`` and deterministic given the weights.
    """

    name = "multi"

    #: The weight split is deterministic per craft call, so crafting in
    #: sub-batches would re-round the shares each time and can starve
    #: low-weight attackers entirely; chunked simulation must not split.
    iid_reports = False

    def __init__(
        self,
        attacks: Sequence[PoisoningAttack],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not attacks:
            raise AttackError("MultiAttacker needs at least one attack")
        self.attacks = list(attacks)
        if weights is None:
            w = np.full(len(self.attacks), 1.0 / len(self.attacks))
        else:
            w = np.asarray(list(weights), dtype=np.float64)
            if w.shape != (len(self.attacks),):
                raise AttackError("weights must match the number of attacks")
            if np.any(w < 0) or w.sum() <= 0:
                raise AttackError("weights must be non-negative with positive sum")
            w = w / w.sum()
        self.weights = w
        self.targeted = any(a.targeted for a in self.attacks)

    def split_users(self, m: int) -> np.ndarray:
        """Deterministic split of ``m`` malicious users by weight."""
        m = self._validate_m(m)
        boundaries = np.round(np.cumsum(self.weights) * m).astype(np.int64)
        starts = np.concatenate([[0], boundaries[:-1]])
        return (boundaries - starts).astype(np.int64)

    def craft(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> Any:
        counts = self.split_users(m)
        rngs = spawn(rng, len(self.attacks))
        batches = [
            attack.craft(protocol, int(mi), child)
            for attack, mi, child in zip(self.attacks, counts, rngs)
        ]
        combined = batches[0]
        for batch in batches[1:]:
            combined = protocol.concat_reports(combined, batch)
        return combined

    def sample_items(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> np.ndarray:
        counts = self.split_users(m)
        gen = as_generator(rng)
        rngs = spawn(gen, len(self.attacks))
        parts = [
            attack.sample_items(protocol, int(mi), child)
            for attack, mi, child in zip(self.attacks, counts, rngs)
        ]
        items = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        gen.shuffle(items)
        return items

    def item_distribution(self, protocol: FrequencyOracle) -> Optional[np.ndarray]:
        mix = np.zeros(protocol.domain_size, dtype=np.float64)
        for attack, weight in zip(self.attacks, self.weights):
            probs = attack.item_distribution(protocol)
            if probs is None:
                return None
            mix += weight * np.asarray(probs, dtype=np.float64)
        return mix

    @property
    def target_items(self) -> Optional[np.ndarray]:
        target_sets = [a.target_items for a in self.attacks if a.target_items is not None]
        if not target_sets:
            return None
        return np.unique(np.concatenate(target_sets))

    def describe(self) -> str:
        inner = ", ".join(a.describe() for a in self.attacks)
        return f"multi[{inner}]"
