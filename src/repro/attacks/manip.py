"""Manip: the untargeted poisoning attack of Cheu, Smith & Ullman (S&P'21).

Following the paper's experimental setup (Section VI-A3): "we first sample
a malicious data domain H from the data domain D, and then draw uniform
samples (malicious data) from H".  The attack degrades the overall accuracy
of all aggregated frequencies by flooding a random sub-domain.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.attacks.base import ItemSamplingAttack
from repro.exceptions import AttackError
from repro.protocols.base import FrequencyOracle


class ManipAttack(ItemSamplingAttack):
    """Untargeted poisoning: uniform sampling over a random sub-domain H.

    Parameters
    ----------
    domain_size:
        Size of the full item domain ``D`` (must match the protocol's).
    subdomain:
        Explicit malicious sub-domain ``H``.  If omitted, a random subset
        of ``round(subdomain_fraction * d)`` items is drawn using ``rng``.
    subdomain_fraction:
        Fraction of ``D`` used for the random ``H`` (default 0.5).
    rng:
        Randomness for drawing ``H`` when ``subdomain`` is omitted.
    """

    name = "manip"
    targeted = False

    def __init__(
        self,
        domain_size: int,
        subdomain: Optional[Sequence[int]] = None,
        subdomain_fraction: float = 0.5,
        rng: RngLike = None,
    ) -> None:
        if domain_size < 2:
            raise AttackError(f"domain_size must be >= 2, got {domain_size}")
        self.domain_size = int(domain_size)
        if subdomain is not None:
            sub = np.unique(np.asarray(list(subdomain), dtype=np.int64))
            if sub.size == 0:
                raise AttackError("subdomain H must be non-empty")
            if sub.min() < 0 or sub.max() >= self.domain_size:
                raise AttackError(f"subdomain items must lie in [0, {self.domain_size})")
            self.subdomain = sub
        else:
            if not 0.0 < subdomain_fraction <= 1.0:
                raise AttackError(
                    f"subdomain_fraction must be in (0, 1], got {subdomain_fraction}"
                )
            size = max(1, round(subdomain_fraction * self.domain_size))
            gen = as_generator(rng)
            self.subdomain = np.sort(
                gen.choice(self.domain_size, size=size, replace=False).astype(np.int64)
            )

    def item_distribution(self, protocol: FrequencyOracle) -> np.ndarray:
        if protocol.domain_size != self.domain_size:
            raise AttackError(
                f"attack built for domain size {self.domain_size}, protocol has "
                f"{protocol.domain_size}"
            )
        probs = np.zeros(self.domain_size, dtype=np.float64)
        probs[self.subdomain] = 1.0 / self.subdomain.size
        return probs

    def describe(self) -> str:
        return f"manip(|H|={self.subdomain.size}/{self.domain_size})"
