"""Input poisoning attacks (IPA), paper Section VII-B.

Under IPA the malicious users *follow the protocol*: the attacker chooses
each malicious user's input item, but the item then goes through the
genuine LDP perturbation before reaching the server.  The paper shows IPA
is orders of magnitude weaker than the general (output) poisoning attack —
Figure 8 — and that LDPRecover can still counter it when combined with the
k-means defense (Figure 9).

:class:`InputPoisoningAttack` wraps any item-level attack (Manip, MGA, AA)
and routes its sampled items through ``protocol.perturb``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro._rng import RngLike, as_generator
from repro.attacks.base import PoisoningAttack
from repro.protocols.base import FrequencyOracle


class InputPoisoningAttack(PoisoningAttack):
    """Wrap an item-level attack so crafted items pass through perturbation."""

    name = "ipa"

    def __init__(self, inner: PoisoningAttack) -> None:
        self.inner = inner
        self.targeted = inner.targeted
        # Crafted reports are one genuine perturbation per sampled item, so
        # batch-splitting is safe exactly when the inner sampling is.
        self.iid_reports = inner.iid_reports

    def craft(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> Any:
        gen = as_generator(rng)
        items = self.inner.sample_items(protocol, self._validate_m(m), gen)
        return protocol.perturb(items, gen)

    def sample_items(self, protocol: FrequencyOracle, m: int, rng: RngLike = None) -> np.ndarray:
        return self.inner.sample_items(protocol, m, rng)

    def item_distribution(self, protocol: FrequencyOracle) -> Optional[np.ndarray]:
        return self.inner.item_distribution(protocol)

    @property
    def target_items(self) -> Optional[np.ndarray]:
        return self.inner.target_items

    def describe(self) -> str:
        return f"ipa({self.inner.describe()})"
