"""The adaptive attack (AA) proposed by the paper (Section V-C).

AA generalizes existing poisoning attacks: the attacker fixes an arbitrary
distribution ``P`` over the encoded domain and samples each malicious
user's report from it.  The paper's experiments instantiate AA with a
*randomly generated* attacker-designed distribution; we draw it from a
Dirichlet so callers can control skew via ``concentration`` (small alpha =
mass concentrated on few items, which is the interesting poisoning regime).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.attacks.base import ItemSamplingAttack
from repro.exceptions import AttackError
from repro.protocols.base import FrequencyOracle


class AdaptiveAttack(ItemSamplingAttack):
    """Sampling attack with an arbitrary attacker-designed distribution.

    Parameters
    ----------
    domain_size:
        Size of the item domain.
    probabilities:
        Explicit attacker-designed distribution ``P`` over items.  When
        omitted, one is drawn from ``Dirichlet(concentration, .., )``.
    concentration:
        Dirichlet concentration for the random ``P`` (default 1.0, the
        uniform-simplex draw used by the paper's "randomly generate the
        attacker-designed distribution").
    rng:
        Randomness for the random ``P``.
    """

    name = "aa"
    targeted = False

    def __init__(
        self,
        domain_size: int,
        probabilities: Optional[Sequence[float]] = None,
        concentration: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        if domain_size < 2:
            raise AttackError(f"domain_size must be >= 2, got {domain_size}")
        self.domain_size = int(domain_size)
        if probabilities is not None:
            probs = np.asarray(probabilities, dtype=np.float64)
            if probs.shape != (self.domain_size,):
                raise AttackError(
                    f"probabilities must have shape ({self.domain_size},), got {probs.shape}"
                )
            if np.any(probs < 0) or probs.sum() <= 0:
                raise AttackError("probabilities must be non-negative with positive sum")
            self.probabilities = probs / probs.sum()
        else:
            if concentration <= 0:
                raise AttackError(f"concentration must be positive, got {concentration}")
            gen = as_generator(rng)
            self.probabilities = gen.dirichlet(np.full(self.domain_size, concentration))

    def item_distribution(self, protocol: FrequencyOracle) -> np.ndarray:
        if protocol.domain_size != self.domain_size:
            raise AttackError(
                f"attack built for domain size {self.domain_size}, protocol has "
                f"{protocol.domain_size}"
            )
        return self.probabilities

    def top_items(self, k: int) -> np.ndarray:
        """The ``k`` items with the largest attacker-designed mass.

        Mirrors the paper's partial-knowledge setting for AA, where the
        server identifies "the items that exhibit the top-r/2 frequency
        increase following the attack".
        """
        if k <= 0:
            raise AttackError(f"k must be positive, got {k}")
        order = np.argsort(self.probabilities)[::-1]
        return np.sort(order[: min(k, self.domain_size)].astype(np.int64))

    def describe(self) -> str:
        return f"aa(d={self.domain_size})"
