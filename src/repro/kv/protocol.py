"""PrivKV-style key-value frequency + mean estimation under LDP.

Each user holds a pair ``(k, v)`` with ``k`` in a key domain of size
``K`` and ``v`` in ``[-1, 1]``.  The report splits the privacy budget:

* the key is perturbed with GRR over the key domain (budget ``eps_key``);
* the value is stochastically rounded to a bit (``Pr[1] = (1+v)/2``) and
  perturbed with binary randomized response (budget ``eps_value``).

Server-side estimation:

* **key frequencies** — the standard GRR debias (a plain frequency
  oracle, so LDPRecover applies directly);
* **per-key means** — among reports claiming key ``k``, a fraction
  ``a_k = f_k p / (f_k p + (1-f_k) q)`` are genuine key-``k`` users and
  the rest flipped in from the general population, so the RR-debiased
  bit rate of the claimants satisfies
  ``r_k = a_k b_k + (1 - a_k) b_bar`` with ``b_bar`` the global debiased
  bit rate.  Solving for ``b_k`` and mapping ``mean = 2 b_k - 1``
  debiases the key flips exactly in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import RngLike, as_generator
from repro.exceptions import InvalidParameterError, ProtocolError
from repro.protocols.grr import GRR
from repro.protocols.rr import BinaryRandomizedResponse


@dataclass
class KVReports:
    """A batch of key-value reports: claimed keys and perturbed value bits."""

    keys: np.ndarray
    bits: np.ndarray

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.int64)
        self.bits = np.asarray(self.bits, dtype=np.int64)
        if self.keys.shape != self.bits.shape or self.keys.ndim != 1:
            raise ProtocolError(
                f"keys/bits must be equal-length 1-D arrays, got "
                f"{self.keys.shape} and {self.bits.shape}"
            )

    def __len__(self) -> int:
        return int(self.keys.size)


@dataclass(frozen=True)
class KVAggregate:
    """Server-side estimates: key frequencies and per-key means."""

    frequencies: np.ndarray
    means: np.ndarray
    #: Raw per-key claim counts and bit sums (needed by the recovery).
    claim_counts: np.ndarray
    bit_sums: np.ndarray


class KeyValueProtocol:
    """Key-value LDP collection with a GRR/RR budget split."""

    #: Short protocol name for experiment rows and cache fingerprints.
    name = "privkv"

    def __init__(self, eps_key: float, eps_value: float, num_keys: int) -> None:
        if num_keys < 2:
            raise InvalidParameterError(f"num_keys must be >= 2, got {num_keys}")
        self.key_oracle = GRR(epsilon=eps_key, domain_size=num_keys)
        self.value_rr = BinaryRandomizedResponse(epsilon=eps_value)
        self.num_keys = int(num_keys)

    @property
    def epsilon(self) -> float:
        """Total privacy budget (sequential composition of the two parts)."""
        return self.key_oracle.epsilon + self.value_rr.epsilon

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def perturb(self, keys: np.ndarray, values: np.ndarray, rng: RngLike = None) -> KVReports:
        """Perturb one (key, value) pair per user."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ProtocolError(
                f"keys/values must be equal-length 1-D arrays, got "
                f"{keys.shape} and {values.shape}"
            )
        if values.size and (values.min() < -1.0 or values.max() > 1.0):
            raise InvalidParameterError("values must lie in [-1, 1]")
        gen = as_generator(rng)
        reported_keys = self.key_oracle.perturb(keys, gen)
        true_bits = (gen.random(values.shape) < (1.0 + values) / 2.0).astype(np.int64)
        reported_bits = self.value_rr.perturb_bits(true_bits, gen)
        return KVReports(keys=reported_keys, bits=reported_bits)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def aggregate(self, reports: KVReports) -> KVAggregate:
        """Estimate key frequencies and per-key means from reports."""
        if not isinstance(reports, KVReports):
            raise ProtocolError(f"expected KVReports, got {type(reports)!r}")
        n = len(reports)
        if n == 0:
            raise ProtocolError("cannot aggregate zero reports")
        claim_counts = np.bincount(reports.keys, minlength=self.num_keys).astype(np.int64)
        bit_sums = np.bincount(
            reports.keys, weights=reports.bits, minlength=self.num_keys
        )
        frequencies = self.key_oracle.estimate_frequencies(claim_counts, n)
        means = self._estimate_means(frequencies, claim_counts, bit_sums, n)
        return KVAggregate(
            frequencies=frequencies,
            means=means,
            claim_counts=claim_counts,
            bit_sums=bit_sums,
        )

    def _estimate_means(
        self,
        frequencies: np.ndarray,
        claim_counts: np.ndarray,
        bit_sums: np.ndarray,
        n: int,
    ) -> np.ndarray:
        """Debias per-key means for both the RR bit noise and key flips."""
        rr = self.value_rr
        p, q = self.key_oracle.p, self.key_oracle.q
        # Global debiased bit rate (all users, key-independent).
        global_rate = float(bit_sums.sum()) / n
        b_bar = (global_rate - rr.q) / (rr.p - rr.q)
        means = np.zeros(self.num_keys, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            observed = np.where(claim_counts > 0, bit_sums / np.maximum(claim_counts, 1), 0.0)
        debiased = (observed - rr.q) / (rr.p - rr.q)
        freq = np.clip(frequencies, 0.0, 1.0)
        claim_prob = freq * p + (1.0 - freq) * q
        genuine_share = np.where(claim_prob > 0, freq * p / np.maximum(claim_prob, 1e-12), 0.0)
        for k in range(self.num_keys):
            if claim_counts[k] == 0 or genuine_share[k] <= 1e-9:
                means[k] = 0.0
                continue
            b_k = (debiased[k] - (1.0 - genuine_share[k]) * b_bar) / genuine_share[k]
            means[k] = float(np.clip(2.0 * b_k - 1.0, -1.0, 1.0))
        return means

    def craft_reports(self, keys: np.ndarray, bits: np.ndarray) -> KVReports:
        """Attacker primitive: raw (key, bit) reports bypassing perturbation."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.num_keys):
            raise ProtocolError(f"keys must lie in [0, {self.num_keys})")
        bits = np.asarray(bits, dtype=np.int64)
        if bits.size and not set(np.unique(bits)).issubset({0, 1}):
            raise ProtocolError("bits must be 0/1")
        return KVReports(keys=keys.copy(), bits=bits.copy())

    @staticmethod
    def concat(first: KVReports, second: KVReports) -> KVReports:
        """Concatenate two report batches (genuine then malicious)."""
        return KVReports(
            keys=np.concatenate([first.keys, second.keys]),
            bits=np.concatenate([first.bits, second.bits]),
        )
