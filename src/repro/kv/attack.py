"""Targeted key-value poisoning (after Wu, Cao, Jia & Gong, 2022).

The canonical attack against key-value LDP: fake users report a target
key together with the maximal value bit, inflating both the key's
frequency *and* its estimated mean.  Crafted reports bypass perturbation
(the paper's general poisoning model).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.attacks.base import resolve_target_items
from repro.exceptions import AttackError
from repro.kv.protocol import KeyValueProtocol, KVReports


class KVPoisoningAttack:
    """Promote target keys and drag their means toward ``target_bit``."""

    name = "kv-mga"

    def __init__(
        self,
        num_keys: int,
        targets: Optional[Sequence[int]] = None,
        r: Optional[int] = 3,
        target_bit: int = 1,
        rng: RngLike = None,
    ) -> None:
        if num_keys < 2:
            raise AttackError(f"num_keys must be >= 2, got {num_keys}")
        if target_bit not in (0, 1):
            raise AttackError(f"target_bit must be 0 or 1, got {target_bit}")
        self.num_keys = int(num_keys)
        self.target_bit = int(target_bit)
        self._targets = resolve_target_items(
            None if targets is None else np.asarray(list(targets)), r, self.num_keys, rng
        )

    @property
    def target_keys(self) -> np.ndarray:
        """The attacker-selected keys."""
        return self._targets

    def describe(self) -> str:
        """One-line human description for experiment rows and logs."""
        return f"{self.name}(r={self._targets.size},bit={self.target_bit})"

    def craft(self, protocol: KeyValueProtocol, m: int, rng: RngLike = None) -> KVReports:
        """Craft ``m`` malicious (key, bit) reports."""
        if m < 0:
            raise AttackError(f"m must be >= 0, got {m}")
        gen = as_generator(rng)
        keys = gen.choice(self._targets, size=m)
        bits = np.full(m, self.target_bit, dtype=np.int64)
        return protocol.craft_reports(keys, bits)
