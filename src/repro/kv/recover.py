"""Recovering poisoned key-value estimates with LDPRecover.

Key frequencies are a plain frequency-oracle aggregate, so LDPRecover
applies verbatim (non-knowledge or partial-knowledge).  Per-key means
need one extra step: the malicious reports contribute raw bits to the
claimed-key bit sums, so with the server-side ``eta`` and the (known or
inferred) target keys we deduct the expected malicious claim counts and
bit mass before re-running the mean debias — the same
deduct-then-refine pattern as Eq. 19, applied to the value channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.recover import DEFAULT_ETA, RecoveryResult, recover_frequencies
from repro.exceptions import RecoveryError
from repro.kv.protocol import KeyValueProtocol, KVAggregate


@dataclass(frozen=True)
class KVRecoveryResult:
    """Recovered key frequencies and per-key means."""

    frequencies: np.ndarray
    means: np.ndarray
    #: The underlying frequency recovery (for provenance/intermediates).
    frequency_recovery: RecoveryResult


def recover_key_value(
    protocol: KeyValueProtocol,
    aggregate: KVAggregate,
    num_reports: int,
    eta: float = DEFAULT_ETA,
    target_keys: Optional[Sequence[int]] = None,
    malicious_bit: int = 1,
) -> KVRecoveryResult:
    """Recover key frequencies and means from a poisoned KV aggregate.

    Parameters
    ----------
    protocol:
        The key-value protocol that produced ``aggregate``.
    aggregate:
        The poisoned server-side aggregate.
    num_reports:
        Total number of reports the aggregate was computed from.
    eta:
        Server-side malicious/genuine ratio guess (paper default 0.2).
    target_keys:
        Attacker-selected keys, if known (enables both LDPRecover* on the
        frequencies and the mean-channel deduction).
    malicious_bit:
        The bit the attacker is assumed to push (1 = inflate means).
    """
    if num_reports <= 0:
        raise RecoveryError(f"num_reports must be positive, got {num_reports}")
    if malicious_bit not in (0, 1):
        raise RecoveryError(f"malicious_bit must be 0 or 1, got {malicious_bit}")
    freq_recovery = recover_frequencies(
        aggregate.frequencies,
        protocol.key_oracle,
        eta=eta,
        target_items=target_keys,
    )
    if target_keys is None:
        # Without attack knowledge the mean channel cannot be corrected;
        # re-debias the means against the recovered frequencies only.
        means = protocol._estimate_means(
            freq_recovery.frequencies,
            aggregate.claim_counts,
            aggregate.bit_sums,
            num_reports,
        )
        return KVRecoveryResult(
            frequencies=freq_recovery.frequencies,
            means=means,
            frequency_recovery=freq_recovery,
        )

    targets = np.unique(np.asarray(list(target_keys), dtype=np.int64))
    if targets.size == 0 or targets.min() < 0 or targets.max() >= protocol.num_keys:
        raise RecoveryError(f"target keys must be a non-empty subset of [0, {protocol.num_keys})")
    # Expected malicious reports: eta/(1+eta) of all reports, spread
    # uniformly over the target keys (the attack's sampling model).
    m_estimate = num_reports * eta / (1.0 + eta)
    per_key = m_estimate / targets.size
    claim_counts = aggregate.claim_counts.astype(np.float64).copy()
    bit_sums = aggregate.bit_sums.astype(np.float64).copy()
    claim_counts[targets] = np.maximum(claim_counts[targets] - per_key, 0.0)
    bit_sums[targets] = np.clip(
        bit_sums[targets] - per_key * malicious_bit, 0.0, claim_counts[targets]
    )
    genuine_reports = max(1, int(round(num_reports - m_estimate)))
    means = protocol._estimate_means(
        freq_recovery.frequencies,
        np.maximum(claim_counts, 0).astype(np.int64),
        bit_sums,
        genuine_reports,
    )
    return KVRecoveryResult(
        frequencies=freq_recovery.frequencies,
        means=means,
        frequency_recovery=freq_recovery,
    )
