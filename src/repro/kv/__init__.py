"""Key-value LDP collection and poisoning recovery (paper future work).

The paper's conclusion names extending LDPRecover to "poisoning attacks
on LDP protocols for more complex tasks, such as key-value pairs
collection" as future work.  This subpackage provides a working sketch:
a PrivKV-style key-value protocol built from this library's own
primitives (GRR for keys, binary RR for values), the canonical targeted
key-value poisoning attack (fake users report a target key with the
maximal value bit, after Wu et al. 2022), and a recovery that applies
LDPRecover to the key frequencies and a malicious-mass deduction to the
per-key means.
"""

from repro.kv.protocol import KeyValueProtocol, KVAggregate
from repro.kv.attack import KVPoisoningAttack
from repro.kv.recover import KVRecoveryResult, recover_key_value

__all__ = [
    "KeyValueProtocol",
    "KVAggregate",
    "KVPoisoningAttack",
    "recover_key_value",
    "KVRecoveryResult",
]
