"""The online recovery service behind the HTTP front end.

:class:`RecoveryService` is the transport-free core: it owns one
streaming :class:`repro.sim.AggregatorState`, folds ingested report
batches into per-epoch ``support_counts`` partial sums, and serves four
frequency views per epoch — ``raw`` (Eq. 11 estimates), ``recover``
(LDPRecover), ``recover_star`` (LDPRecover* given target items) and
``detection`` (the Section VI-A5 baseline, which needs the raw reports
and is therefore only available with ``retain_reports=True``).

Views are **recomputed lazily with dirty-epoch invalidation**: every
ingest marks its epoch dirty; a read of a dirty epoch drops that epoch's
cached views and recomputes on demand; warm reads after no new ingests
run zero recovery recomputation.  The :class:`repro.sim.CallCounter` at
:attr:`RecoveryService.recomputes` makes that claim testable, exactly
like the engine's ``TASK_COUNTER`` does for cached cells.

Every number the service produces is byte-equal to the batch pipeline on
the same reports: ingest folds through
:meth:`repro.protocols.base.FrequencyOracle.fold_support_counts` (the
same arithmetic as ``chunked_support_counts``) and the views call the
exact recovery functions the exhibits use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.detection import detect_and_aggregate
from repro.core.recover import DEFAULT_ETA, recover_frequencies
from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle
from repro.sim.engine import CallCounter
from repro.sim.streaming import AggregatorState

#: The frequency views a service can serve per epoch.
METHODS = ("raw", "recover", "recover_star", "detection")

#: Snapshot wire-format version of :meth:`RecoveryService.snapshot`.
SERVICE_SNAPSHOT_FORMAT = 1


@dataclass(frozen=True)
class FrequencyView:
    """One served frequency vector plus its provenance.

    ``recomputed`` says whether this read actually ran the recovery
    computation (a cache miss on a dirty or never-read epoch) or was
    served warm.
    """

    epoch: str
    method: str
    frequencies: np.ndarray
    num_reports: int
    recomputed: bool


def _normalize_targets(targets: Optional[Sequence[int]]) -> tuple[int, ...]:
    """Canonical (sorted, deduplicated) tuple form of a target-item list."""
    if targets is None:
        return ()
    return tuple(sorted({int(t) for t in targets}))


class RecoveryService:
    """Ingest perturbed reports per epoch; serve recovered frequencies.

    Parameters
    ----------
    protocol:
        The frequency oracle the clients perturb with; also the identity
        snapshots are pinned to.
    eta:
        LDPRecover's frequency-sum tuning parameter (paper Section V-D),
        default :data:`repro.core.recover.DEFAULT_ETA`.
    chunk_users:
        Per-fold slice bound handed to the streaming kernel, like the
        engine knob of the same name.  Execution-only.
    retain_reports:
        Keep every ingested batch in memory (O(total reports)) so the
        ``detection`` view — which must rescan raw reports — is
        available.  Off by default: the streaming partial sums alone are
        O(d) per epoch.
    """

    def __init__(
        self,
        protocol: FrequencyOracle,
        eta: float = DEFAULT_ETA,
        chunk_users: Optional[int] = None,
        retain_reports: bool = False,
    ) -> None:
        self.protocol = protocol
        self.eta = float(eta)
        self.retain_reports = bool(retain_reports)
        self.state = AggregatorState(protocol, chunk_users=chunk_users)
        #: Counts actual recovery recomputations (cache misses); warm
        #: reads leave it untouched, which tests assert directly.
        self.recomputes = CallCounter()
        self.ingested_reports = 0
        self.ingested_batches = 0
        self._dirty: set[str] = set()
        self._views: dict[str, dict[tuple[str, tuple[int, ...]], np.ndarray]] = {}
        self._retained: dict[str, Any] = {}
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------
    def ingest(self, epoch: str, reports: Any) -> int:
        """Fold one report batch into ``epoch``; returns the batch size.

        Marks the epoch dirty, so the next ``frequencies`` read of it
        recomputes; other epochs' cached views are untouched.
        """
        n = self.state.ingest(epoch, reports)
        if self.retain_reports:
            held = self._retained.get(epoch)
            self._retained[epoch] = (
                reports if held is None else self.protocol.concat_reports(held, reports)
            )
        self.ingested_reports += n
        self.ingested_batches += 1
        self._dirty.add(epoch)
        return n

    def ingest_payload(self, epoch: str, payload: dict[str, Any]) -> int:
        """Decode a wire-encoded batch (see ``encode_reports``) and ingest it."""
        return self.ingest(epoch, self.protocol.decode_reports(payload))

    def absorb(self, other: AggregatorState) -> int:
        """Fan a collector's accumulated state into this service.

        The multi-collector ingest seam: remote collectors fold their
        share of the reports into local
        :class:`~repro.sim.streaming.AggregatorState` instances and ship
        the folded state here (fingerprint-matched protocols enforced by
        :meth:`~repro.sim.streaming.AggregatorState.merge`).  Every epoch
        ``other`` touched is marked dirty, so subsequent reads recompute —
        byte-equal to having ingested the collector's batches directly.
        Returns the number of reports absorbed.
        """
        absorbed_reports = sum(state.num_reports for state in other.epochs.values())
        absorbed_batches = sum(state.batches for state in other.epochs.values())
        self.state.merge(other)
        self.ingested_reports += absorbed_reports
        self.ingested_batches += absorbed_batches
        self._dirty.update(other.epoch_names())
        return absorbed_reports

    # ------------------------------------------------------------------
    # Read path (lazy, dirty-epoch invalidated)
    # ------------------------------------------------------------------
    def frequencies(
        self,
        epoch: str,
        method: str = "raw",
        targets: Optional[Sequence[int]] = None,
    ) -> FrequencyView:
        """The ``method`` frequency view of ``epoch``, recomputed if stale.

        ``targets`` (attacker-selected items) is required by
        ``recover_star`` and ``detection`` and ignored by the others; its
        order does not matter.  Raises
        :class:`~repro.exceptions.InvalidParameterError` for unknown
        epochs, empty epochs, unknown methods, or a ``detection`` read on
        a service built without ``retain_reports``.
        """
        if method not in METHODS:
            raise InvalidParameterError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        if epoch not in self.state.epochs:
            raise InvalidParameterError(f"unknown epoch {epoch!r}")
        if self.state.num_reports(epoch) == 0:
            raise InvalidParameterError(f"epoch {epoch!r} holds no reports")
        if epoch in self._dirty:
            self._views.pop(epoch, None)
            self._dirty.discard(epoch)
        key = (method, _normalize_targets(targets))
        cached = self._views.setdefault(epoch, {})
        freq = cached.get(key)
        recomputed = freq is None
        if freq is None:
            freq = self._compute(epoch, method, key[1])
            cached[key] = freq
            self.recomputes.add(1)
        return FrequencyView(
            epoch=epoch,
            method=method,
            frequencies=freq,
            num_reports=self.state.num_reports(epoch),
            recomputed=recomputed,
        )

    def _compute(self, epoch: str, method: str, targets: tuple[int, ...]) -> np.ndarray:
        """One actual recovery computation (the thing the counter counts)."""
        raw = self.state.estimate_frequencies(epoch)
        if method == "raw":
            return raw
        if method == "recover":
            return recover_frequencies(raw, self.protocol, eta=self.eta).frequencies
        if not targets:
            raise InvalidParameterError(f"method {method!r} requires target items")
        if method == "recover_star":
            return recover_frequencies(
                raw, self.protocol, eta=self.eta, target_items=list(targets)
            ).frequencies
        reports = self._retained.get(epoch)
        if reports is None:
            raise InvalidParameterError(
                "detection needs raw reports; start the service with "
                "retain_reports=True (note the O(total reports) memory cost)"
            )
        return detect_and_aggregate(self.protocol, reports, list(targets)).frequencies

    # ------------------------------------------------------------------
    # Observability and persistence
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Operational counters for the ``/stats`` endpoint.

        ``recomputes`` is the running count of actual recovery
        computations — a warm read sequence holds it constant, which is
        the service-level "zero recomputation" guarantee in number form.
        """
        return {
            "protocol": {
                "name": self.protocol.name,
                "epsilon": self.protocol.epsilon,
                "domain_size": self.protocol.domain_size,
            },
            "eta": self.eta,
            "retain_reports": self.retain_reports,
            "uptime_seconds": time.monotonic() - self._started,
            "ingested_reports": self.ingested_reports,
            "ingested_batches": self.ingested_batches,
            "recomputes": self.recomputes.count,
            "epochs": {
                name: {
                    "num_reports": self.state.num_reports(name),
                    "batches": self.state.epochs[name].batches,
                    "dirty": name in self._dirty,
                }
                for name in self.state.epoch_names()
            },
        }

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe snapshot: the aggregator state plus ingest counters.

        Cached views and retained raw reports are *not* persisted — views
        recompute lazily after restore, and a restored service serves
        ``detection`` only for reports ingested after the restore.
        """
        return {
            "format": SERVICE_SNAPSHOT_FORMAT,
            "eta": self.eta,
            "ingested_reports": self.ingested_reports,
            "ingested_batches": self.ingested_batches,
            "aggregator": self.state.snapshot(),
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict[str, Any],
        protocol: FrequencyOracle,
        chunk_users: Optional[int] = None,
        retain_reports: bool = False,
    ) -> "RecoveryService":
        """Resume a service from a :meth:`snapshot` dict.

        ``protocol`` must fingerprint-match the snapshot (enforced by
        :meth:`repro.sim.AggregatorState.restore`); ingesting the
        remainder of a stream into the restored service yields the same
        counts as an uninterrupted run — nothing is double-counted
        because the snapshot holds folded partial sums, not batches.
        """
        if snapshot.get("format") != SERVICE_SNAPSHOT_FORMAT:
            raise InvalidParameterError(
                f"unsupported service snapshot format {snapshot.get('format')!r}; "
                f"expected {SERVICE_SNAPSHOT_FORMAT}"
            )
        service = cls(
            protocol,
            eta=float(snapshot.get("eta", DEFAULT_ETA)),
            chunk_users=chunk_users,
            retain_reports=retain_reports,
        )
        service.state = AggregatorState.restore(
            snapshot["aggregator"], protocol, chunk_users=chunk_users
        )
        service.ingested_reports = int(snapshot.get("ingested_reports", 0))
        service.ingested_batches = int(snapshot.get("ingested_batches", 0))
        return service


__all__ = [
    "METHODS",
    "SERVICE_SNAPSHOT_FORMAT",
    "FrequencyView",
    "RecoveryService",
]
