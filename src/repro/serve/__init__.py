"""Online LDP recovery service: the paper's aggregator as a system.

The paper frames LDPRecover / LDPRecover* as something the *aggregator*
runs over reports it has collected (Section V); the simulation stack
reaches recovery only through batch trial loops.  This package serves the
same pipeline online:

* :class:`~repro.serve.service.RecoveryService` — ingest perturbed report
  batches per epoch into streaming :class:`repro.sim.AggregatorState`
  partial sums and serve raw / LDPRecover / LDPRecover* / Detection
  frequency views, recomputed lazily with dirty-epoch invalidation.
* :class:`~repro.serve.snapshots.SnapshotStore` — crash-safe snapshot
  persistence (atomic-replace writes, like the cell cache's block store)
  so a restarted service resumes mid-stream without double-counting.
* :mod:`repro.serve.http` — a dependency-free asyncio HTTP front end
  (``/ingest``, ``/frequencies``, ``/healthz``, ``/stats``) behind the
  ``repro serve`` CLI subcommand.

Everything the service computes is byte-equal to the batch pipeline on
the same reports: ingest folds through the protocol's explicit-state
kernel, and the recovery methods are the exact functions the exhibits
call (:func:`repro.core.recover.recover_frequencies`,
:func:`repro.core.detection.detect_and_aggregate`).
"""

from repro.serve.http import RecoveryHTTPServer, run_server
from repro.serve.service import FrequencyView, RecoveryService
from repro.serve.snapshots import SnapshotStore

__all__ = [
    "FrequencyView",
    "RecoveryHTTPServer",
    "RecoveryService",
    "SnapshotStore",
    "run_server",
]
