"""Crash-safe snapshot persistence for the recovery service.

One JSON file per snapshot under a directory, written with the cell
cache's atomic-replace discipline (temp file + ``os.replace``) so a
kill mid-write never leaves a truncated snapshot behind — the previous
snapshot stays the latest readable one.  File names carry a
monotonically increasing sequence number (``snapshot-00000001.json``),
derived by scanning the directory, so ordering never depends on the
clock; the wall-clock ``created_at`` stamp inside each file is
operational metadata only and never enters any identity.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import tempfile
import time
from typing import Any, Optional

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")


class SnapshotStore:
    """Sequence-numbered JSON snapshots under one directory.

    Parameters
    ----------
    root:
        Directory the snapshots live in; created on first save.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = pathlib.Path(root)

    def paths(self) -> list[pathlib.Path]:
        """Every snapshot file, sorted by sequence number."""
        if not self.root.is_dir():
            return []
        return sorted(
            path for path in self.root.iterdir() if _SNAPSHOT_RE.match(path.name)
        )

    def _next_index(self) -> int:
        existing = self.paths()
        if not existing:
            return 1
        match = _SNAPSHOT_RE.match(existing[-1].name)
        assert match is not None
        return int(match.group(1)) + 1

    def save(self, snapshot: dict[str, Any]) -> pathlib.Path:
        """Persist ``snapshot`` atomically; returns the new file's path.

        The payload is wrapped with the sequence number and a wall-clock
        ``created_at`` stamp (metadata for operators; restore ignores it).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        index = self._next_index()
        path = self.root / f"snapshot-{index:08d}.json"
        entry = {
            "index": index,
            "created_at": time.time(),
            "snapshot": snapshot,
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"), default=float)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def latest(self) -> Optional[dict[str, Any]]:
        """The newest readable snapshot payload, or ``None`` if there is none.

        Unreadable or truncated files (a crash racing ``os.replace`` on a
        non-atomic filesystem) are skipped in favor of the next-newest —
        the same treat-as-miss policy the cell cache applies.
        """
        for path in reversed(self.paths()):
            try:
                with open(path, encoding="utf-8") as handle:
                    entry = json.load(handle)
                return dict(entry["snapshot"])
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return None


__all__ = ["SnapshotStore"]
