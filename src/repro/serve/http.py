"""Dependency-free asyncio HTTP front end for the recovery service.

A deliberately small HTTP/1.1 server over ``asyncio`` streams — the
container ships no aiohttp, and the service needs only four JSON
endpoints:

* ``POST /ingest`` — body ``{"epoch": ..., "reports": <wire batch>}``
  where the batch is the protocol's ``encode_reports`` form; folds into
  the streaming state and marks the epoch dirty.
* ``GET /frequencies?epoch=E&method=M[&targets=1,2]`` — one of the
  :data:`repro.serve.service.METHODS` views, recomputed lazily.
* ``GET /healthz`` — liveness probe.
* ``GET /stats`` — the service's operational counters.
* ``POST /snapshot`` — persist the service state through the configured
  :class:`repro.serve.snapshots.SnapshotStore` (400 when none is).

Connections are keep-alive (HTTP/1.1 default), which is what lets the
throughput benchmark stream many ingest batches over one socket.  The
wall clock appears exactly once — the RFC 7231 ``Date`` response header —
which is transport metadata, never service state (this module is
allowlisted for REP002 on those grounds).
"""

from __future__ import annotations

import asyncio
import json
import time
from email.utils import formatdate
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ReproError
from repro.serve.service import RecoveryService
from repro.serve.snapshots import SnapshotStore

#: Largest accepted request body; ingest batches beyond this must be split.
MAX_BODY_BYTES = 1 << 28

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _PayloadTooLarge(Exception):
    """A request declared a body beyond :data:`MAX_BODY_BYTES`.

    Raised by the request parser *before* reading the body, so the
    handler can render a ``413`` and close instead of buffering an
    arbitrarily large upload; the unread body makes the stream
    unrecoverable, hence no keep-alive after it.
    """


class RecoveryHTTPServer:
    """Serve one :class:`~repro.serve.service.RecoveryService` over HTTP.

    Parameters
    ----------
    service:
        The transport-free service core.
    host:
        Bind address (default loopback).
    port:
        TCP port; ``0`` binds an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    snapshot_store:
        Optional :class:`~repro.serve.snapshots.SnapshotStore` backing
        ``POST /snapshot``.
    """

    def __init__(
        self,
        service: RecoveryService,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_store: Optional[SnapshotStore] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.snapshot_store = snapshot_store
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections; resolves :attr:`port`."""
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (:meth:`start` must have been awaited)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: a keep-alive loop of request/response."""
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _PayloadTooLarge as exc:
                    # The oversized body is still unread, so the stream
                    # cannot be resynchronized: answer and close.
                    writer.write(_render_response(413, {"error": str(exc)}, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                status, payload = self._dispatch(method, target, body)
                writer.write(_render_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # The task is ending either way; a cancellation landing in
                # the close waiter (event-loop shutdown) has nothing left
                # to interrupt.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[tuple[str, str, dict[str, str], bytes]]:
        """Parse one request off the stream, ``None`` at end of stream."""
        line = await reader.readline()
        if not line or not line.strip():
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if not raw or raw in (b"\r\n", b"\n"):
                break
            name, _sep, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit; split the batch"
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _dispatch(self, method: str, target: str, body: bytes) -> tuple[int, dict[str, Any]]:
        """Route one request to its handler; all errors become JSON."""
        split = urlsplit(target)
        path = split.path
        query = {key: values[-1] for key, values in parse_qs(split.query).items()}
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "healthz is GET-only"}
                return 200, {"status": "ok"}
            if path == "/stats":
                if method != "GET":
                    return 405, {"error": "stats is GET-only"}
                return 200, self.service.stats()
            if path == "/frequencies":
                if method != "GET":
                    return 405, {"error": "frequencies is GET-only"}
                return self._frequencies(query)
            if path == "/ingest":
                if method != "POST":
                    return 405, {"error": "ingest is POST-only"}
                return self._ingest(body)
            if path == "/snapshot":
                if method != "POST":
                    return 405, {"error": "snapshot is POST-only"}
                return self._snapshot()
            return 404, {"error": f"no route for {path}"}
        except ReproError as exc:
            return 400, {"error": str(exc)}
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"error": f"malformed request: {exc!r}"}
        except Exception as exc:  # pragma: no cover - defensive catch-all
            return 500, {"error": f"internal error: {exc!r}"}

    def _ingest(self, body: bytes) -> tuple[int, dict[str, Any]]:
        """``POST /ingest``: decode and fold one wire-encoded batch."""
        doc = json.loads(body.decode("utf-8"))
        epoch = str(doc["epoch"])
        ingested = self.service.ingest_payload(epoch, doc["reports"])
        return 200, {
            "epoch": epoch,
            "ingested": ingested,
            "total_reports": self.service.state.num_reports(epoch),
        }

    def _frequencies(self, query: dict[str, str]) -> tuple[int, dict[str, Any]]:
        """``GET /frequencies``: serve one lazily recomputed view."""
        if "epoch" not in query:
            return 400, {"error": "missing required query parameter 'epoch'"}
        targets = None
        if query.get("targets"):
            targets = [int(part) for part in query["targets"].split(",") if part]
        view = self.service.frequencies(
            query["epoch"], method=query.get("method", "raw"), targets=targets
        )
        return 200, {
            "epoch": view.epoch,
            "method": view.method,
            "num_reports": view.num_reports,
            "recomputed": view.recomputed,
            "frequencies": [float(f) for f in view.frequencies],
        }

    def _snapshot(self) -> tuple[int, dict[str, Any]]:
        """``POST /snapshot``: persist state via the configured store."""
        if self.snapshot_store is None:
            return 400, {"error": "no snapshot store configured (--snapshot-dir)"}
        path = self.snapshot_store.save(self.service.snapshot())
        return 200, {"path": str(path)}


def _render_response(status: int, payload: dict[str, Any], keep_alive: bool) -> bytes:
    """Serialize one JSON response with the standard HTTP/1.1 framing."""
    body = json.dumps(payload, separators=(",", ":"), default=float).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Date: {formatdate(time.time(), usegmt=True)}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def _serve_until_cancelled(server: RecoveryHTTPServer) -> None:
    """Start ``server``, announce the bound address on stdout, run forever."""
    await server.start()
    print(f"serving on http://{server.host}:{server.port}", flush=True)
    await server.serve_forever()


def run_server(
    service: RecoveryService,
    host: str = "127.0.0.1",
    port: int = 0,
    snapshot_store: Optional[SnapshotStore] = None,
) -> None:
    """Blocking convenience wrapper: serve until interrupted.

    Builds a :class:`RecoveryHTTPServer` for ``service`` on
    ``host``:``port`` (with ``snapshot_store`` backing ``POST
    /snapshot``), prints the bound address line the smoke tooling waits
    for, and blocks in the event loop; Ctrl-C returns cleanly.
    """
    server = RecoveryHTTPServer(
        service, host=host, port=port, snapshot_store=snapshot_store
    )
    try:
        asyncio.run(_serve_until_cancelled(server))
    except KeyboardInterrupt:
        pass


__all__ = ["MAX_BODY_BYTES", "RecoveryHTTPServer", "run_server"]
