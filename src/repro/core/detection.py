"""The Detection baseline (paper Section VI-A5).

The comparison method adapted from Cao et al.'s countermeasures with the
same partial knowledge as LDPRecover*: "Detection identifies users as
malicious if their reported data matches the target items" and drops them
before aggregation.  Because genuine users also (noisily) support target
items, Detection over-removes and loses accuracy — which is exactly what
Figures 3-4 show.

"Matches the target items" is protocol dependent.  For GRR a report *is*
an item, so matching means reporting a target.  For the vector protocols
(OUE, OLH) a single report supports many items, and flagging any-target
support would remove essentially every user; instead a report matches when
it supports at least ``min_support_fraction`` of the target set — the
signature of an MGA-crafted report, which supports all (OUE) or most (OLH)
targets simultaneously.  With the default fraction of 0.5 the rule
degenerates to the paper's "reported data is a target item" for GRR
(support counts are 0/1 there).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.exceptions import RecoveryError
from repro.protocols.base import FrequencyOracle


@dataclass(frozen=True)
class DetectionResult:
    """Frequencies after detection plus bookkeeping about removals."""

    frequencies: np.ndarray
    removed: int
    kept: int

    @property
    def removal_rate(self) -> float:
        total = self.removed + self.kept
        return self.removed / total if total else 0.0


def detect_and_aggregate(
    protocol: FrequencyOracle,
    reports: Any,
    target_items: Sequence[int],
    min_support_fraction: float = 0.5,
) -> DetectionResult:
    """Drop reports matching the target-item signature, then aggregate.

    Parameters
    ----------
    protocol:
        The frequency oracle that produced ``reports``.
    reports:
        The full (poisoned) report batch.
    target_items:
        The attacker-selected items the server believes in.
    min_support_fraction:
        A report is flagged when it supports at least
        ``ceil(min_support_fraction * |T|)`` of the targets (minimum 1).
    """
    targets = np.unique(np.asarray(list(target_items), dtype=np.int64))
    if targets.size == 0:
        raise RecoveryError("Detection needs a non-empty target item set")
    if not 0.0 < min_support_fraction <= 1.0:
        raise RecoveryError(
            f"min_support_fraction must be in (0, 1], got {min_support_fraction}"
        )
    cap = min(targets.size, protocol.max_report_support())
    threshold = max(1, math.ceil(min_support_fraction * cap))
    support = protocol.target_support_counts(reports, targets)
    flagged = support >= threshold
    kept_reports = protocol.select_reports(reports, ~flagged)
    kept = protocol.num_reports(kept_reports)
    if kept == 0:
        raise RecoveryError("Detection removed every report; cannot aggregate")
    frequencies = protocol.aggregate(kept_reports)
    return DetectionResult(
        frequencies=frequencies,
        removed=int(flagged.sum()),
        kept=kept,
    )
