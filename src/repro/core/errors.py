"""Approximation error of LDPRecover (paper Section V-E, Theorems 4-5).

The genuine frequency estimator rests on CLT approximations; when the
number of reports is small the normal law is only approximate.  Theorems
4-5 bound the CDF distance between the true and approximated laws via a
Berry-Esseen bound with Shevtsova's constants:

    ``sup_w |F(w) - Phi(w)| <= 0.33554 * (g + 0.415 * sigma^3) / (sigma^3 * sqrt(N))``

where ``g`` is the third absolute central moment and ``sigma`` the standard
deviation of a *single* report's count estimate, and ``N`` is the number of
reports (``m`` for the malicious law, Theorem 4; ``n`` for the genuine law,
Theorem 5).  Both rates are ``O(1/sqrt(N))`` — the paper's conclusion that
the approximation error stays tolerable even with modest populations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import support_probability
from repro.exceptions import InvalidParameterError
from repro.protocols.base import ProtocolParams

#: Shevtsova (2010) Berry-Esseen constants used by the paper.
BERRY_ESSEEN_C = 0.33554
BERRY_ESSEEN_SHIFT = 0.415


@dataclass(frozen=True)
class MomentSummary:
    """First three (absolute central) moments of a per-report estimate."""

    mean: float
    variance: float
    third_absolute: float

    @property
    def std(self) -> float:
        return self.variance**0.5


def per_report_moments(support_prob: float, p: float, q: float) -> MomentSummary:
    """Moments of the two-valued estimate ``(1_S(v) - q)/(p - q)``.

    With support probability ``s`` the estimate takes value
    ``a = (1-q)/(p-q)`` w.p. ``s`` and ``b = -q/(p-q)`` w.p. ``1-s``.
    """
    if not 0.0 <= support_prob <= 1.0:
        raise InvalidParameterError(f"support probability must be in [0,1], got {support_prob}")
    gap = p - q
    if gap == 0:
        raise InvalidParameterError("degenerate protocol: p == q")
    a = (1.0 - q) / gap
    b = -q / gap
    mean = support_prob * a + (1.0 - support_prob) * b
    variance = support_prob * (a - mean) ** 2 + (1.0 - support_prob) * (b - mean) ** 2
    third = support_prob * abs(a - mean) ** 3 + (1.0 - support_prob) * abs(b - mean) ** 3
    return MomentSummary(mean=mean, variance=variance, third_absolute=third)


def berry_esseen_bound(moments: MomentSummary, num_reports: int) -> float:
    """The Shevtsova-constant Berry-Esseen CDF-distance bound.

    Returns ``inf`` for degenerate (zero-variance) per-report laws, where
    the CLT does not apply but the estimate is deterministic anyway.
    """
    if num_reports <= 0:
        raise InvalidParameterError(f"num_reports must be positive, got {num_reports}")
    sigma3 = moments.std**3
    if sigma3 == 0.0:
        return float("inf")
    return (
        BERRY_ESSEEN_C
        * (moments.third_absolute + BERRY_ESSEEN_SHIFT * sigma3)
        / (sigma3 * num_reports**0.5)
    )


def malicious_cdf_error_bound(
    attack_probability: float, params: ProtocolParams, m: int
) -> float:
    """Theorem 4: CDF-distance bound for the malicious frequency law.

    ``attack_probability`` is the attacker-designed probability ``P(v)``
    (the support probability of a crafted single-item report).
    """
    moments = per_report_moments(attack_probability, params.p, params.q)
    return berry_esseen_bound(moments, m)


def genuine_cdf_error_bound(
    true_frequency: float, params: ProtocolParams, n: int
) -> float:
    """Theorem 5: CDF-distance bound for the genuine frequency law.

    A genuine report supports ``v`` with probability
    ``s = f*p + (1-f)*q``.
    """
    s = support_probability(true_frequency, params.p, params.q)
    moments = per_report_moments(s, params.p, params.q)
    return berry_esseen_bound(moments, n)
