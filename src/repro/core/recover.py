"""LDPRecover and LDPRecover*: the end-to-end recovery (Algorithm 1).

Given the poisoned frequency vector the server aggregated, recovery runs:

1. estimate the malicious frequencies ``f_Y`` — from protocol parameters
   only (non-knowledge, Eq. 26), from known target items
   (partial knowledge / LDPRecover*, Eq. 30), or from an external source
   such as the k-means defense (the "recovery paradigm" hook);
2. apply the genuine frequency estimator
   ``f_X_tilde = (1 + eta) f_Z - eta f_Y`` (Eq. 19/27/31);
3. refine with the KKT projection onto the probability simplex
   (Eq. 32-35), enforcing the public prior that frequencies are
   non-negative and sum to one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.estimator import genuine_frequency_estimate, validate_eta
from repro.core.malicious import MaliciousEstimate, build_malicious_estimate
from repro.core.projection import project_onto_simplex_kkt
from repro.exceptions import RecoveryError
from repro.protocols.base import FrequencyOracle, ProtocolParams

#: The paper's default server-side ratio knob (Section VI-A4): deliberately
#: larger than the real m/n at the default attack strength beta = 0.05.
DEFAULT_ETA = 0.2


@dataclass(frozen=True)
class RecoveryResult:
    """Everything LDPRecover derives on the way to the recovered vector."""

    #: Final recovered frequency vector (non-negative, sums to 1).
    frequencies: np.ndarray
    #: The Eq. 19 estimate before the simplex projection.
    estimated_genuine: np.ndarray
    #: The malicious frequency estimate used (with provenance).
    malicious: MaliciousEstimate
    #: The eta the server used.
    eta: float

    @property
    def scenario(self) -> str:
        """Knowledge scenario: non-knowledge / partial-knowledge / external."""
        return self.malicious.scenario


def _resolve_params(protocol: Union[FrequencyOracle, ProtocolParams]) -> ProtocolParams:
    if isinstance(protocol, ProtocolParams):
        return protocol
    if isinstance(protocol, FrequencyOracle):
        return protocol.params
    raise RecoveryError(
        f"expected a FrequencyOracle or ProtocolParams, got {type(protocol)!r}"
    )


def recover_frequencies(
    poisoned_freq: np.ndarray,
    protocol: Union[FrequencyOracle, ProtocolParams],
    eta: float = DEFAULT_ETA,
    target_items: Optional[Sequence[int]] = None,
    malicious_estimate: Optional[np.ndarray] = None,
) -> RecoveryResult:
    """Run LDPRecover (or LDPRecover* when ``target_items`` is given).

    Parameters
    ----------
    poisoned_freq:
        The frequency vector aggregated from all reports (Eq. 11 applied
        to the poisoned data ``Z``).
    protocol:
        The LDP protocol (or just its public parameters).
    eta:
        Server-chosen malicious/genuine ratio; the paper's default 0.2.
    target_items:
        Attacker-selected items, if known (LDPRecover*).
    malicious_estimate:
        A full externally learned ``f_Y`` vector (the recovery-paradigm
        hook, e.g. from the k-means defense).  Takes precedence over
        ``target_items``.

    Returns
    -------
    RecoveryResult
        Recovered frequencies plus the intermediate quantities.
    """
    params = _resolve_params(protocol)
    eta = validate_eta(eta)
    poisoned = np.asarray(poisoned_freq, dtype=np.float64)
    if poisoned.shape != (params.domain_size,):
        raise RecoveryError(
            f"poisoned frequencies must have shape ({params.domain_size},), "
            f"got {poisoned.shape}"
        )
    targets = None if target_items is None else np.asarray(list(target_items), dtype=np.int64)
    malicious = build_malicious_estimate(
        poisoned, params, target_items=targets, external_estimate=malicious_estimate
    )
    estimated = genuine_frequency_estimate(poisoned, malicious.frequencies, eta)
    refined = project_onto_simplex_kkt(estimated)
    return RecoveryResult(
        frequencies=refined,
        estimated_genuine=estimated,
        malicious=malicious,
        eta=eta,
    )


class LDPRecover:
    """Object-style interface around :func:`recover_frequencies`.

    Bind the protocol and ``eta`` once, then call :meth:`recover` on each
    poisoned vector.  ``LDPRecover(protocol).recover(f_z)`` is the
    non-knowledge method; pass ``target_items`` for LDPRecover*.
    """

    def __init__(
        self,
        protocol: Union[FrequencyOracle, ProtocolParams],
        eta: float = DEFAULT_ETA,
    ) -> None:
        self.params = _resolve_params(protocol)
        self.eta = validate_eta(eta)

    def recover(
        self,
        poisoned_freq: np.ndarray,
        target_items: Optional[Sequence[int]] = None,
        malicious_estimate: Optional[np.ndarray] = None,
    ) -> RecoveryResult:
        """Recover genuine frequencies from a poisoned vector."""
        return recover_frequencies(
            poisoned_freq,
            self.params,
            eta=self.eta,
            target_items=target_items,
            malicious_estimate=malicious_estimate,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LDPRecover(protocol={self.params.name!r}, eta={self.eta})"
