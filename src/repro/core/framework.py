"""Analytical framework for poisoning attacks (paper Section V-B1).

The framework has three parties — genuine users ``X``, an attacker crafting
``Y``, and the server aggregating ``Z = X_tilde U Y`` — and derives the
relationship between the three frequency vectors:

    ``f_Z(v) = n/(n+m) * f_X_tilde(v) + m/(n+m) * f_Y(v)``      (Eq. 14)

plus the asymptotic normal laws of each (Lemmas 1-2, Theorem 1).  This
module implements those moments in closed form; they back the estimator's
error analysis, the Berry-Esseen bounds of :mod:`repro.core.errors` and the
statistical tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.protocols.base import ProtocolParams


@dataclass(frozen=True)
class NormalLaw:
    """Mean/variance pair of an asymptotically normal frequency estimate."""

    mean: float
    variance: float

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


def mixture_frequency(
    genuine_freq: np.ndarray, malicious_freq: np.ndarray, n: int, m: int
) -> np.ndarray:
    """Compose the poisoned frequency vector (Eq. 14)."""
    if n <= 0 or m < 0:
        raise InvalidParameterError(f"need n > 0 and m >= 0, got n={n}, m={m}")
    genuine = np.asarray(genuine_freq, dtype=np.float64)
    malicious = np.asarray(malicious_freq, dtype=np.float64)
    total = n + m
    return (n / total) * genuine + (m / total) * malicious


def support_probability(true_frequency: float, p: float, q: float) -> float:
    """Probability that one genuine report supports a fixed item ``v``.

    A user holding ``v`` (probability ``f``) supports it with probability
    ``p``; any other user with probability ``q``.
    """
    return true_frequency * p + (1.0 - true_frequency) * q


def per_report_estimate_moments(support_prob: float, p: float, q: float) -> NormalLaw:
    """Moments of the single-report count estimate ``(1_S(v) - q)/(p - q)``.

    The estimate is two-valued: ``(1-q)/(p-q)`` with probability ``s`` and
    ``-q/(p-q)`` otherwise, so mean ``(s-q)/(p-q)`` and variance
    ``s(1-s)/(p-q)^2`` — the building block of Lemmas 1 and 2.
    """
    if not 0.0 <= support_prob <= 1.0:
        raise InvalidParameterError(f"support probability must be in [0,1], got {support_prob}")
    gap = p - q
    if gap == 0:
        raise InvalidParameterError("degenerate protocol: p == q")
    mean = (support_prob - q) / gap
    variance = support_prob * (1.0 - support_prob) / gap**2
    return NormalLaw(mean=mean, variance=variance)


def genuine_frequency_law(true_frequency: float, params: ProtocolParams, n: int) -> NormalLaw:
    """Lemma 2: asymptotic law of the genuine aggregated frequency.

    ``mean = f_X(v)`` and
    ``variance = q(1-q)/(n(p-q)^2) + f_X(v)(1-p-q)/(n(p-q))``.
    """
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    p, q = params.p, params.q
    gap = p - q
    variance = q * (1.0 - q) / (n * gap**2) + true_frequency * (1.0 - p - q) / (n * gap)
    return NormalLaw(mean=float(true_frequency), variance=float(variance))


def malicious_frequency_law(support_prob: float, params: ProtocolParams, m: int) -> NormalLaw:
    """Lemma 1: asymptotic law of the malicious aggregated frequency.

    ``support_prob`` is the probability that one crafted report supports
    the item (for single-item encodings this equals the attacker-designed
    probability ``P(v)``).  The law is the per-report law scaled by ``m``:
    ``mean = mu_y`` and ``variance = Var[per-report]/m``.
    """
    if m <= 0:
        raise InvalidParameterError(f"m must be positive, got {m}")
    per_report = per_report_estimate_moments(support_prob, params.p, params.q)
    return NormalLaw(mean=per_report.mean, variance=per_report.variance / m)


def poisoned_frequency_law(genuine: NormalLaw, malicious: NormalLaw, eta: float) -> NormalLaw:
    """Theorem 1: law of the poisoned frequency as a mixture.

    ``mu_z = mu_x/(1+eta) + eta*mu_y/(1+eta)`` and
    ``var_z = var_x/(1+eta)^2 + eta^2*var_y/(1+eta)^2``, with
    ``eta = m/n``.
    """
    if eta < 0:
        raise InvalidParameterError(f"eta must be >= 0, got {eta}")
    scale = 1.0 + eta
    mean = genuine.mean / scale + eta * malicious.mean / scale
    variance = genuine.variance / scale**2 + eta**2 * malicious.variance / scale**2
    return NormalLaw(mean=mean, variance=variance)


def decompose_poisoned_frequency(
    poisoned_freq: np.ndarray, malicious_freq: np.ndarray, eta: float
) -> np.ndarray:
    """Invert Eq. 14 given the malicious frequencies (the Eq. 19 estimator).

    Exposed here for symmetry with :func:`mixture_frequency`; the estimator
    proper (with moments) lives in :mod:`repro.core.estimator`.
    """
    poisoned = np.asarray(poisoned_freq, dtype=np.float64)
    malicious = np.asarray(malicious_freq, dtype=np.float64)
    return (1.0 + eta) * poisoned - eta * malicious
