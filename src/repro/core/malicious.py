"""Malicious frequency learning (paper Sections V-C and V-D).

The server never sees ``f_Y`` directly.  LDPRecover learns its *summation*
from the protocol parameters alone (Eq. 20-21) and spreads it over the
domain, either uniformly over the "suspicious" sub-domain ``D1`` (the
non-knowledge scenario, Eq. 26) or concentrated on the attacker-selected
items ``T`` (the partial-knowledge scenario, Eq. 28-30).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import RecoveryError
from repro.protocols.base import ProtocolParams


def learned_malicious_sum(params: ProtocolParams) -> float:
    """Eq. 21: ``sum_v f_Y(v) = (1 - q*d) / (p - q)``.

    Derivation (Eq. 20): crafted reports bypass perturbation but pass
    through the aggregation debias, and the attacker-designed item
    frequencies always sum to one, so the sum of the aggregated malicious
    frequencies concentrates on a protocol-only constant.
    """
    return params.expected_malicious_sum()


def split_domain(poisoned_freq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Partition ``D`` into ``(D0, D1)`` boolean masks (Section V-D).

    ``D0 = {v : f_Z(v) <= 0}`` — items that cannot plausibly carry
    malicious mass; ``D1`` is the rest, the potential poisoning victims.
    """
    poisoned = np.asarray(poisoned_freq, dtype=np.float64)
    d0 = poisoned <= 0.0
    return d0, ~d0


def uniform_malicious_estimate(
    poisoned_freq: np.ndarray, params: ProtocolParams
) -> np.ndarray:
    """Eq. 26: the non-knowledge malicious frequency estimate ``f'_Y``.

    Zero on ``D0`` and the learned sum split uniformly over ``D1``.  When
    every poisoned frequency is non-positive (degenerate but possible for
    tiny populations), the sum is spread over the whole domain instead so
    the estimator stays well-defined.
    """
    poisoned = np.asarray(poisoned_freq, dtype=np.float64)
    if poisoned.shape != (params.domain_size,):
        raise RecoveryError(
            f"poisoned frequencies must have shape ({params.domain_size},), "
            f"got {poisoned.shape}"
        )
    total = learned_malicious_sum(params)
    _, d1 = split_domain(poisoned)
    estimate = np.zeros_like(poisoned)
    if d1.any():
        estimate[d1] = total / d1.sum()
    else:
        estimate[:] = total / poisoned.size
    return estimate


def partial_knowledge_malicious_estimate(
    params: ProtocolParams, target_items: np.ndarray
) -> np.ndarray:
    """Eq. 30: the partial-knowledge malicious frequency estimate ``f*_Y``.

    With the attacker-selected items ``T`` known, the attacker-designed
    distribution puts no mass outside ``T``, so (Eq. 28)
    ``sum_{v not in T} f_Y(v) = -q*d/(p - q)`` spread uniformly over
    ``D' = D \\ T``, and the remainder of the learned sum (Eq. 29) spread
    uniformly over ``T``.
    """
    d = params.domain_size
    targets = np.unique(np.asarray(target_items, dtype=np.int64))
    if targets.size == 0:
        raise RecoveryError("target item set must be non-empty for partial knowledge")
    if targets.min() < 0 or targets.max() >= d:
        raise RecoveryError(f"target items must lie in [0, {d})")
    if targets.size >= d:
        raise RecoveryError("target item set cannot cover the whole domain")
    gap = params.p - params.q
    non_target_sum = -params.q * d / gap  # Eq. 28
    target_sum = learned_malicious_sum(params) - non_target_sum  # Eq. 29
    estimate = np.full(d, non_target_sum / (d - targets.size), dtype=np.float64)
    estimate[targets] = target_sum / targets.size
    return estimate


@dataclass(frozen=True)
class MaliciousEstimate:
    """A malicious frequency estimate plus provenance, for reporting."""

    frequencies: np.ndarray
    scenario: str  # "non-knowledge" | "partial-knowledge" | "external"
    learned_sum: float

    @property
    def total(self) -> float:
        return float(np.asarray(self.frequencies).sum())


def build_malicious_estimate(
    poisoned_freq: np.ndarray,
    params: ProtocolParams,
    target_items: np.ndarray | None = None,
    external_estimate: np.ndarray | None = None,
) -> MaliciousEstimate:
    """Dispatch between the three sources of malicious-frequency knowledge.

    ``external_estimate`` implements the paper's "recovery paradigm": any
    attack detail expressible as an ``f_Y`` estimate (e.g. the k-means
    cluster statistics of Section VII-B) plugs in as a new constraint.
    """
    learned = learned_malicious_sum(params)
    if external_estimate is not None:
        freq = np.asarray(external_estimate, dtype=np.float64)
        if freq.shape != (params.domain_size,):
            raise RecoveryError(
                f"external estimate must have shape ({params.domain_size},), got {freq.shape}"
            )
        return MaliciousEstimate(frequencies=freq, scenario="external", learned_sum=learned)
    if target_items is not None:
        freq = partial_knowledge_malicious_estimate(params, target_items)
        return MaliciousEstimate(frequencies=freq, scenario="partial-knowledge", learned_sum=learned)
    freq = uniform_malicious_estimate(poisoned_freq, params)
    return MaliciousEstimate(frequencies=freq, scenario="non-knowledge", learned_sum=learned)
