"""LDPRecover core: the paper's primary contribution (Section V).

* :mod:`~repro.core.framework` — the analytical framework (Lemmas 1-2,
  Theorem 1).
* :mod:`~repro.core.estimator` — the genuine frequency estimator (Eq. 19,
  Theorems 2-3).
* :mod:`~repro.core.malicious` — malicious frequency learning (Eq. 20-30).
* :mod:`~repro.core.projection` — the KKT simplex projection (Eq. 32-35).
* :mod:`~repro.core.recover` — Algorithm 1: LDPRecover / LDPRecover*.
* :mod:`~repro.core.detection` — the Detection comparison baseline.
* :mod:`~repro.core.kmeans` — k-means defense and LDPRecover-KM (§VII-B).
* :mod:`~repro.core.errors` — Berry-Esseen bounds (Theorems 4-5).
"""

from repro.core.consistency import (
    CONSISTENCY_METHODS,
    base_cut,
    norm,
    norm_cut,
    norm_mul,
    norm_sub,
)
from repro.core.detection import DetectionResult, detect_and_aggregate
from repro.core.heavyhitters import (
    HeavyHitterReport,
    heavy_hitter_report,
    promoted_items,
    top_k_items,
    top_k_precision,
    top_k_recall,
)
from repro.core.errors import (
    berry_esseen_bound,
    genuine_cdf_error_bound,
    malicious_cdf_error_bound,
    per_report_moments,
)
from repro.core.estimator import (
    estimator_law,
    estimator_variance,
    genuine_frequency_estimate,
)
from repro.core.framework import (
    NormalLaw,
    genuine_frequency_law,
    malicious_frequency_law,
    mixture_frequency,
    poisoned_frequency_law,
)
from repro.core.kmeans import KMeansDefense, KMeansDefenseResult, kmeans, recover_with_kmeans
from repro.core.malicious import (
    MaliciousEstimate,
    build_malicious_estimate,
    learned_malicious_sum,
    partial_knowledge_malicious_estimate,
    split_domain,
    uniform_malicious_estimate,
)
from repro.core.projection import (
    is_probability_vector,
    project_onto_simplex_kkt,
    project_onto_simplex_sort,
)
from repro.core.recover import DEFAULT_ETA, LDPRecover, RecoveryResult, recover_frequencies

__all__ = [
    "NormalLaw",
    "mixture_frequency",
    "genuine_frequency_law",
    "malicious_frequency_law",
    "poisoned_frequency_law",
    "genuine_frequency_estimate",
    "estimator_variance",
    "estimator_law",
    "learned_malicious_sum",
    "split_domain",
    "uniform_malicious_estimate",
    "partial_knowledge_malicious_estimate",
    "build_malicious_estimate",
    "MaliciousEstimate",
    "project_onto_simplex_kkt",
    "project_onto_simplex_sort",
    "is_probability_vector",
    "recover_frequencies",
    "LDPRecover",
    "RecoveryResult",
    "DEFAULT_ETA",
    "detect_and_aggregate",
    "DetectionResult",
    "kmeans",
    "KMeansDefense",
    "KMeansDefenseResult",
    "recover_with_kmeans",
    "per_report_moments",
    "berry_esseen_bound",
    "malicious_cdf_error_bound",
    "genuine_cdf_error_bound",
    "norm",
    "norm_mul",
    "norm_cut",
    "norm_sub",
    "base_cut",
    "CONSISTENCY_METHODS",
    "top_k_items",
    "top_k_precision",
    "top_k_recall",
    "promoted_items",
    "heavy_hitter_report",
    "HeavyHitterReport",
]
