"""Consistency post-processing baselines (Wang et al., NDSS 2020).

LDPRecover's refinement step imports the non-negativity and sum-to-one
constraints from the *frequency estimation with consistency* line of work
(the paper's reference [21]).  This module implements the standard family
so LDPRecover can be compared and ablated against generic post-processing
that knows nothing about poisoning:

* :func:`norm`      — additive normalization: shift all estimates equally
  so they sum to one (can stay negative).
* :func:`norm_mul`  — zero the negatives, rescale the positives
  multiplicatively to sum one.
* :func:`norm_cut`  — zero the negatives; if the remaining total exceeds
  one, cut the smallest positives to zero until it does not (never
  rescales the surviving head).
* :func:`norm_sub`  — zero the negatives and subtract a constant from the
  positives (iterated): exactly the KKT simplex projection of
  Algorithm 1, re-exported for the comparison API.
* :func:`base_cut`  — zero every estimate below a significance threshold
  (``threshold_sigmas`` standard deviations of the protocol's noise).

All functions take a raw estimated frequency vector and return a new
vector; only ``norm``, ``norm_mul`` and ``norm_sub`` guarantee the result
sums to one.
"""

from __future__ import annotations

import numpy as np

from repro.core.projection import project_onto_simplex_kkt
from repro.exceptions import InvalidParameterError
from repro.protocols.base import ProtocolParams


def _validate(estimates: np.ndarray) -> np.ndarray:
    arr = np.asarray(estimates, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise InvalidParameterError(
            f"estimates must be a non-empty 1-D vector, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError("estimates contain non-finite values")
    return arr


def norm(estimates: np.ndarray) -> np.ndarray:
    """Additive normalization: ``f + (1 - sum f)/d`` (keeps negatives)."""
    arr = _validate(estimates)
    return arr + (1.0 - arr.sum()) / arr.size


def norm_mul(estimates: np.ndarray) -> np.ndarray:
    """Zero negatives, multiplicatively rescale positives to sum one."""
    arr = np.maximum(_validate(estimates), 0.0)
    total = arr.sum()
    if total <= 0.0:
        # Degenerate: no positive mass anywhere; fall back to uniform.
        return np.full(arr.size, 1.0 / arr.size)
    return arr / total


def norm_cut(estimates: np.ndarray) -> np.ndarray:
    """Zero negatives; cut the smallest positives while the total exceeds 1.

    The surviving estimates are never rescaled, so the output sums to at
    most one — the variant Wang et al. recommend for long-tail domains
    where rescaling amplifies noise on the head.
    """
    arr = np.maximum(_validate(estimates), 0.0)
    if arr.sum() <= 1.0:
        return arr
    order = np.argsort(arr)  # ascending: cut smallest first
    total = arr.sum()
    result = arr.copy()
    for idx in order:
        if total <= 1.0:
            break
        total -= result[idx]
        result[idx] = 0.0
    return result


def norm_sub(estimates: np.ndarray) -> np.ndarray:
    """Norm-Sub = the exact simplex projection (Algorithm 1's refinement)."""
    return project_onto_simplex_kkt(_validate(estimates))


def base_cut(
    estimates: np.ndarray,
    params: ProtocolParams,
    n: int,
    threshold_sigmas: float = 3.0,
) -> np.ndarray:
    """Zero estimates below a noise-significance threshold.

    The threshold is ``threshold_sigmas`` times the standard deviation of
    a zero-frequency item's estimate, ``sqrt(q(1-q)/(n (p-q)^2))`` — the
    'Base-Cut' rule for separating signal from pure noise.
    """
    arr = _validate(estimates)
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    if threshold_sigmas <= 0:
        raise InvalidParameterError(
            f"threshold_sigmas must be positive, got {threshold_sigmas}"
        )
    gap = params.p - params.q
    sigma = np.sqrt(params.q * (1.0 - params.q) / (n * gap**2))
    result = arr.copy()
    result[result < threshold_sigmas * sigma] = 0.0
    return result


#: Name -> function map for sweep/ablation harnesses (base_cut excluded:
#: it needs protocol context).
CONSISTENCY_METHODS = {
    "norm": norm,
    "norm-mul": norm_mul,
    "norm-cut": norm_cut,
    "norm-sub": norm_sub,
}
