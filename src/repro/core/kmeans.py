"""k-means subset defense and LDPRecover-KM (paper Section VII-B).

Against *input* poisoning attacks (IPA) the learned-sum trick of Eq. 21 is
unavailable — malicious data pass through the perturbation, so their
aggregated statistics match genuine data.  The k-means defense of Li et
al./Du et al., as summarized by the paper, samples multiple report subsets,
estimates a frequency vector per subset, clusters the vectors into two
groups, and treats the larger cluster as genuine:

* **plain k-means defense** — aggregate only the genuine-cluster reports;
* **LDPRecover-KM** — additionally learn malicious statistics from the
  *other* cluster (its mean frequency vector and relative size) and feed
  them into LDPRecover through the recovery-paradigm hook, recovering a
  full frequency vector instead of merely discarding reports.

The k-means itself is implemented here on numpy (k-means++ seeding, Lloyd
iterations) — no external ML dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro._rng import RngLike, as_generator
from repro.core.recover import DEFAULT_ETA, RecoveryResult, recover_frequencies
from repro.exceptions import InvalidParameterError, RecoveryError
from repro.protocols.base import FrequencyOracle


def kmeans(
    points: np.ndarray,
    k: int = 2,
    iterations: int = 50,
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++ seeding.

    Returns ``(labels, centroids)``.  Deterministic given ``rng``.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] < k:
        raise InvalidParameterError(
            f"need at least k={k} points in a 2-D array, got shape {pts.shape}"
        )
    gen = as_generator(rng)
    centroids = _kmeanspp_init(pts, k, gen)
    labels = np.zeros(pts.shape[0], dtype=np.int64)
    for _ in range(iterations):
        distances = ((pts[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = pts[labels == j]
            if members.shape[0]:
                centroids[j] = members.mean(axis=0)
    return labels, centroids


def _kmeanspp_init(pts: np.ndarray, k: int, gen: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = pts.shape[0]
    centroids = np.empty((k, pts.shape[1]), dtype=np.float64)
    centroids[0] = pts[gen.integers(0, n)]
    closest = ((pts - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest.sum()
        if total <= 0:
            centroids[j:] = pts[gen.integers(0, n, size=k - j)]
            break
        probs = closest / total
        centroids[j] = pts[gen.choice(n, p=probs)]
        closest = np.minimum(closest, ((pts - centroids[j]) ** 2).sum(axis=1))
    return centroids


@dataclass(frozen=True)
class KMeansDefenseResult:
    """Outcome of the subset-clustering defense."""

    #: Frequencies aggregated from the genuine cluster only (plain defense).
    frequencies: np.ndarray
    #: Mean frequency vector of the malicious cluster (None if one cluster
    #: is empty), normalized for use as an f_Y estimate.
    malicious_frequencies: np.ndarray | None
    #: Subset labels (0/1) and which label was called genuine.
    labels: np.ndarray
    genuine_cluster: int
    #: Estimated malicious/genuine user ratio from cluster sizes.
    eta_estimate: float


class KMeansDefense:
    """Subset sampling + 2-means clustering over subset frequency vectors.

    Parameters
    ----------
    sample_rate:
        xi in the paper's Figure 9: the fraction of reports drawn into
        each subset.
    num_subsets:
        How many subsets to draw (default 20).
    """

    def __init__(self, sample_rate: float = 0.1, num_subsets: int = 20) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise InvalidParameterError(f"sample_rate must be in (0, 1], got {sample_rate}")
        if num_subsets < 2:
            raise InvalidParameterError(f"num_subsets must be >= 2, got {num_subsets}")
        self.sample_rate = float(sample_rate)
        self.num_subsets = int(num_subsets)

    def run(
        self,
        protocol: FrequencyOracle,
        reports: Any,
        rng: RngLike = None,
    ) -> KMeansDefenseResult:
        """Cluster subset frequency vectors and split genuine/malicious."""
        gen = as_generator(rng)
        n = protocol.num_reports(reports)
        subset_size = max(1, int(round(self.sample_rate * n)))
        vectors = np.empty((self.num_subsets, protocol.domain_size), dtype=np.float64)
        subset_indices = []
        for s in range(self.num_subsets):
            idx = gen.choice(n, size=subset_size, replace=False)
            mask = np.zeros(n, dtype=bool)
            mask[idx] = True
            subset = protocol.select_reports(reports, mask)
            vectors[s] = protocol.aggregate(subset)
            subset_indices.append(idx)
        labels, _ = kmeans(vectors, k=2, rng=gen)
        counts = np.bincount(labels, minlength=2)
        genuine_cluster = int(counts.argmax())
        malicious_cluster = 1 - genuine_cluster
        genuine_mask = self._union_mask(
            [subset_indices[s] for s in np.flatnonzero(labels == genuine_cluster)], n
        )
        if not genuine_mask.any():
            raise RecoveryError("k-means defense produced an empty genuine cluster")
        genuine_reports = protocol.select_reports(reports, genuine_mask)
        frequencies = protocol.aggregate(genuine_reports)
        malicious_vectors = vectors[labels == malicious_cluster]
        if malicious_vectors.shape[0]:
            malicious_freq = malicious_vectors.mean(axis=0)
        else:
            malicious_freq = None
        eta_estimate = (
            counts[malicious_cluster] / counts[genuine_cluster]
            if counts[genuine_cluster]
            else 0.0
        )
        return KMeansDefenseResult(
            frequencies=frequencies,
            malicious_frequencies=malicious_freq,
            labels=labels,
            genuine_cluster=genuine_cluster,
            eta_estimate=float(eta_estimate),
        )

    @staticmethod
    def _union_mask(index_arrays: list[np.ndarray], n: int) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        for idx in index_arrays:
            mask[idx] = True
        return mask


def recover_with_kmeans(
    protocol: FrequencyOracle,
    reports: Any,
    defense: KMeansDefense | None = None,
    eta: float | None = None,
    rng: RngLike = None,
) -> tuple[RecoveryResult, KMeansDefenseResult]:
    """LDPRecover-KM: k-means statistics as LDPRecover constraints.

    Runs the subset defense, uses the malicious-cluster mean as the
    ``f_Y`` estimate and the cluster-size ratio as ``eta`` (unless
    overridden), and recovers from the *full* poisoned aggregate.
    """
    defense = defense or KMeansDefense()
    gen = as_generator(rng)
    result = defense.run(protocol, reports, gen)
    poisoned = protocol.aggregate(reports)
    if result.malicious_frequencies is None:
        # Clustering found no malicious cluster: fall back to plain
        # non-knowledge LDPRecover on the poisoned aggregate.
        recovery = recover_frequencies(poisoned, protocol, eta=eta if eta is not None else 0.0)
        return recovery, result
    if eta is None:
        # The cluster-size ratio is a noisy upper bound on the true m/n —
        # under random subsetting both clusters contain mostly genuine
        # users, so trusting it over-corrects.  Cap it at the paper's
        # safe default (Section VI-A4 shows over-estimates up to 0.2 are
        # harmless while 0.8 is not).
        effective_eta = min(result.eta_estimate, DEFAULT_ETA)
    else:
        effective_eta = eta
    recovery = recover_frequencies(
        poisoned,
        protocol,
        eta=effective_eta,
        malicious_estimate=result.malicious_frequencies,
    )
    return recovery, result
