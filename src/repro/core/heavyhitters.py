"""Heavy-hitter identification on top of (recovered) frequencies.

Frequency estimation is the building block for heavy-hitter queries (the
paper's Section II framing), and heavy hitters are what targeted
poisoning actually attacks: MGA's stated goal is to "promote [target
items] as popular items".  This module provides the top-k layer plus the
set metrics needed to quantify that promotion and its repair:

* :func:`top_k_items` — the estimated heavy hitters of a frequency vector;
* :func:`tail_items` — the least frequent items (deterministic attack
  targets for promotion scenarios);
* :func:`top_k_precision` / :func:`top_k_recall` — overlap with the true
  heavy-hitter set;
* :func:`promoted_items` — items an attack pushed *into* the top-k;
* :class:`HeavyHitterReport` — before/after comparison used by the
  benchmarks and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError


def top_k_items(frequencies: np.ndarray, k: int) -> np.ndarray:
    """The ``k`` items with the largest frequencies (sorted by item id).

    Ties break deterministically toward the smaller item id, so results
    are reproducible across runs and platforms.
    """
    freq = np.asarray(frequencies, dtype=np.float64)
    if freq.ndim != 1 or freq.size == 0:
        raise InvalidParameterError(
            f"frequencies must be a non-empty 1-D vector, got shape {freq.shape}"
        )
    if not 0 < k <= freq.size:
        raise InvalidParameterError(f"k must be in [1, {freq.size}], got {k}")
    # argsort on (-freq, id) via stable sort of negated values.
    order = np.argsort(-freq, kind="stable")
    return np.sort(order[:k].astype(np.int64))


def tail_items(frequencies: np.ndarray, r: int) -> np.ndarray:
    """The ``r`` items with the *smallest* frequencies (sorted by item id).

    Ties break toward the smaller item id — the same deterministic rule
    as :func:`top_k_items`, so on tie-heavy (near-flat) profiles the two
    selections can overlap rather than complement each other.  Used to
    pick attack targets whose promotion into the top-k is maximally
    visible on skewed workloads (and whose identity never depends on an
    RNG, so experiment cells cache stably).
    """
    freq = np.asarray(frequencies, dtype=np.float64)
    if freq.ndim != 1 or freq.size == 0:
        raise InvalidParameterError(
            f"frequencies must be a non-empty 1-D vector, got shape {freq.shape}"
        )
    if not 0 < r <= freq.size:
        raise InvalidParameterError(f"r must be in [1, {freq.size}], got {r}")
    order = np.argsort(freq, kind="stable")
    return np.sort(order[:r].astype(np.int64))


def top_k_precision(true_freq: np.ndarray, estimated_freq: np.ndarray, k: int) -> float:
    """``|estimated top-k ∩ true top-k| / k``."""
    true_set = set(top_k_items(true_freq, k).tolist())
    est_set = set(top_k_items(estimated_freq, k).tolist())
    return len(true_set & est_set) / k


def top_k_recall(true_freq: np.ndarray, estimated_freq: np.ndarray, k: int) -> float:
    """Identical to precision for equal-size sets; kept for API clarity."""
    return top_k_precision(true_freq, estimated_freq, k)


def promoted_items(
    true_freq: np.ndarray, estimated_freq: np.ndarray, k: int
) -> np.ndarray:
    """Items in the estimated top-k that are *not* true heavy hitters.

    Under a successful MGA these are exactly the attacker's planted
    items; after a good recovery this set should be (near) empty.
    """
    true_set = set(top_k_items(true_freq, k).tolist())
    est = top_k_items(estimated_freq, k)
    return np.array([v for v in est.tolist() if v not in true_set], dtype=np.int64)


@dataclass(frozen=True)
class HeavyHitterReport:
    """Top-k quality before and after recovery."""

    k: int
    precision_poisoned: float
    precision_recovered: float
    planted_poisoned: int
    planted_recovered: int

    @property
    def precision_gain(self) -> float:
        """Recovery's improvement in top-k precision."""
        return self.precision_recovered - self.precision_poisoned


def heavy_hitter_report(
    true_freq: np.ndarray,
    poisoned_freq: np.ndarray,
    recovered_freq: np.ndarray,
    k: int,
) -> HeavyHitterReport:
    """Compare the poisoned and recovered top-k against the truth."""
    return HeavyHitterReport(
        k=k,
        precision_poisoned=top_k_precision(true_freq, poisoned_freq, k),
        precision_recovered=top_k_precision(true_freq, recovered_freq, k),
        planted_poisoned=int(promoted_items(true_freq, poisoned_freq, k).size),
        planted_recovered=int(promoted_items(true_freq, recovered_freq, k).size),
    )
