"""Refining recovered frequencies: the KKT projection (paper Eq. 32-35).

The constraint-inference problem minimizes ``||f' - f_est||_2`` subject to
``f' >= 0`` and ``sum f' = 1``.  Algorithm 1 (lines 5-11) solves it with
KKT conditions: keep an active set ``D_star`` of positive coordinates,
subtract the common multiplier ``(sum_{D_star} f_est - 1)/|D_star|``
(Eq. 35), and move coordinates that go negative out of the active set until
none do.  This iterative scheme (Michelot 1986) converges to the exact
Euclidean projection onto the probability simplex; a sort-based reference
implementation is provided for cross-validation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import RecoveryError


def project_onto_simplex_kkt(estimates: np.ndarray, max_iterations: int | None = None) -> np.ndarray:
    """Algorithm 1 refinement: exact simplex projection by active sets.

    Parameters
    ----------
    estimates:
        The estimated genuine frequencies ``f_X_tilde`` (any real vector).
    max_iterations:
        Safety cap on active-set iterations (default: the vector length,
        which the algorithm can never exceed since each iteration removes
        at least one coordinate).

    Returns
    -------
    numpy.ndarray
        The recovered frequency vector: non-negative, summing to one,
        closest to ``estimates`` in L2.
    """
    est = np.asarray(estimates, dtype=np.float64)
    if est.ndim != 1 or est.size == 0:
        raise RecoveryError(f"estimates must be a non-empty 1-D vector, got shape {est.shape}")
    if not np.all(np.isfinite(est)):
        raise RecoveryError("estimates contain non-finite values")
    limit = est.size if max_iterations is None else int(max_iterations)
    active = np.ones(est.size, dtype=bool)
    result = np.zeros_like(est)
    for _ in range(limit):
        # The active set never empties: the candidates sum to exactly 1,
        # so at least one stays positive each iteration.
        k = int(active.sum())
        mu = (est[active].sum() - 1.0) / k  # Eq. 34 (mu/2 in paper's notation)
        candidate = est[active] - mu  # Eq. 35
        negative = candidate < 0.0
        if not negative.any():
            result[:] = 0.0
            result[active] = candidate
            return result
        active_idx = np.flatnonzero(active)
        active[active_idx[negative]] = False
    raise RecoveryError(
        "simplex projection exceeded max_iterations; the default cap (the "
        "vector length) always suffices"
    )


def project_onto_simplex_sort(estimates: np.ndarray) -> np.ndarray:
    """Reference simplex projection via sorting (Duchi et al. 2008).

    Mathematically identical to :func:`project_onto_simplex_kkt`; kept for
    property tests and as an O(d log d) one-shot alternative.
    """
    est = np.asarray(estimates, dtype=np.float64)
    if est.ndim != 1 or est.size == 0:
        raise RecoveryError(f"estimates must be a non-empty 1-D vector, got shape {est.shape}")
    ordered = np.sort(est)[::-1]
    cumulative = np.cumsum(ordered) - 1.0
    ranks = np.arange(1, est.size + 1)
    valid = ordered - cumulative / ranks > 0
    rho = int(np.max(np.flatnonzero(valid))) + 1
    theta = cumulative[rho - 1] / rho
    return np.maximum(est - theta, 0.0)


def is_probability_vector(freq: np.ndarray, atol: float = 1e-9) -> bool:
    """True when ``freq`` is non-negative and sums to one within ``atol``."""
    arr = np.asarray(freq, dtype=np.float64)
    return bool(np.all(arr >= -atol) and abs(arr.sum() - 1.0) <= atol)
