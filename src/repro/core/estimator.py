"""The genuine frequency estimator (paper Section V-B2).

    ``f_X_tilde(v) = (1 + eta) * f_Z(v) - eta * f_Y(v)``          (Eq. 19)

where ``eta = m/n`` is the malicious-to-genuine user ratio.  The estimator
is approximately unbiased (Theorem 2) with approximate variance equal to
the genuine frequency's own variance (Theorem 3) — poisoning removal does
not inflate the noise floor asymptotically.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import NormalLaw, genuine_frequency_law
from repro.exceptions import InvalidParameterError, RecoveryError
from repro.protocols.base import ProtocolParams


def validate_eta(eta: float) -> float:
    """Check the server-side ratio knob; must be non-negative and finite."""
    value = float(eta)
    if not np.isfinite(value) or value < 0:
        raise InvalidParameterError(f"eta must be finite and >= 0, got {eta!r}")
    return value


def genuine_frequency_estimate(
    poisoned_freq: np.ndarray, malicious_freq: np.ndarray, eta: float
) -> np.ndarray:
    """Apply the Eq. 19 estimator elementwise.

    Parameters
    ----------
    poisoned_freq:
        Frequencies the server aggregated from all (genuine + malicious)
        reports.
    malicious_freq:
        The (estimated or known) malicious frequency vector ``f_Y``.
    eta:
        Server-chosen ratio ``m/n``; the paper sets 0.2 by default and
        shows over-estimating the true ratio is safe.
    """
    eta = validate_eta(eta)
    poisoned = np.asarray(poisoned_freq, dtype=np.float64)
    malicious = np.asarray(malicious_freq, dtype=np.float64)
    if poisoned.shape != malicious.shape:
        raise RecoveryError(
            f"poisoned and malicious frequency vectors must match: "
            f"{poisoned.shape} vs {malicious.shape}"
        )
    return (1.0 + eta) * poisoned - eta * malicious


def estimator_expectation(true_frequency: float) -> float:
    """Theorem 2: the estimator is approximately unbiased.

    Returned as a function for symmetry with :func:`estimator_variance`;
    asymptotically ``E[f_X_tilde(v)] = f_X(v)``.
    """
    return float(true_frequency)


def estimator_variance(true_frequency: float, params: ProtocolParams, n: int) -> float:
    """Theorem 3: approximate variance of the estimator.

    Equals the variance of the genuine aggregated frequency itself
    (Lemma 2); deducting the malicious component does not add variance in
    the asymptotic regime.
    """
    return genuine_frequency_law(true_frequency, params, n).variance


def estimator_law(true_frequency: float, params: ProtocolParams, n: int) -> NormalLaw:
    """Asymptotic law of the recovered genuine frequency (Thms 2-3)."""
    return NormalLaw(
        mean=estimator_expectation(true_frequency),
        variance=estimator_variance(true_frequency, params, n),
    )
