"""repro — a reproduction of *LDPRecover: Recovering Frequencies from
Poisoning Attacks against Local Differential Privacy* (ICDE 2024).

The package provides:

* LDP frequency-estimation protocols (:mod:`repro.protocols`): GRR, OUE,
  OLH, plus binary randomized response and Harmony mean estimation;
* poisoning attacks (:mod:`repro.attacks`): Manip, MGA, the paper's
  adaptive attack, input poisoning, multi-attacker composition;
* the LDPRecover recovery method (:mod:`repro.core`): genuine frequency
  estimator, malicious frequency learning, KKT simplex projection,
  Detection and k-means baselines, Berry-Esseen error bounds;
* simulation & evaluation (:mod:`repro.sim`): the poisoning pipeline,
  metrics (MSE/FG), outlier-based target inference, experiment harness;
* datasets (:mod:`repro.datasets`): deterministic surrogates of the
  paper's IPUMS and Fire workloads plus generic generators.

Quickstart::

    import repro

    data = repro.ipums_like(num_users=50_000)
    protocol = repro.GRR(epsilon=0.5, domain_size=data.domain_size)
    attack = repro.MGAAttack(domain_size=data.domain_size, r=10, rng=1)
    trial = repro.run_trial(data, protocol, attack, beta=0.05, rng=2)
    result = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
    print(repro.mse(trial.true_frequencies, result.frequencies))
"""

from repro.attacks import (
    AdaptiveAttack,
    InputPoisoningAttack,
    ManipAttack,
    MGAAttack,
    MultiAttacker,
    PoisoningAttack,
)
from repro.core import (
    DEFAULT_ETA,
    KMeansDefense,
    LDPRecover,
    RecoveryResult,
    detect_and_aggregate,
    genuine_frequency_estimate,
    learned_malicious_sum,
    project_onto_simplex_kkt,
    recover_frequencies,
    recover_with_kmeans,
)
from repro.datasets import Dataset, fire_like, ipums_like, uniform_dataset, zipf_dataset
from repro.protocols import (
    GRR,
    OLH,
    OUE,
    BinaryRandomizedResponse,
    FrequencyOracle,
    Harmony,
    ProtocolParams,
    make_protocol,
)
from repro.sim import (
    RecoveryEvaluation,
    TrialResult,
    evaluate_recovery,
    frequency_gain,
    mse,
    run_trial,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # protocols
    "FrequencyOracle",
    "ProtocolParams",
    "GRR",
    "OUE",
    "OLH",
    "BinaryRandomizedResponse",
    "Harmony",
    "make_protocol",
    # attacks
    "PoisoningAttack",
    "ManipAttack",
    "MGAAttack",
    "AdaptiveAttack",
    "InputPoisoningAttack",
    "MultiAttacker",
    # core
    "LDPRecover",
    "RecoveryResult",
    "recover_frequencies",
    "genuine_frequency_estimate",
    "learned_malicious_sum",
    "project_onto_simplex_kkt",
    "detect_and_aggregate",
    "KMeansDefense",
    "recover_with_kmeans",
    "DEFAULT_ETA",
    # datasets
    "Dataset",
    "ipums_like",
    "fire_like",
    "zipf_dataset",
    "uniform_dataset",
    # sim
    "run_trial",
    "TrialResult",
    "evaluate_recovery",
    "RecoveryEvaluation",
    "mse",
    "frequency_gain",
]
