"""Symmetric Unary Encoding (SUE), i.e. basic RAPPOR.

The unary-encoding protocol with symmetric perturbation probabilities
``p = e^{eps/2}/(e^{eps/2}+1)`` and ``q = 1 - p`` (each bit flips with the
same probability).  OUE is its optimized sibling; SUE is included because
it is the classic deployed baseline (Google's RAPPOR) and a useful
comparison point for the variance analysis — the attack and recovery
machinery work on it unchanged through the pure-protocol contract.
"""

from __future__ import annotations

import math

from repro.exceptions import ProtocolError
from repro.protocols.oue import OUE


class SUE(OUE):
    """Symmetric Unary Encoding (basic RAPPOR) frequency oracle.

    Shares OUE's report representation (boolean (n, d) matrices) and all
    report-level machinery; only the bit-flip probabilities differ.
    """

    name = "sue"

    def __init__(self, epsilon: float, domain_size: int) -> None:
        super().__init__(epsilon, domain_size)
        half = math.exp(self.epsilon / 2.0)
        self.p = half / (half + 1.0)
        self.q = 1.0 / (half + 1.0)

    def theoretical_variance(self, n: int, frequency: float = 0.0) -> float:
        """Low-frequency variance ``n q(1-q)/(p-q)^2`` (Wang et al. 2017)."""
        if n <= 0:
            raise ProtocolError(f"n must be positive, got {n}")
        gap = self.p - self.q
        return n * self.q * (1.0 - self.q) / gap**2
