"""Name-based protocol construction for the CLI, benches and sweeps."""

from __future__ import annotations

from typing import Callable, Dict

from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle
from repro.protocols.blh import BLH
from repro.protocols.grr import GRR
from repro.protocols.olh import OLH
from repro.protocols.oue import OUE
from repro.protocols.sue import SUE

_FACTORIES: Dict[str, Callable[..., FrequencyOracle]] = {
    "grr": GRR,
    "oue": OUE,
    "olh": OLH,
    "sue": SUE,
    "blh": BLH,
}

#: The three protocols evaluated in the paper, in its presentation order.
PROTOCOL_NAMES = ("grr", "oue", "olh")


def make_protocol(name: str, epsilon: float, domain_size: int, **kwargs) -> FrequencyOracle:
    """Instantiate a frequency oracle by name (case-insensitive).

    ``kwargs`` are forwarded to the constructor (e.g. ``g`` for OLH).
    """
    key = name.strip().lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        raise InvalidParameterError(
            f"unknown protocol {name!r}; available: {sorted(_FACTORIES)}"
        )
    return factory(epsilon=epsilon, domain_size=domain_size, **kwargs)


def register_protocol(name: str, factory: Callable[..., FrequencyOracle]) -> None:
    """Register a custom protocol factory under ``name``.

    Allows downstream users to plug their own pure protocol into the
    pipeline, experiments and CLI without touching library code.
    """
    key = name.strip().lower()
    if key in _FACTORIES:
        raise InvalidParameterError(f"protocol {name!r} is already registered")
    _FACTORIES[key] = factory


def available_protocols() -> tuple[str, ...]:
    """Names accepted by :func:`make_protocol`."""
    return tuple(sorted(_FACTORIES))
