"""Optimized Unary Encoding (OUE), paper Section III-B.

Each user one-hot encodes her item into a ``d``-bit vector and perturbs the
bits independently: the true bit survives with probability ``p = 1/2``, every
other bit turns on with probability ``q = 1/(e^eps + 1)``.  A report is the
full perturbed bit vector; its support set is the set of on-bits.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.exceptions import ProtocolError
from repro.protocols.base import FrequencyOracle


class OUE(FrequencyOracle):
    """Optimized Unary Encoding frequency oracle.

    Reports are represented as a 2-D boolean matrix of shape ``(n, d)``.
    """

    name = "oue"

    def __init__(self, epsilon: float, domain_size: int) -> None:
        super().__init__(epsilon, domain_size)
        self.p = 0.5
        self.q = 1.0 / (math.exp(self.epsilon) + 1.0)

    # ------------------------------------------------------------------
    # Report-level path
    # ------------------------------------------------------------------
    def perturb(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        items = self._validate_items(items)
        gen = as_generator(rng)
        n = items.size
        bits = gen.random((n, self.domain_size)) < self.q
        if n:
            bits[np.arange(n), items] = gen.random(n) < self.p
        return bits

    def _validate_reports(self, reports: np.ndarray) -> np.ndarray:
        arr = np.asarray(reports, dtype=bool)
        if arr.ndim != 2 or arr.shape[1] != self.domain_size:
            raise ProtocolError(
                f"OUE reports must have shape (n, {self.domain_size}), got {arr.shape}"
            )
        return arr

    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        return self._validate_reports(reports).sum(axis=0).astype(np.int64)

    def craft_supporting(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Craft a report per item: the item's bit on, other bits at rate q.

        A bare one-hot vector would have ~1 on-bit against the ~``q*d`` of
        a genuine report, which (a) is trivially detectable and (b) acts
        as a *negative* bias on every other item.  Crafted reports instead
        mimic the genuine marginal rates on non-chosen bits — exactly the
        blending MGA uses for OUE and what OLH's hash collisions produce
        naturally (collision rate ``1/g = q``).
        """
        items = self._validate_items(items)
        gen = as_generator(rng)
        bits = gen.random((items.size, self.domain_size)) < self.q
        if items.size:
            bits[np.arange(items.size), items] = True
        return bits

    def craft_one_hot(self, items: np.ndarray) -> np.ndarray:
        """Bare one-hot crafted reports (support exactly ``{v}``).

        Exposed for analyses of the naive crafting strategy; note it
        biases all other items downward (see :meth:`craft_supporting`).
        """
        items = self._validate_items(items)
        bits = np.zeros((items.size, self.domain_size), dtype=bool)
        if items.size:
            bits[np.arange(items.size), items] = True
        return bits

    def craft_bit_vectors(self, bit_sets: Sequence[Sequence[int]]) -> np.ndarray:
        """Craft arbitrary bit-vector reports (used by MGA's padding)."""
        bits = np.zeros((len(bit_sets), self.domain_size), dtype=bool)
        for row, on_bits in enumerate(bit_sets):
            bits[row, np.asarray(list(on_bits), dtype=np.int64)] = True
        return bits

    def concat_reports(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        return np.concatenate(
            [self._validate_reports(first), self._validate_reports(second)], axis=0
        )

    def num_reports(self, reports: np.ndarray) -> int:
        return int(self._validate_reports(reports).shape[0])

    def reports_supporting_any(self, reports: np.ndarray, items: Sequence[int]) -> np.ndarray:
        arr = self._validate_reports(reports)
        idx = np.asarray(list(items), dtype=np.int64)
        if idx.size == 0:
            return np.zeros(arr.shape[0], dtype=bool)
        return arr[:, idx].any(axis=1)

    def target_support_counts(self, reports: np.ndarray, items: Sequence[int]) -> np.ndarray:
        arr = self._validate_reports(reports)
        idx = np.asarray(list(items), dtype=np.int64)
        if idx.size == 0:
            return np.zeros(arr.shape[0], dtype=np.int64)
        return arr[:, idx].sum(axis=1).astype(np.int64)

    def select_reports(self, reports: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return self._validate_reports(reports)[np.asarray(mask, dtype=bool)]

    def slice_reports(self, reports: np.ndarray, start: int, stop: int) -> np.ndarray:
        """O(stop-start) contiguous sub-batch (direct row slice)."""
        return self._validate_reports(reports)[start:stop]

    # ------------------------------------------------------------------
    # Distributional path
    # ------------------------------------------------------------------
    def sample_genuine_counts(self, true_counts: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Exact aggregated counts: bits are independent across users/items,
        so ``C(v) = Binom(n_v, p) + Binom(n - n_v, q)`` exactly."""
        counts = self._validate_true_counts(true_counts)
        gen = as_generator(rng)
        n = int(counts.sum())
        own = gen.binomial(counts, self.p)
        others = gen.binomial(n - counts, self.q)
        return (own + others).astype(np.int64)

    def theoretical_variance(self, n: int, frequency: float = 0.0) -> float:
        """Paper Eq. (7) (frequency-independent)."""
        if n <= 0:
            raise ProtocolError(f"n must be positive, got {n}")
        e_eps = math.exp(self.epsilon)
        return n * 4.0 * e_eps / (e_eps - 1.0) ** 2
