"""Optimized Local Hashing (OLH), paper Section III-B.

Each user draws a hash function ``H`` from a keyed family, hashes her item
into ``{0, .., g-1}`` with ``g = ceil(e^eps + 1)`` (the paper's default) and
perturbs the hash with GRR over the hashed domain.  The report is the pair
``(H, y)``; its support set is ``{v : H(v) = y}``.

Aggregation probabilities: ``p* = e^eps / (e^eps + g - 1)`` (the GRR keep
probability on the hashed domain) and ``q* = 1/g`` (a fixed *other* item
hashes to the reported value uniformly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.exceptions import InvalidParameterError, ProtocolError
from repro.protocols import hashing
from repro.protocols.base import FrequencyOracle


@dataclass
class OLHReports:
    """A batch of OLH reports: per-user hash keys and reported hash values."""

    seeds: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.seeds = np.asarray(self.seeds, dtype=np.uint64)
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.seeds.shape != self.values.shape or self.seeds.ndim != 1:
            raise ProtocolError(
                f"OLH seeds/values must be equal-length 1-D arrays, got "
                f"{self.seeds.shape} and {self.values.shape}"
            )

    def __len__(self) -> int:
        return int(self.seeds.size)


class OLH(FrequencyOracle):
    """Optimized Local Hashing frequency oracle."""

    name = "olh"

    #: Users per chunk when scanning the (user x domain) hash grid.
    _CHUNK_CELLS = 4_000_000

    def __init__(self, epsilon: float, domain_size: int, g: int | None = None) -> None:
        super().__init__(epsilon, domain_size)
        e_eps = math.exp(self.epsilon)
        self.g = int(g) if g is not None else math.ceil(e_eps + 1.0)
        if self.g < 2:
            raise InvalidParameterError(f"hash range g must be >= 2, got {self.g}")
        # Perturbation probabilities of GRR over the hashed domain.
        self._p_perturb = e_eps / (e_eps + self.g - 1.0)
        # Aggregation probabilities (support-based).
        self.p = self._p_perturb
        self.q = 1.0 / self.g

    # ------------------------------------------------------------------
    # Report-level path
    # ------------------------------------------------------------------
    def perturb(self, items: np.ndarray, rng: RngLike = None) -> OLHReports:
        items = self._validate_items(items)
        gen = as_generator(rng)
        n = items.size
        seeds = hashing.draw_seeds(n, gen)
        hashed = hashing.hash_items(seeds, items.astype(np.uint64), self.g).astype(np.int64)
        keep = gen.random(n) < self._p_perturb
        other = gen.integers(0, self.g - 1, size=n, dtype=np.int64)
        other += (other >= hashed).astype(np.int64)
        return OLHReports(seeds=seeds, values=np.where(keep, hashed, other))

    def _validate_olh(self, reports: OLHReports) -> OLHReports:
        if not isinstance(reports, OLHReports):
            raise ProtocolError(f"expected OLHReports, got {type(reports)!r}")
        return reports

    def support_counts(self, reports: OLHReports) -> np.ndarray:
        """``C(v) = #{j : H_j(v) = y_j}``, chunked over users for memory."""
        reports = self._validate_olh(reports)
        d = self.domain_size
        counts = np.zeros(d, dtype=np.int64)
        n = len(reports)
        if n == 0:
            return counts
        chunk = max(1, self._CHUNK_CELLS // d)
        domain = np.arange(d, dtype=np.uint64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            grid = hashing.hash_items(
                reports.seeds[start:stop, None], domain[None, :], self.g
            )
            matches = grid == reports.values[start:stop, None].astype(np.uint64)
            counts += matches.sum(axis=0)
        return counts

    def craft_supporting(self, items: np.ndarray, rng: RngLike = None) -> OLHReports:
        """Craft reports whose support contains each requested item.

        The attacker picks a fresh hash key and reports the item's own hash
        value, so the report deterministically supports the item (plus the
        ~``d/g`` other items colliding with it, which is unavoidable in
        OLH's encoding).
        """
        items = self._validate_items(items)
        gen = as_generator(rng)
        seeds = hashing.draw_seeds(items.size, gen)
        values = hashing.hash_items(seeds, items.astype(np.uint64), self.g).astype(np.int64)
        return OLHReports(seeds=seeds, values=values)

    def concat_reports(self, first: OLHReports, second: OLHReports) -> OLHReports:
        first = self._validate_olh(first)
        second = self._validate_olh(second)
        return OLHReports(
            seeds=np.concatenate([first.seeds, second.seeds]),
            values=np.concatenate([first.values, second.values]),
        )

    def num_reports(self, reports: OLHReports) -> int:
        return len(self._validate_olh(reports))

    def reports_supporting_any(self, reports: OLHReports, items: Sequence[int]) -> np.ndarray:
        reports = self._validate_olh(reports)
        idx = np.asarray(list(items), dtype=np.uint64)
        if idx.size == 0 or len(reports) == 0:
            return np.zeros(len(reports), dtype=bool)
        grid = hashing.hash_items(reports.seeds[:, None], idx[None, :], self.g)
        return (grid == reports.values[:, None].astype(np.uint64)).any(axis=1)

    def target_support_counts(self, reports: OLHReports, items: Sequence[int]) -> np.ndarray:
        reports = self._validate_olh(reports)
        idx = np.asarray(list(items), dtype=np.uint64)
        if idx.size == 0 or len(reports) == 0:
            return np.zeros(len(reports), dtype=np.int64)
        grid = hashing.hash_items(reports.seeds[:, None], idx[None, :], self.g)
        return (grid == reports.values[:, None].astype(np.uint64)).sum(axis=1).astype(np.int64)

    def select_reports(self, reports: OLHReports, mask: np.ndarray) -> OLHReports:
        reports = self._validate_olh(reports)
        mask = np.asarray(mask, dtype=bool)
        return OLHReports(seeds=reports.seeds[mask], values=reports.values[mask])

    def slice_reports(self, reports: OLHReports, start: int, stop: int) -> OLHReports:
        """O(stop-start) contiguous sub-batch (direct array slices)."""
        reports = self._validate_olh(reports)
        return OLHReports(
            seeds=reports.seeds[start:stop], values=reports.values[start:stop]
        )

    # ------------------------------------------------------------------
    # Distributional path
    # ------------------------------------------------------------------
    def sample_genuine_counts(self, true_counts: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Marginally exact aggregated counts.

        For a genuine user with item ``x``: ``Pr[x in S] = p*`` and
        ``Pr[v in S] = 1/g`` for ``v != x`` (hash uniformity), so marginally
        ``C(v) = Binom(n_v, p*) + Binom(n - n_v, 1/g)``.  Cross-item
        correlations induced by shared hash keys are ignored; they do not
        affect per-item estimates or their variances.
        """
        counts = self._validate_true_counts(true_counts)
        gen = as_generator(rng)
        n = int(counts.sum())
        own = gen.binomial(counts, self.p)
        others = gen.binomial(n - counts, self.q)
        return (own + others).astype(np.int64)

    def theoretical_variance(self, n: int, frequency: float = 0.0) -> float:
        """Paper Eq. (10) (approximation, frequency-independent)."""
        if n <= 0:
            raise ProtocolError(f"n must be positive, got {n}")
        e_eps = math.exp(self.epsilon)
        return n * 4.0 * e_eps / (e_eps - 1.0) ** 2
