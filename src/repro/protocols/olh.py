"""Optimized Local Hashing (OLH), paper Section III-B.

Each user draws a hash function ``H`` from a keyed family, hashes her item
into ``{0, .., g-1}`` with ``g = ceil(e^eps + 1)`` (the paper's default) and
perturbs the hash with GRR over the hashed domain.  The report is the pair
``(H, y)``; its support set is ``{v : H(v) = y}``.

Aggregation probabilities: ``p* = e^eps / (e^eps + g - 1)`` (the GRR keep
probability on the hashed domain) and ``q* = 1/g`` (a fixed *other* item
hashes to the reported value uniformly).

Two seed-drawing policies are supported:

* **Per-user seeds** (default, the paper's protocol): every user draws a
  fresh hash key, so aggregation must hash the full (users x domain) grid
  — O(n*d) splitmix64 evaluations, walked in bounded slices of at most
  ``chunk_cells`` grid cells.
* **Seed cohorts** (``cohort=K``): each ``perturb`` batch draws ``K``
  fresh shared seeds and every user picks one uniformly.  A uniformly
  chosen random seed is still a uniformly random family member, so
  per-user report marginals (and hence estimates and their expectations)
  are unchanged, but aggregation collapses to one domain hash per cohort
  seed plus per-seed histograms of the reported values — O(K*d + n)
  instead of O(n*d).  The trade-off: users sharing a seed (and item) have
  correlated support sets, which mildly inflates estimate variance for
  small ``K``; cohort mode therefore changes the report distribution and
  is part of the protocol's cache fingerprint, unlike ``chunk_cells``.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import ClassVar, Optional, Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.exceptions import InvalidParameterError, ProtocolError
from repro.protocols import hashing
from repro.protocols.base import FrequencyOracle, decode_array, encode_array


@dataclass
class OLHReports:
    """A batch of OLH reports: per-user hash keys and reported hash values."""

    seeds: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.seeds = np.asarray(self.seeds, dtype=np.uint64)
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.seeds.shape != self.values.shape or self.seeds.ndim != 1:
            raise ProtocolError(
                f"OLH seeds/values must be equal-length 1-D arrays, got "
                f"{self.seeds.shape} and {self.values.shape}"
            )

    def __len__(self) -> int:
        return int(self.seeds.size)


class OLH(FrequencyOracle):
    """Optimized Local Hashing frequency oracle.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    domain_size:
        Size of the item domain ``d``.
    g:
        Hash-range override (default ``ceil(e^eps + 1)``).
    cohort:
        Seed-cohort size ``K``: every ``perturb`` batch draws ``K`` fresh
        shared hash seeds and each user picks one uniformly, enabling the
        O(K*d + n) grouped aggregation path.  ``None`` (default) keeps the
        paper's one-fresh-seed-per-user policy.  Changes the report
        distribution (shared seeds correlate users' support sets), so it
        is part of the protocol's cache fingerprint.
    chunk_cells:
        Grid-cell budget per support-scan slice (default
        :data:`_CHUNK_CELLS`).  Execution-only: it bounds transient memory
        but cannot change any aggregation result, so it is excluded from
        the cache fingerprint like the engine's ``workers``/``chunk_users``.
    """

    name = "olh"

    #: Grid-cell budget per support-scan slice: the transient boolean/hash
    #: grids materialized by the aggregation paths never exceed this many
    #: (report, item) cells.  NOT a user count — the number of users per
    #: slice is ``chunk_cells // domain_size`` (or ``chunk_cells //
    #: len(targets)`` in the target-scan paths).
    _CHUNK_CELLS = 4_000_000

    #: Execution-only attributes excluded from cache fingerprints: they
    #: bound transient memory but cannot change aggregation results, like
    #: the engine's ``workers`` / ``chunk_users`` knobs.
    FINGERPRINT_EXCLUDE: ClassVar[frozenset[str]] = frozenset({"chunk_cells"})

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        g: int | None = None,
        cohort: int | None = None,
        chunk_cells: int | None = None,
    ) -> None:
        super().__init__(epsilon, domain_size)
        e_eps = math.exp(self.epsilon)
        self.g = int(g) if g is not None else math.ceil(e_eps + 1.0)
        if self.g < 2:
            raise InvalidParameterError(f"hash range g must be >= 2, got {self.g}")
        self.cohort = self._validate_cohort(cohort)
        self.chunk_cells = self._validate_chunk_cells(
            self._CHUNK_CELLS if chunk_cells is None else chunk_cells
        )
        # Perturbation probabilities of GRR over the hashed domain.
        self._p_perturb = e_eps / (e_eps + self.g - 1.0)
        # Aggregation probabilities (support-based).
        self.p = self._p_perturb
        self.q = 1.0 / self.g

    @staticmethod
    def _validate_cohort(cohort: Optional[int]) -> Optional[int]:
        if cohort is None:
            return None
        k = int(cohort)
        if k < 1:
            raise InvalidParameterError(f"cohort size must be >= 1, got {cohort}")
        return k

    @staticmethod
    def _validate_chunk_cells(chunk_cells: int) -> int:
        cells = int(chunk_cells)
        if cells < 1:
            raise InvalidParameterError(f"chunk_cells must be >= 1, got {chunk_cells}")
        return cells

    def with_cohort(self, cohort: Optional[int]) -> "OLH":
        """A copy of this oracle in seed-cohort mode (``None`` = per-user).

        Everything else (``epsilon``, ``domain_size``, ``g``,
        ``chunk_cells``) is preserved — including the concrete subclass,
        so :class:`~repro.protocols.blh.BLH` stays BLH.  ``cohort`` alters
        the report distribution, hence the copy fingerprints (and caches)
        differently from its parent.
        """
        clone = copy.copy(self)
        clone.cohort = self._validate_cohort(cohort)
        return clone

    def with_chunk_cells(self, chunk_cells: int) -> "OLH":
        """A copy with a different support-scan grid budget.

        ``chunk_cells`` is execution-only (excluded from the cache
        fingerprint), so the copy produces bit-identical results to its
        parent with a different transient-memory bound — this is the hook
        the engine uses to cap the scan at its own per-chunk cell budget.
        """
        clone = copy.copy(self)
        clone.chunk_cells = self._validate_chunk_cells(chunk_cells)
        return clone

    def scan_bounded(self, chunk_users: int) -> "OLH":
        """Cap :attr:`chunk_cells` at a ``chunk_users``-report slice's grid.

        The streaming fold (and the engine's chunked paths) hand this
        oracle slices of at most ``chunk_users`` reports; capping the scan
        budget at ``chunk_users * d`` cells keeps the internal hash grid
        within the memory the caller already budgets per slice.  Execution-
        only, like :meth:`with_chunk_cells`.
        """
        budget = min(self.chunk_cells, int(chunk_users) * self.domain_size)
        if budget >= self.chunk_cells:
            return self
        return self.with_chunk_cells(budget)

    # ------------------------------------------------------------------
    # Report-level path
    # ------------------------------------------------------------------
    def perturb(self, items: np.ndarray, rng: RngLike = None) -> OLHReports:
        """Perturb one item per user into an OLH ``(seed, value)`` report.

        Per-user-seed mode draws one fresh hash key per user; cohort mode
        draws ``self.cohort`` fresh shared keys for the whole batch and
        assigns each user one uniformly (marginally identical — a
        uniformly chosen random seed is a uniformly random family member).
        """
        items = self._validate_items(items)
        gen = as_generator(rng)
        n = items.size
        if self.cohort is None:
            seeds = hashing.draw_seeds(n, gen)
        else:
            pool = hashing.draw_seeds(self.cohort, gen)
            seeds = pool[gen.integers(0, self.cohort, size=n)]
        hashed = hashing.hash_items(seeds, items.astype(np.uint64), self.g).astype(np.int64)
        keep = gen.random(n) < self._p_perturb
        other = gen.integers(0, self.g - 1, size=n, dtype=np.int64)
        other += (other >= hashed).astype(np.int64)
        return OLHReports(seeds=seeds, values=np.where(keep, hashed, other))

    def _validate_olh(self, reports: OLHReports) -> OLHReports:
        if not isinstance(reports, OLHReports):
            raise ProtocolError(f"expected OLHReports, got {type(reports)!r}")
        return reports

    def _grouped_seeds(
        self, reports: OLHReports
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """``(unique_seeds, inverse)`` when the cohort fast path applies.

        The grouped aggregation is only attempted in cohort mode (per-user
        batches would pay an O(n log n) sort for nothing), only pays off
        when seeds actually repeat (a crafted/malicious batch aggregated
        through a cohort-mode oracle still has one seed per report), and
        requires in-range reported values (the histograms index by value).
        Returns ``None`` whenever the per-user grid scan should run; both
        paths count exactly, so the choice never changes results.
        """
        if self.cohort is None:
            return None
        values = reports.values
        if values.size and (values.min() < 0 or values.max() >= self.g):
            return None
        unique_seeds, inverse = np.unique(reports.seeds, return_inverse=True)
        if 2 * unique_seeds.size > len(reports):
            return None
        return unique_seeds, inverse

    def support_counts(self, reports: OLHReports) -> np.ndarray:
        """``C(v) = #{j : H_j(v) = y_j}``, scanned in bounded memory.

        Per-user-seed batches walk the (users x domain) hash grid in
        slices of at most ``chunk_cells`` cells.  Cohort batches instead
        hash the domain once per distinct seed and fold per-seed
        histograms of the reported values — O(K*d + n) rather than
        O(n*d) — with bit-identical counts.
        """
        reports = self._validate_olh(reports)
        d = self.domain_size
        counts = np.zeros(d, dtype=np.int64)
        n = len(reports)
        if n == 0:
            return counts
        grouped = self._grouped_seeds(reports)
        if grouped is not None:
            unique_seeds, inverse = grouped
            histograms = hashing.value_histograms(
                inverse, reports.values, unique_seeds.size, self.g
            )
            return self._fold_seed_histograms(unique_seeds, histograms)
        chunk = max(1, self.chunk_cells // d)
        domain = np.arange(d, dtype=np.uint64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            grid = hashing.hash_items(
                reports.seeds[start:stop, None], domain[None, :], self.g
            )
            matches = grid == reports.values[start:stop, None].astype(np.uint64)
            counts += matches.sum(axis=0)
        return counts

    def _fold_seed_histograms(
        self, unique_seeds: np.ndarray, histograms: np.ndarray
    ) -> np.ndarray:
        """``counts[v] = sum_s histograms[s, H_s(v)]``, chunked over seeds.

        One :func:`repro.protocols.hashing.hash_domains` grid per slice of
        cohort seeds (at most ``chunk_cells`` cells live), gathered
        through the per-seed reported-value histograms.
        """
        d = self.domain_size
        counts = np.zeros(d, dtype=np.int64)
        chunk = max(1, self.chunk_cells // d)
        for start in range(0, unique_seeds.size, chunk):
            stop = min(start + chunk, unique_seeds.size)
            grid = hashing.hash_domains(unique_seeds[start:stop], d, self.g).astype(
                np.int64
            )
            counts += np.take_along_axis(histograms[start:stop], grid, axis=1).sum(
                axis=0
            )
        return counts

    def craft_supporting(self, items: np.ndarray, rng: RngLike = None) -> OLHReports:
        """Craft reports whose support contains each requested item.

        The attacker picks a fresh hash key and reports the item's own hash
        value, so the report deterministically supports the item (plus the
        ~``d/g`` other items colliding with it, which is unavoidable in
        OLH's encoding).  Crafted reports always use per-report fresh keys
        — the attacker is not bound by the genuine cohort policy.
        """
        items = self._validate_items(items)
        gen = as_generator(rng)
        seeds = hashing.draw_seeds(items.size, gen)
        values = hashing.hash_items(seeds, items.astype(np.uint64), self.g).astype(np.int64)
        return OLHReports(seeds=seeds, values=values)

    def concat_reports(self, first: OLHReports, second: OLHReports) -> OLHReports:
        first = self._validate_olh(first)
        second = self._validate_olh(second)
        return OLHReports(
            seeds=np.concatenate([first.seeds, second.seeds]),
            values=np.concatenate([first.values, second.values]),
        )

    def num_reports(self, reports: OLHReports) -> int:
        return len(self._validate_olh(reports))

    def reports_supporting_any(self, reports: OLHReports, items: Sequence[int]) -> np.ndarray:
        """Boolean mask of reports whose support intersects ``items``.

        Delegates to :meth:`target_support_counts` (a report supports any
        target iff it supports at least one), inheriting its bounded-memory
        chunked scan and the cohort-grouped fast path.
        """
        reports = self._validate_olh(reports)
        idx = list(items)
        if len(idx) == 0 or len(reports) == 0:
            return np.zeros(len(reports), dtype=bool)
        return self.target_support_counts(reports, idx) > 0

    def target_support_counts(self, reports: OLHReports, items: Sequence[int]) -> np.ndarray:
        """Per-report count of supported target ``items``, in bounded memory.

        The per-user-seed path scans the (reports x targets) hash grid in
        slices of at most ``chunk_cells`` cells — never the unchunked
        (n x targets) grid.  Cohort batches bucket the target hashes per
        distinct seed instead and gather each report's count from its
        seed's bucket row: O(K*t + n).
        """
        reports = self._validate_olh(reports)
        idx = np.asarray(list(items), dtype=np.uint64)
        n = len(reports)
        if idx.size == 0 or n == 0:
            return np.zeros(n, dtype=np.int64)
        grouped = self._grouped_seeds(reports)
        if grouped is not None:
            unique_seeds, inverse = grouped
            k = unique_seeds.size
            buckets = np.zeros((k, self.g), dtype=np.int64)
            chunk = max(1, self.chunk_cells // idx.size)
            for start in range(0, k, chunk):
                stop = min(start + chunk, k)
                grid = hashing.hash_items(
                    unique_seeds[start:stop, None], idx[None, :], self.g
                )
                rows = np.repeat(np.arange(stop - start), idx.size)
                buckets[start:stop] = hashing.value_histograms(
                    rows, grid.ravel(), stop - start, self.g
                )
            return buckets[inverse, reports.values]
        out = np.empty(n, dtype=np.int64)
        chunk = max(1, self.chunk_cells // idx.size)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            grid = hashing.hash_items(
                reports.seeds[start:stop, None], idx[None, :], self.g
            )
            matches = grid == reports.values[start:stop, None].astype(np.uint64)
            out[start:stop] = matches.sum(axis=1)
        return out

    def select_reports(self, reports: OLHReports, mask: np.ndarray) -> OLHReports:
        reports = self._validate_olh(reports)
        mask = np.asarray(mask, dtype=bool)
        return OLHReports(seeds=reports.seeds[mask], values=reports.values[mask])

    def slice_reports(self, reports: OLHReports, start: int, stop: int) -> OLHReports:
        """O(stop-start) contiguous sub-batch (direct array slices)."""
        reports = self._validate_olh(reports)
        return OLHReports(
            seeds=reports.seeds[start:stop], values=reports.values[start:stop]
        )

    def encode_reports(self, reports: OLHReports) -> dict:
        """Wire encoding of an OLH batch: seed and value arrays side by side."""
        reports = self._validate_olh(reports)
        return {
            "seeds": encode_array(reports.seeds),
            "values": encode_array(reports.values),
        }

    def decode_reports(self, payload: dict) -> OLHReports:
        """Decode the :meth:`encode_reports` wire form back to reports."""
        try:
            seeds, values = payload["seeds"], payload["values"]
        except (TypeError, KeyError) as exc:
            raise ProtocolError(f"malformed OLH wire payload: {exc!r}") from exc
        return OLHReports(seeds=decode_array(seeds), values=decode_array(values))

    # ------------------------------------------------------------------
    # Distributional path
    # ------------------------------------------------------------------
    def sample_genuine_counts(self, true_counts: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Marginally exact aggregated counts.

        For a genuine user with item ``x``: ``Pr[x in S] = p*`` and
        ``Pr[v in S] = 1/g`` for ``v != x`` (hash uniformity), so marginally
        ``C(v) = Binom(n_v, p*) + Binom(n - n_v, 1/g)``.  Cross-item
        correlations induced by shared hash keys are ignored; they do not
        affect per-item estimates or their variances.  The cohort policy
        does not change these marginals, so this path is identical with
        and without ``cohort`` (the extra cross-user correlation of small
        cohorts is likewise not modeled).
        """
        counts = self._validate_true_counts(true_counts)
        gen = as_generator(rng)
        n = int(counts.sum())
        own = gen.binomial(counts, self.p)
        others = gen.binomial(n - counts, self.q)
        return (own + others).astype(np.int64)

    def theoretical_variance(self, n: int, frequency: float = 0.0) -> float:
        """Paper Eq. (10) (approximation, frequency-independent)."""
        if n <= 0:
            raise ProtocolError(f"n must be positive, got {n}")
        e_eps = math.exp(self.epsilon)
        return n * 4.0 * e_eps / (e_eps - 1.0) ** 2
