"""Binary Local Hashing (BLH): local hashing with a 2-value range.

The special case of OLH with ``g = 2`` (Bassily-Smith style): each user
hashes her item to one bit and perturbs it with binary randomized
response.  Aggregation probabilities ``p = e^eps/(e^eps+1)``, ``q = 1/2``.
OLH's adaptive ``g = ceil(e^eps + 1)`` dominates BLH in variance, but BLH
is the historically important baseline and exercises the hashing stack at
its extreme (every report supports about half the domain).
"""

from __future__ import annotations

from repro.exceptions import ProtocolError
from repro.protocols.olh import OLH


class BLH(OLH):
    """Binary Local Hashing frequency oracle (OLH with g = 2)."""

    name = "blh"

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        cohort: int | None = None,
        chunk_cells: int | None = None,
    ) -> None:
        super().__init__(
            epsilon, domain_size, g=2, cohort=cohort, chunk_cells=chunk_cells
        )

    def theoretical_variance(self, n: int, frequency: float = 0.0) -> float:
        """Low-frequency variance from the unified support model:
        ``n q(1-q)/(p-q)^2`` with q = 1/2 (Wang et al. 2017)."""
        if n <= 0:
            raise ProtocolError(f"n must be positive, got {n}")
        gap = self.p - self.q
        return n * self.q * (1.0 - self.q) / gap**2
