"""Harmony-style LDP mean estimation (paper Section VII-A).

Harmony (Nguyen et al. 2016) estimates the mean of values in ``[-1, 1]``:
each user stochastically rounds her value to a bit (``+1`` with probability
``(1+v)/2``), perturbs the bit with binary randomized response, and the
server debiases.  Because the whole pipeline is a two-bucket frequency
estimation, LDPRecover applies unchanged: poisoned bit frequencies are
recovered first, then mapped back to a mean.

This module provides the protocol, the canonical "report +1" poisoning
attack against it, and the frequency<->mean conversions used by
``examples/mean_estimation.py``.
"""

from __future__ import annotations

import numpy as np

from repro._rng import RngLike, as_generator
from repro.exceptions import InvalidParameterError
from repro.protocols.base import ProtocolParams
from repro.protocols.rr import BinaryRandomizedResponse


class Harmony:
    """Mean estimation for values in [-1, 1] via discretization + binary RR."""

    name = "harmony"

    def __init__(self, epsilon: float) -> None:
        self.rr = BinaryRandomizedResponse(epsilon)
        self.epsilon = self.rr.epsilon

    @property
    def params(self) -> ProtocolParams:
        """Parameters of the underlying two-bucket frequency oracle."""
        return self.rr.params

    def discretize(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Stochastically round values in [-1, 1] to bits in {0, 1}.

        Bit 1 encodes +1 and bit 0 encodes -1; ``Pr[bit=1] = (1+v)/2`` makes
        the rounding unbiased.
        """
        vals = np.asarray(values, dtype=np.float64)
        if vals.size and (vals.min() < -1.0 or vals.max() > 1.0):
            raise InvalidParameterError("Harmony values must lie in [-1, 1]")
        gen = as_generator(rng)
        return (gen.random(vals.shape) < (1.0 + vals) / 2.0).astype(np.int64)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Full user-side pipeline: discretize then randomized response."""
        gen = as_generator(rng)
        return self.rr.perturb_bits(self.discretize(values, gen), gen)

    def aggregate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Debias reported bits into the two-bucket frequency vector [f0, f1]."""
        reports = np.asarray(reports, dtype=np.int64)
        counts = np.bincount(reports, minlength=2).astype(np.int64)
        return self.rr.estimate_frequencies(counts, reports.size)

    def estimate_mean(self, reports: np.ndarray) -> float:
        """Unbiased mean estimate from perturbed bit reports."""
        return self.mean_from_frequencies(self.aggregate_frequencies(reports))

    @staticmethod
    def mean_from_frequencies(frequencies: np.ndarray) -> float:
        """Convert a two-bucket frequency vector into a mean in [-1, 1].

        ``mean = f1*(+1) + f0*(-1) = f1 - f0``.  Works for recovered
        frequency vectors too, which is how LDPRecover plugs in.
        """
        freq = np.asarray(frequencies, dtype=np.float64)
        if freq.shape != (2,):
            raise InvalidParameterError(f"expected a 2-bucket frequency vector, got {freq.shape}")
        return float(freq[1] - freq[0])

    def craft_poison_reports(self, m: int, bit: int = 1) -> np.ndarray:
        """Attacker primitive: ``m`` reports all claiming ``bit`` directly.

        Mean-inflation poisoning: malicious users skip discretization and
        perturbation, sending the raw bit to drag the mean toward +1
        (``bit=1``) or -1 (``bit=0``).
        """
        if bit not in (0, 1):
            raise InvalidParameterError(f"bit must be 0 or 1, got {bit}")
        return np.full(m, bit, dtype=np.int64)
