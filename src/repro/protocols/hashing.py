"""Keyed hash family used by Optimized Local Hashing (OLH).

The paper uses xxhash; OLH only requires a family ``H`` such that for a
random member the hash of each item is uniform over ``{0, .., g-1}`` and
(approximately) independent across items (Section III-B of the paper).  We
implement a splitmix64-based keyed hash, which passes both requirements for
the domain sizes used here, needs no dependency, and vectorizes over numpy
arrays of seeds and items.

The map is ``H_seed(x) = mix64(mix64(x) XOR seed) mod g`` where ``mix64``
is the splitmix64 finalizer.  Each user draws a fresh 64-bit ``seed``; the
pair ``(seed, y)`` is the OLH report.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: Upper bound (exclusive) for seeds drawn for the family.
SEED_SPACE = 2**63 - 1


def mix64(x: np.ndarray) -> np.ndarray:
    """Apply the splitmix64 finalizer elementwise to a uint64 array."""
    z = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return z


def hash_items(seeds: np.ndarray, items: np.ndarray, g: int) -> np.ndarray:
    """Hash ``items`` under per-element ``seeds`` into ``{0, .., g-1}``.

    ``seeds`` and ``items`` broadcast against each other, so callers can
    evaluate a single seed over the whole domain (``seeds`` scalar-like,
    ``items`` 1-D), one item under many seeds, or elementwise pairs.

    Parameters
    ----------
    seeds:
        uint64-convertible array of hash-function keys.
    items:
        integer array of item identifiers (non-negative).
    g:
        size of the hash range; must be >= 2.

    Returns
    -------
    numpy.ndarray
        uint64 array of hash values in ``[0, g)`` with the broadcast shape
        of ``seeds`` and ``items``.
    """
    if g < 2:
        raise ValueError(f"hash range g must be >= 2, got {g}")
    s = np.asarray(seeds, dtype=np.uint64)
    x = np.asarray(items, dtype=np.uint64)
    with np.errstate(over="ignore"):
        h = mix64(mix64(x) ^ s)
    return h % np.uint64(g)


def hash_domain(seed: int, domain_size: int, g: int) -> np.ndarray:
    """Hash the full domain ``0..domain_size-1`` under one ``seed``."""
    items = np.arange(domain_size, dtype=np.uint64)
    return hash_items(np.uint64(seed), items, g)


def hash_domains(seeds: np.ndarray, domain_size: int, g: int) -> np.ndarray:
    """Hash the full domain under each of several ``seeds`` at once.

    The batched kernel behind cohort-mode OLH aggregation: the inner
    ``mix64`` of the domain is evaluated once and broadcast against every
    seed, so hashing ``K`` seeds costs one domain pre-mix plus ``K *
    domain_size`` finalizer applications.

    Parameters
    ----------
    seeds:
        1-D uint64-convertible array of ``K`` hash-function keys.
    domain_size:
        Number of items ``0..domain_size-1`` to hash under every seed.
    g:
        Size of the hash range; must be >= 2.

    Returns
    -------
    numpy.ndarray
        uint64 array of shape ``(K, domain_size)``; row ``i`` equals
        ``hash_domain(seeds[i], domain_size, g)``.
    """
    s = np.asarray(seeds, dtype=np.uint64)
    if s.ndim != 1:
        raise ValueError(f"seeds must be 1-D, got shape {s.shape}")
    items = np.arange(domain_size, dtype=np.uint64)
    return hash_items(s[:, None], items[None, :], g)


def value_histograms(
    groups: np.ndarray, values: np.ndarray, num_groups: int, g: int
) -> np.ndarray:
    """Per-group histograms of hash values in ``[0, g)``.

    One fused ``bincount`` over ``groups * g + values``: entry ``[k, y]``
    counts the positions where ``groups == k`` and ``values == y``.  This
    is the O(n) reported-value tally of cohort-mode OLH aggregation —
    ``groups`` is each report's cohort-seed index, ``values`` its reported
    hash value.

    Parameters
    ----------
    groups:
        Integer array of group indices in ``[0, num_groups)``.
    values:
        Integer array (same shape) of hash values in ``[0, g)``.
    num_groups:
        Number of histogram rows.
    g:
        Size of the hash range (histogram row width).

    Returns
    -------
    numpy.ndarray
        int64 array of shape ``(num_groups, g)``.
    """
    keys = np.asarray(groups, dtype=np.int64) * np.int64(g) + np.asarray(
        values, dtype=np.int64
    )
    return np.bincount(keys.ravel(), minlength=num_groups * g).reshape(
        num_groups, g
    ).astype(np.int64)


def draw_seeds(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` independent hash-function keys."""
    return rng.integers(0, SEED_SPACE, size=n, dtype=np.int64).astype(np.uint64)
