"""LDP frequency-estimation protocols (the paper's substrate, Section III).

Public surface:

* :class:`~repro.protocols.base.FrequencyOracle` — abstract pure protocol.
* :class:`~repro.protocols.grr.GRR`, :class:`~repro.protocols.oue.OUE`,
  :class:`~repro.protocols.olh.OLH` — the three protocols the paper
  evaluates.
* :class:`~repro.protocols.rr.BinaryRandomizedResponse` and
  :class:`~repro.protocols.harmony.Harmony` — the mean-estimation stack of
  Section VII-A.
* :func:`~repro.protocols.registry.make_protocol` — name-based factory.
"""

from repro.protocols.base import (
    DEFAULT_CHUNK_USERS,
    FrequencyOracle,
    ProtocolParams,
    counts_to_items,
    decode_array,
    encode_array,
)
from repro.protocols.blh import BLH
from repro.protocols.grr import GRR
from repro.protocols.harmony import Harmony
from repro.protocols.olh import OLH, OLHReports
from repro.protocols.oue import OUE
from repro.protocols.registry import (
    PROTOCOL_NAMES,
    available_protocols,
    make_protocol,
    register_protocol,
)
from repro.protocols.rr import BinaryRandomizedResponse
from repro.protocols.sue import SUE

__all__ = [
    "DEFAULT_CHUNK_USERS",
    "FrequencyOracle",
    "ProtocolParams",
    "counts_to_items",
    "decode_array",
    "encode_array",
    "GRR",
    "OUE",
    "OLH",
    "SUE",
    "BLH",
    "OLHReports",
    "BinaryRandomizedResponse",
    "Harmony",
    "make_protocol",
    "register_protocol",
    "available_protocols",
    "PROTOCOL_NAMES",
]
