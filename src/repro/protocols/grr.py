"""General Randomized Response (GRR), paper Section III-B.

Each user reports her true item with probability ``p = e^eps / (d-1+e^eps)``
and any specific other item with probability ``q = 1 / (d-1+e^eps)``.  A GRR
report is a single item index; its support set is the singleton ``{report}``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.exceptions import ProtocolError
from repro.protocols.base import FrequencyOracle


class GRR(FrequencyOracle):
    """General Randomized Response frequency oracle.

    Reports are represented as a 1-D ``int64`` array of item indices.
    """

    name = "grr"

    def __init__(self, epsilon: float, domain_size: int) -> None:
        super().__init__(epsilon, domain_size)
        e_eps = math.exp(self.epsilon)
        self.p = e_eps / (self.domain_size - 1 + e_eps)
        self.q = 1.0 / (self.domain_size - 1 + e_eps)

    # ------------------------------------------------------------------
    # Report-level path
    # ------------------------------------------------------------------
    def perturb(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        items = self._validate_items(items)
        gen = as_generator(rng)
        n = items.size
        keep = gen.random(n) < self.p
        # A flipped user reports a uniform item among the d-1 others: draw
        # from [0, d-1) and skip past the true item.
        other = gen.integers(0, self.domain_size - 1, size=n, dtype=np.int64)
        other += (other >= items).astype(np.int64)
        return np.where(keep, items, other)

    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        reports = self._validate_items(reports)
        return np.bincount(reports, minlength=self.domain_size).astype(np.int64)

    def craft_supporting(self, items: np.ndarray, rng: RngLike = None) -> np.ndarray:
        # A GRR report supporting exactly item v is the value v itself.
        return self._validate_items(items).copy()

    def concat_reports(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        return np.concatenate([np.asarray(first, dtype=np.int64), np.asarray(second, dtype=np.int64)])

    def num_reports(self, reports: np.ndarray) -> int:
        return int(np.asarray(reports).size)

    def reports_supporting_any(self, reports: np.ndarray, items: Sequence[int]) -> np.ndarray:
        reports = self._validate_items(reports)
        return np.isin(reports, np.asarray(list(items), dtype=np.int64))

    def max_report_support(self) -> int:
        return 1

    def target_support_counts(self, reports: np.ndarray, items: Sequence[int]) -> np.ndarray:
        # A GRR report supports exactly one item, so the count is 0 or 1.
        return self.reports_supporting_any(reports, items).astype(np.int64)

    def select_reports(self, reports: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return np.asarray(reports, dtype=np.int64)[np.asarray(mask, dtype=bool)]

    def slice_reports(self, reports: np.ndarray, start: int, stop: int) -> np.ndarray:
        """O(stop-start) contiguous sub-batch (direct array slice)."""
        return np.asarray(reports, dtype=np.int64)[start:stop]

    # ------------------------------------------------------------------
    # Distributional path
    # ------------------------------------------------------------------
    def sample_genuine_counts(self, true_counts: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Exact aggregated counts without materializing reports.

        Users holding item ``v`` keep it with probability ``p``; the flipped
        ones scatter uniformly over the remaining ``d-1`` items, which is a
        multinomial redistribution per source item.
        """
        counts = self._validate_true_counts(true_counts)
        gen = as_generator(rng)
        d = self.domain_size
        kept = gen.binomial(counts, self.p)
        out = kept.astype(np.int64)
        flipped = counts - kept
        uniform_other = np.full(d - 1, 1.0 / (d - 1))
        for v in np.flatnonzero(flipped):
            scattered = gen.multinomial(int(flipped[v]), uniform_other)
            out[:v] += scattered[:v]
            out[v + 1 :] += scattered[v:]
        return out

    def theoretical_variance(self, n: int, frequency: float = 0.0) -> float:
        """Paper Eq. (4)."""
        if n <= 0:
            raise ProtocolError(f"n must be positive, got {n}")
        e_eps = math.exp(self.epsilon)
        d = self.domain_size
        base = n * (d - 2 + e_eps) / (e_eps - 1.0) ** 2
        extra = n * frequency * (d - 2) / (e_eps - 1.0)
        return base + extra
