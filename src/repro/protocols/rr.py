"""Binary randomized response (Warner 1965), the d=2 special case of GRR.

Kept as its own class because Harmony (paper Section VII-A) builds mean
estimation on top of a two-bucket randomized response, and because the
closed forms are simpler and worth exposing: ``p = e^eps/(e^eps+1)``,
``q = 1 - p``.
"""

from __future__ import annotations

import math

import numpy as np

from repro._rng import RngLike, as_generator
from repro.protocols.grr import GRR


class BinaryRandomizedResponse(GRR):
    """Randomized response over the binary domain {0, 1}."""

    name = "rr"

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon, domain_size=2)

    def flip_probability(self) -> float:
        """Probability that a report differs from the true bit."""
        return self.q

    def perturb_bits(self, bits: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb an array of {0,1} bits (alias of :meth:`perturb`)."""
        return self.perturb(np.asarray(bits, dtype=np.int64), rng)

    def debias_mean(self, reported_bits: np.ndarray) -> float:
        """Unbiased estimate of the mean of the true bits.

        With flip probability ``q``: ``E[reported] = true*(p-q) + q``, so
        ``mean = (mean(reported) - q) / (p - q)``.
        """
        reported = np.asarray(reported_bits, dtype=np.float64)
        return float((reported.mean() - self.q) / (self.p - self.q))

    @staticmethod
    def keep_probability(epsilon: float) -> float:
        """Closed form ``e^eps / (e^eps + 1)``."""
        e_eps = math.exp(epsilon)
        return e_eps / (e_eps + 1.0)


def sample_binary_reports(
    true_bits: np.ndarray, epsilon: float, rng: RngLike = None
) -> np.ndarray:
    """Convenience: perturb ``true_bits`` under epsilon-LDP binary RR."""
    rr = BinaryRandomizedResponse(epsilon)
    return rr.perturb_bits(true_bits, as_generator(rng))
