"""Abstract base class for pure LDP frequency-estimation protocols.

A pure protocol (Wang et al., USENIX Security'17) is a pair ``(Psi, Phi)``:
``Psi`` perturbs one user's item, and ``Phi`` turns the number of reports
*supporting* each item ``v`` into an unbiased count estimate

    ``Phi(v) = (C(v) - n * q) / (p - q)``                    (paper Eq. 11)

where ``C(v)`` counts reports whose support set contains ``v`` (Eq. 12-13),
and ``p``/``q`` are the probabilities that a report supports its true item /
any other fixed item.  This unified view is exactly what both the attacks
and LDPRecover exploit, so the base class exposes ``p``, ``q`` and the
estimator while subclasses supply perturbation, support counting, and the
attacker-side "craft a report supporting item v" primitive.

Two simulation paths are offered:

* ``perturb`` + ``support_counts`` materialize every report (exact,
  report-level; required by the Detection baseline and IPA);
* ``sample_genuine_counts`` draws the aggregated support counts of a
  genuine population directly from their marginal laws, so paper-scale
  populations (hundreds of thousands of users) simulate in milliseconds.
"""

from __future__ import annotations

import base64
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Sequence

import numpy as np

from repro._rng import RngLike, as_generator
from repro.exceptions import InvalidParameterError, ProtocolError

#: Default number of reports folded per slice by
#: :meth:`FrequencyOracle.fold_support_counts` (and therefore by the
#: engine's chunked aggregation, which re-exports this constant).  At
#: OUE's worst case one slice materializes ``DEFAULT_CHUNK_USERS * d``
#: booleans, which is the transient-memory bound the engine budgets for.
DEFAULT_CHUNK_USERS = 131_072

#: Wire dtypes :func:`decode_array` accepts.  Report batches only ever
#: carry item indices (``int64``), bit vectors (``bool``) or hash seeds
#: (``uint64``); rejecting everything else keeps the decoder from
#: constructing arbitrary dtypes out of untrusted payloads.
WIRE_DTYPES = ("bool", "int64", "uint64")


def encode_array(array: np.ndarray) -> dict[str, Any]:
    """JSON-safe wire encoding of ``array`` (dtype, shape, base64 bytes).

    The inverse is :func:`decode_array`; both restrict themselves to the
    report dtypes in :data:`WIRE_DTYPES` so a payload round-trips
    byte-for-byte without ever pickling.
    """
    arr = np.ascontiguousarray(array)
    if str(arr.dtype) not in WIRE_DTYPES:
        raise ProtocolError(
            f"cannot wire-encode dtype {arr.dtype!r}; expected one of {WIRE_DTYPES}"
        )
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict[str, Any]) -> np.ndarray:
    """Decode the :func:`encode_array` wire form ``payload`` back to an array.

    Validates the dtype against :data:`WIRE_DTYPES` and the byte count
    against the declared shape, so malformed payloads fail loudly instead
    of mis-slicing.
    """
    try:
        dtype_s, shape, data = payload["dtype"], payload["shape"], payload["data"]
    except (TypeError, KeyError) as exc:
        raise ProtocolError(f"malformed wire array payload: {exc!r}") from exc
    if dtype_s not in WIRE_DTYPES:
        raise ProtocolError(
            f"refusing wire dtype {dtype_s!r}; expected one of {WIRE_DTYPES}"
        )
    dtype = np.dtype(dtype_s)
    shape_t = tuple(int(s) for s in shape)
    raw = base64.b64decode(data)
    expected = int(np.prod(shape_t, dtype=np.int64)) * dtype.itemsize
    if len(raw) != expected:
        raise ProtocolError(
            f"wire array payload has {len(raw)} bytes, expected {expected} "
            f"for shape {shape_t} and dtype {dtype_s}"
        )
    # ``bytearray`` keeps the decoded batch writable (frombuffer over the
    # immutable bytes would return a read-only view).
    return np.frombuffer(bytearray(raw), dtype=dtype).reshape(shape_t)


@dataclass(frozen=True)
class ProtocolParams:
    """The public parameters of a pure LDP protocol.

    These are exactly the quantities LDPRecover needs (Section V-C): the
    aggregation probabilities ``p`` and ``q`` and the domain size ``d``.
    The recovery code takes this object rather than a full protocol so it
    can run on frequencies collected elsewhere.
    """

    name: str
    epsilon: float
    domain_size: int
    p: float
    q: float

    @property
    def d(self) -> int:
        """Alias for :attr:`domain_size` matching the paper's notation."""
        return self.domain_size

    def expected_malicious_sum(self) -> float:
        """Learned sum of malicious frequencies, ``(1 - q*d) / (p - q)``.

        Paper Eq. (21): because crafted reports bypass perturbation but not
        aggregation, the expected sum of the malicious frequency vector is
        a constant that depends only on the protocol.
        """
        return (1.0 - self.q * self.domain_size) / (self.p - self.q)


def validate_epsilon(epsilon: float) -> float:
    """Check that the privacy budget is a positive finite float."""
    eps = float(epsilon)
    if not math.isfinite(eps) or eps <= 0:
        raise InvalidParameterError(f"epsilon must be positive and finite, got {epsilon!r}")
    return eps


def validate_domain_size(domain_size: int) -> int:
    """Check that the domain size is an integer >= 2."""
    d = int(domain_size)
    if d < 2:
        raise InvalidParameterError(f"domain_size must be >= 2, got {domain_size!r}")
    return d


class FrequencyOracle(ABC):
    """Base class for GRR, OUE and OLH.

    Subclasses must set :attr:`p` and :attr:`q` in ``__init__`` and
    implement the abstract report-level primitives.  All randomized methods
    accept an ``rng`` argument normalized by :func:`repro._rng.as_generator`.
    """

    #: Short protocol name, e.g. ``"grr"``; set by subclasses.
    name: ClassVar[str] = "abstract"

    def __init__(self, epsilon: float, domain_size: int) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self.domain_size = validate_domain_size(domain_size)
        # Subclasses overwrite these with protocol-specific values.
        self.p: float = float("nan")
        self.q: float = float("nan")

    # ------------------------------------------------------------------
    # Derived, protocol-independent machinery (paper Section III-C)
    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Domain size, matching the paper's ``d``."""
        return self.domain_size

    @property
    def params(self) -> ProtocolParams:
        """Public parameters consumed by the recovery code."""
        return ProtocolParams(
            name=self.name,
            epsilon=self.epsilon,
            domain_size=self.domain_size,
            p=self.p,
            q=self.q,
        )

    def estimate_counts(self, support_counts: np.ndarray, n: int) -> np.ndarray:
        """Unbiased count estimates ``(C(v) - n*q) / (p - q)`` (Eq. 11)."""
        counts = np.asarray(support_counts, dtype=np.float64)
        if counts.shape != (self.domain_size,):
            raise ProtocolError(
                f"support_counts must have shape ({self.domain_size},), got {counts.shape}"
            )
        if n <= 0:
            raise ProtocolError(f"number of reports n must be positive, got {n}")
        return (counts - n * self.q) / (self.p - self.q)

    def estimate_frequencies(self, support_counts: np.ndarray, n: int) -> np.ndarray:
        """Unbiased frequency estimates ``Phi(v) / n``."""
        return self.estimate_counts(support_counts, n) / float(n)

    def aggregate(self, reports: Any) -> np.ndarray:
        """Frequency estimates straight from a batch of reports."""
        n = self.num_reports(reports)
        return self.estimate_frequencies(self.support_counts(reports), n)

    def expected_malicious_sum(self) -> float:
        """Paper Eq. (21); see :meth:`ProtocolParams.expected_malicious_sum`."""
        return self.params.expected_malicious_sum()

    # ------------------------------------------------------------------
    # Report-level primitives (exact path)
    # ------------------------------------------------------------------
    @abstractmethod
    def perturb(self, items: np.ndarray, rng: RngLike = None) -> Any:
        """Run the LDP perturbation ``Psi`` on one item per user.

        ``items`` is an integer array of private items in ``[0, d)``;
        returns a protocol-specific batch of reports.
        """

    @abstractmethod
    def support_counts(self, reports: Any) -> np.ndarray:
        """Count, for each item ``v``, the reports whose support contains ``v``."""

    @abstractmethod
    def craft_supporting(self, items: np.ndarray, rng: RngLike = None) -> Any:
        """Attacker primitive: craft one report per entry of ``items``.

        Each crafted report is the natural encoding of the requested item,
        *bypassing* perturbation — the poisoning model of the paper
        (Section IV-A): malicious users send attacker-chosen encoded data
        directly to the server.
        """

    @abstractmethod
    def concat_reports(self, first: Any, second: Any) -> Any:
        """Concatenate two report batches (genuine followed by malicious)."""

    @abstractmethod
    def num_reports(self, reports: Any) -> int:
        """Number of reports in a batch."""

    @abstractmethod
    def reports_supporting_any(self, reports: Any, items: Sequence[int]) -> np.ndarray:
        """Boolean mask of reports whose support intersects ``items``.

        Used by the Detection baseline (Section VI-A5), which drops every
        report that "matches the target items".
        """

    #: Reports scanned per slice by the default :meth:`target_support_counts`
    #: fallback, bounding each :meth:`reports_supporting_any` pass to one
    #: slice of the batch regardless of the total report count.
    SCAN_CHUNK_REPORTS: ClassVar[int] = 65_536

    def target_support_counts(self, reports: Any, items: Sequence[int]) -> np.ndarray:
        """Per-report count of how many of ``items`` the report supports.

        Backs the threshold-based Detection baseline: a report supporting
        many target items at once carries the signature of a crafted MGA
        report.  The default implementation scans the batch in slices of
        at most :data:`SCAN_CHUNK_REPORTS` reports (via
        :meth:`slice_reports`) and runs one :meth:`reports_supporting_any`
        pass per item within each slice, so its transient memory is
        bounded by one slice's scan even when a subclass's per-item pass
        materializes per-report state; subclasses override with vector
        code.
        """
        idx = np.asarray(list(items), dtype=np.int64)
        n = self.num_reports(reports)
        counts = np.zeros(n, dtype=np.int64)
        if idx.size == 0 or n == 0:
            return counts
        chunk = max(1, self.SCAN_CHUNK_REPORTS)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            sub = self.slice_reports(reports, start, stop)
            for item in idx:
                counts[start:stop] += self.reports_supporting_any(
                    sub, [int(item)]
                ).astype(np.int64)
        return counts

    def select_reports(self, reports: Any, mask: np.ndarray) -> Any:
        """Keep only the reports where ``mask`` is True."""
        raise NotImplementedError

    def slice_reports(self, reports: Any, start: int, stop: int) -> Any:
        """The contiguous sub-batch ``reports[start:stop]``.

        Chunked aggregation walks batches through this, so it must cost
        O(stop - start); the default routes through :meth:`select_reports`
        with a mask (O(n)) and subclasses override with direct slicing.
        """
        mask = np.zeros(self.num_reports(reports), dtype=bool)
        mask[start:stop] = True
        return self.select_reports(reports, mask)

    def max_report_support(self) -> int:
        """Largest number of items a single report can support.

        GRR reports support exactly one item; vector encodings (OUE, OLH)
        can support up to the whole domain.  Detection thresholds scale
        against this.
        """
        return self.domain_size

    # ------------------------------------------------------------------
    # Streaming aggregation (explicit-state kernel)
    # ------------------------------------------------------------------
    def init_support_state(self) -> np.ndarray:
        """Fresh, zeroed ``support_counts`` partial sums to fold batches into.

        The explicit state of the streaming kernel: an ``int64`` vector of
        length ``d``.  Because support counting is a sum over reports,
        folding any sequence of report batches into this state with
        :meth:`fold_support_counts` is byte-equal to one
        :meth:`support_counts` pass over their concatenation.
        """
        return np.zeros(self.domain_size, dtype=np.int64)

    def fold_support_counts(
        self, state: np.ndarray, reports: Any, chunk_users: int | None = None
    ) -> np.ndarray:
        """Fold one report batch into explicit ``state``, slice by slice.

        ``state`` is a partial-sum vector from :meth:`init_support_state`
        (or a previous fold); it is updated in place and returned.
        ``reports`` is walked through :meth:`slice_reports` in slices of at
        most ``chunk_users`` reports (default :data:`DEFAULT_CHUNK_USERS`),
        with the protocol's internal scan budget capped to the same slice
        via :meth:`scan_bounded`, so peak transient memory is one slice's
        worth regardless of the batch size or the chunking: any split of
        the same reports folds to byte-equal counts.
        """
        arr = np.asarray(state)
        if arr.shape != (self.domain_size,) or arr.dtype != np.int64:
            raise ProtocolError(
                f"state must be an int64 vector of shape ({self.domain_size},), "
                f"got shape {arr.shape} and dtype {arr.dtype}"
            )
        chunk = DEFAULT_CHUNK_USERS if chunk_users is None else int(chunk_users)
        if chunk < 1:
            raise InvalidParameterError(f"chunk_users must be >= 1, got {chunk_users}")
        bounded = self.scan_bounded(chunk)
        n = bounded.num_reports(reports)
        for start in range(0, n, chunk):
            arr += bounded.support_counts(
                bounded.slice_reports(reports, start, min(start + chunk, n))
            )
        return arr

    def scan_bounded(self, chunk_users: int) -> "FrequencyOracle":
        """A copy whose internal scan budget fits a ``chunk_users`` slice.

        The default is ``self``: most protocols' :meth:`support_counts`
        already costs one slice's memory.  Protocols that walk a
        (reports x domain) grid internally (OLH's ``chunk_cells``)
        override this to cap that budget at ``chunk_users * d`` cells.
        Execution-only — the returned oracle must aggregate bit-identically
        to ``self``.
        """
        return self

    # ------------------------------------------------------------------
    # Wire serialization (repro.serve ingest payloads)
    # ------------------------------------------------------------------
    def encode_reports(self, reports: Any) -> dict[str, Any]:
        """JSON-safe wire encoding of a report batch.

        The default covers every ndarray-shaped report batch (GRR's item
        indices, OUE's bit matrix) via :func:`encode_array`; protocols
        with structured batches (OLH's seed/value pairs) override both
        codec methods.  ``decode_reports(encode_reports(r))`` round-trips
        byte-for-byte.
        """
        return encode_array(np.asarray(reports))

    def decode_reports(self, payload: dict[str, Any]) -> Any:
        """Decode a batch produced by :meth:`encode_reports`."""
        return decode_array(payload)

    # ------------------------------------------------------------------
    # Distributional primitives (fast path)
    # ------------------------------------------------------------------
    @abstractmethod
    def sample_genuine_counts(self, true_counts: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Draw the aggregated support counts of a genuine population.

        ``true_counts[v]`` is the number of users whose private item is
        ``v``.  The returned array is distributed as
        ``support_counts(perturb(items))`` (exactly for GRR/OUE, marginally
        for OLH) but costs O(d) instead of O(n).
        """

    @abstractmethod
    def theoretical_variance(self, n: int, frequency: float = 0.0) -> float:
        """Variance of the count estimator as printed in the paper.

        GRR: Eq. (4); OUE: Eq. (7); OLH: Eq. (10).
        """

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def _validate_items(self, items: np.ndarray) -> np.ndarray:
        arr = np.asarray(items)
        if arr.ndim != 1:
            raise ProtocolError(f"items must be a 1-D array, got shape {arr.shape}")
        if arr.size == 0:
            return arr.astype(np.int64)
        arr = arr.astype(np.int64, copy=False)
        if arr.min() < 0 or arr.max() >= self.domain_size:
            raise ProtocolError(
                f"items must lie in [0, {self.domain_size}), got range "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr

    def _validate_true_counts(self, true_counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(true_counts)
        if counts.shape != (self.domain_size,):
            raise ProtocolError(
                f"true_counts must have shape ({self.domain_size},), got {counts.shape}"
            )
        if np.any(counts < 0):
            raise ProtocolError("true_counts must be non-negative")
        return counts.astype(np.int64, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(epsilon={self.epsilon}, domain_size={self.domain_size})"


def counts_to_items(true_counts: np.ndarray, rng: RngLike = None, shuffle: bool = True) -> np.ndarray:
    """Expand a count vector into one item per user.

    Utility for the exact simulation path: turns ``true_counts`` (the
    dataset histogram) into the array of private items held by individual
    users, optionally shuffled.
    """
    counts = np.asarray(true_counts, dtype=np.int64)
    items = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    if shuffle:
        as_generator(rng).shuffle(items)
    return items
