"""Dataset persistence: save/load histograms as CSV or NPZ.

Lets users run the pipeline on their own categorical data: export a
histogram from any system as a two-column CSV (``item,count``) or store
the canonical surrogates for byte-identical reuse across machines.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError


def save_dataset(dataset: Dataset, path: str | pathlib.Path) -> pathlib.Path:
    """Write a dataset to ``path`` (`.csv` two-column or `.npz`)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".npz":
        np.savez_compressed(path, name=np.array(dataset.name), counts=dataset.counts)
        return path
    if path.suffix == ".csv":
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["item", "count"])
            for item, count in enumerate(dataset.counts):
                writer.writerow([item, int(count)])
        return path
    raise InvalidParameterError(f"unsupported extension {path.suffix!r} (use .csv/.npz)")


def load_dataset_file(path: str | pathlib.Path, name: str | None = None) -> Dataset:
    """Read a dataset from a `.csv` (``item,count``) or `.npz` file.

    CSV rows may arrive in any item order; missing items get count zero.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise InvalidParameterError(f"dataset file not found: {path}")
    if path.suffix == ".npz":
        with np.load(path) as payload:
            counts = payload["counts"]
            stored_name = str(payload["name"]) if "name" in payload else path.stem
        return Dataset(name=name or stored_name, counts=counts)
    if path.suffix == ".csv":
        entries: dict[int, int] = {}
        with path.open(newline="") as handle:
            for record in csv.DictReader(handle):
                try:
                    entries[int(record["item"])] = int(record["count"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise InvalidParameterError(
                        f"malformed CSV row {record!r}: need integer 'item' and 'count'"
                    ) from exc
        if not entries:
            raise InvalidParameterError(f"no rows in {path}")
        size = max(entries) + 1
        counts = np.zeros(size, dtype=np.int64)
        for item, count in entries.items():
            if item < 0:
                raise InvalidParameterError(f"negative item id {item} in {path}")
            counts[item] = count
        return Dataset(name=name or path.stem, counts=counts)
    raise InvalidParameterError(f"unsupported extension {path.suffix!r} (use .csv/.npz)")
