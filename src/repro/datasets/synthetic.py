"""Synthetic frequency-profile generators.

Skewed (Zipf-like) profiles dominate real categorical data — cities,
emojis, unit IDs — and the paper's two datasets are both heavy-tailed.
These generators produce deterministic histograms from a profile + seed so
every experiment is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro._rng import RngLike, as_generator
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError


def _largest_remainder(ideal: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative reals to integers summing exactly to ``total``."""
    floor = np.floor(ideal).astype(np.int64)
    shortfall = total - int(floor.sum())
    if shortfall > 0:
        top = np.argsort(ideal - floor)[::-1][:shortfall]
        floor[top] += 1
    elif shortfall < 0:  # numerical corner: trim the largest cells
        top = np.argsort(floor)[::-1][: -shortfall]
        floor[top] -= 1
    return floor


def zipf_dataset(
    domain_size: int,
    num_users: int,
    exponent: float = 1.0,
    name: str = "zipf",
    rng: RngLike = None,
    shuffle: bool = True,
) -> Dataset:
    """Zipf profile: item rank ``k`` gets mass proportional to ``k^-s``.

    ``shuffle`` permutes which item gets which rank (so item ids do not
    correlate with popularity, as in real categorical encodings).
    """
    if domain_size < 2:
        raise InvalidParameterError(f"domain_size must be >= 2, got {domain_size}")
    if num_users < 1:
        raise InvalidParameterError(f"num_users must be >= 1, got {num_users}")
    if exponent < 0:
        raise InvalidParameterError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks**-exponent
    probs = weights / weights.sum()
    if shuffle:
        as_generator(rng).shuffle(probs)
    counts = _largest_remainder(probs * num_users, num_users)
    return Dataset(name=name, counts=counts)


def uniform_dataset(domain_size: int, num_users: int, name: str = "uniform") -> Dataset:
    """Flat profile — the hardest case for poisoning detection heuristics."""
    ideal = np.full(domain_size, num_users / domain_size)
    return Dataset(name=name, counts=_largest_remainder(ideal, num_users))


def geometric_dataset(
    domain_size: int,
    num_users: int,
    ratio: float = 0.9,
    name: str = "geometric",
    rng: RngLike = None,
    shuffle: bool = True,
) -> Dataset:
    """Geometric decay profile: rank ``k`` mass proportional to ``ratio^k``."""
    if not 0.0 < ratio < 1.0:
        raise InvalidParameterError(f"ratio must be in (0, 1), got {ratio}")
    weights = ratio ** np.arange(domain_size, dtype=np.float64)
    probs = weights / weights.sum()
    if shuffle:
        as_generator(rng).shuffle(probs)
    counts = _largest_remainder(probs * num_users, num_users)
    return Dataset(name=name, counts=counts)


def dirichlet_dataset(
    domain_size: int,
    num_users: int,
    concentration: float = 0.5,
    name: str = "dirichlet",
    rng: RngLike = None,
) -> Dataset:
    """Random profile drawn from a Dirichlet; small alpha = very skewed."""
    if concentration <= 0:
        raise InvalidParameterError(f"concentration must be positive, got {concentration}")
    probs = as_generator(rng).dirichlet(np.full(domain_size, concentration))
    counts = _largest_remainder(probs * num_users, num_users)
    return Dataset(name=name, counts=counts)
