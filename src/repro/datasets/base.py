"""Dataset container used across the simulation and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class Dataset:
    """An item-frequency dataset: a histogram over a finite domain.

    Everything downstream (protocols, attacks, recovery) only consumes the
    histogram — individual user identities never matter — so this is the
    whole data model.
    """

    name: str
    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.ndim != 1 or counts.size < 2:
            raise InvalidParameterError(
                f"counts must be a 1-D histogram with >= 2 bins, got shape {counts.shape}"
            )
        if counts.min() < 0:
            raise InvalidParameterError("counts must be non-negative")
        if counts.sum() <= 0:
            raise InvalidParameterError("dataset must contain at least one user")
        object.__setattr__(self, "counts", counts)

    @property
    def domain_size(self) -> int:
        """Number of distinct items ``d``."""
        return int(self.counts.size)

    @property
    def num_users(self) -> int:
        """Number of users ``n`` (one item per user)."""
        return int(self.counts.sum())

    @property
    def frequencies(self) -> np.ndarray:
        """True frequency vector ``f_X`` (sums to one)."""
        return self.counts / self.counts.sum()

    def scaled(self, num_users: int) -> "Dataset":
        """Rescale to ``num_users`` while preserving the frequency profile.

        Uses largest-remainder rounding so the result sums exactly to
        ``num_users``.  Lets tests and quick runs use the same shape at a
        fraction of the population.
        """
        if num_users < 1:
            raise InvalidParameterError(f"num_users must be >= 1, got {num_users}")
        ideal = self.frequencies * num_users
        floor = np.floor(ideal).astype(np.int64)
        shortfall = num_users - int(floor.sum())
        if shortfall:
            remainders = ideal - floor
            top = np.argsort(remainders)[::-1][:shortfall]
            floor[top] += 1
        return Dataset(name=f"{self.name}@{num_users}", counts=floor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset({self.name!r}, d={self.domain_size}, n={self.num_users})"
