"""IPUMS-like surrogate dataset (paper Section VI-A1).

The paper uses the 2017 IPUMS USA census extract with the "city" attribute:
**102 items, 389,894 users**.  The raw extract is not redistributable and
unavailable offline, so we generate a surrogate with the same domain size,
population and a city-size-like profile: US city populations follow a
Zipf law with exponent near 1 and a long tail of small cities contributing
near-zero frequencies.  All of the paper's results depend only on this
shape (head mass, tail of near-zero items), never on the identity of the
cities — see DESIGN.md section 4 for the substitution rationale.
"""

from __future__ import annotations

from repro._rng import RngLike
from repro.datasets.base import Dataset
from repro.datasets.synthetic import zipf_dataset

#: Domain size and population reported by the paper.
IPUMS_DOMAIN_SIZE = 102
IPUMS_NUM_USERS = 389_894

#: Zipf exponent approximating the US city-size distribution.
IPUMS_ZIPF_EXPONENT = 1.05

#: Fixed seed so the surrogate is identical across runs and machines.
_DEFAULT_SEED = 20240120


def ipums_like(
    num_users: int | None = None,
    rng: RngLike = _DEFAULT_SEED,
) -> Dataset:
    """Build the IPUMS-city surrogate.

    Parameters
    ----------
    num_users:
        Override the population (profile preserved); ``None`` uses the
        paper's 389,894.
    rng:
        Seed controlling the rank-to-item permutation; the default yields
        the canonical surrogate used by the benchmarks.
    """
    dataset = zipf_dataset(
        domain_size=IPUMS_DOMAIN_SIZE,
        num_users=IPUMS_NUM_USERS,
        exponent=IPUMS_ZIPF_EXPONENT,
        name="ipums-like",
        rng=rng,
    )
    if num_users is not None and num_users != IPUMS_NUM_USERS:
        dataset = dataset.scaled(num_users)
    return dataset
