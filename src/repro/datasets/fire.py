"""Fire-like surrogate dataset (paper Section VI-A1).

The paper uses San Francisco Fire Department service calls (2023-01-16
snapshot) filtered to the "Alarms" call type, with "unit ID" as the item:
**490 items, 667,574 users**.  The live endpoint is unavailable offline,
so we generate a surrogate with the same domain size and population and a
unit-workload-like profile: busier than Zipf-1 at the head but with much
of the domain carrying small-but-nonzero mass (dispatch loads are skewed
yet no unit is idle).  A mild geometric-Zipf blend reproduces this; see
DESIGN.md section 4.
"""

from __future__ import annotations

import numpy as np

from repro._rng import RngLike, as_generator
from repro.datasets.base import Dataset
from repro.datasets.synthetic import _largest_remainder

#: Domain size and population reported by the paper.
FIRE_DOMAIN_SIZE = 490
FIRE_NUM_USERS = 667_574

#: Fixed seed for the canonical surrogate.
_DEFAULT_SEED = 20230116


def fire_like(
    num_users: int | None = None,
    rng: RngLike = _DEFAULT_SEED,
) -> Dataset:
    """Build the SF-Fire unit-ID surrogate.

    Parameters
    ----------
    num_users:
        Override the population (profile preserved); ``None`` uses the
        paper's 667,574.
    rng:
        Seed controlling the profile permutation; the default yields the
        canonical surrogate used by the benchmarks.
    """
    total = FIRE_NUM_USERS if num_users is None else int(num_users)
    gen = as_generator(rng)
    ranks = np.arange(1, FIRE_DOMAIN_SIZE + 1, dtype=np.float64)
    # Blend: Zipf(0.8) head + uniform floor so every unit has some calls.
    zipf = ranks**-0.8
    profile = 0.85 * zipf / zipf.sum() + 0.15 / FIRE_DOMAIN_SIZE
    gen.shuffle(profile)
    counts = _largest_remainder(profile * total, total)
    return Dataset(name="fire-like", counts=counts)
