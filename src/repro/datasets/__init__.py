"""Datasets: the histogram container and the paper's two workloads.

The real IPUMS/Fire extracts are unavailable offline; :func:`ipums_like`
and :func:`fire_like` are deterministic surrogates matching their domain
sizes, populations and frequency profiles (DESIGN.md section 4).
"""

from repro.datasets.base import Dataset
from repro.datasets.fire import FIRE_DOMAIN_SIZE, FIRE_NUM_USERS, fire_like
from repro.datasets.io import load_dataset_file, save_dataset
from repro.datasets.ipums import IPUMS_DOMAIN_SIZE, IPUMS_NUM_USERS, ipums_like
from repro.datasets.synthetic import (
    dirichlet_dataset,
    geometric_dataset,
    uniform_dataset,
    zipf_dataset,
)

__all__ = [
    "Dataset",
    "ipums_like",
    "fire_like",
    "IPUMS_DOMAIN_SIZE",
    "IPUMS_NUM_USERS",
    "FIRE_DOMAIN_SIZE",
    "FIRE_NUM_USERS",
    "zipf_dataset",
    "uniform_dataset",
    "geometric_dataset",
    "dirichlet_dataset",
    "save_dataset",
    "load_dataset_file",
]
