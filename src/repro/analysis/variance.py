"""Closed-form estimator variances and protocol comparisons.

The paper quotes the count-estimator variances of the three protocols
(Eq. 4, 7, 10).  This module exposes them per protocol plus the generic
support-probability form used throughout Section V, and a helper that
ranks protocols by variance for a given (epsilon, d) — useful both for
sanity tests ("OUE/OLH beat GRR for large d") and for users choosing a
protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import InvalidParameterError
from repro.protocols.base import ProtocolParams


def generic_count_variance(params: ProtocolParams, n: int, frequency: float) -> float:
    """Variance of the count estimate from the unified support model.

    ``Var[Phi(v)] = n * s(1-s) / (p-q)^2`` with
    ``s = f*p + (1-f)*q`` — the exact finite-n variance implied by
    Eq. 11-13, of which the paper's per-protocol formulas are special
    cases / approximations.
    """
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    if not 0.0 <= frequency <= 1.0:
        raise InvalidParameterError(f"frequency must be in [0,1], got {frequency}")
    s = frequency * params.p + (1.0 - frequency) * params.q
    return n * s * (1.0 - s) / (params.p - params.q) ** 2


def grr_count_variance(epsilon: float, domain_size: int, n: int, frequency: float = 0.0) -> float:
    """Paper Eq. (4)."""
    e_eps = math.exp(epsilon)
    d = domain_size
    return n * (d - 2 + e_eps) / (e_eps - 1.0) ** 2 + n * frequency * (d - 2) / (e_eps - 1.0)


def oue_count_variance(epsilon: float, n: int) -> float:
    """Paper Eq. (7)."""
    e_eps = math.exp(epsilon)
    return n * 4.0 * e_eps / (e_eps - 1.0) ** 2


def olh_count_variance(epsilon: float, n: int) -> float:
    """Paper Eq. (10) — same leading form as OUE."""
    return oue_count_variance(epsilon, n)


@dataclass(frozen=True)
class VarianceComparison:
    """Variances of the three protocols for one (epsilon, d, n) setting."""

    grr: float
    oue: float
    olh: float

    def best(self) -> str:
        """Protocol with the smallest low-frequency variance."""
        pairs = [("grr", self.grr), ("oue", self.oue), ("olh", self.olh)]
        return min(pairs, key=lambda kv: kv[1])[0]


def compare_protocols(epsilon: float, domain_size: int, n: int) -> VarianceComparison:
    """Low-frequency (f -> 0) variance comparison across protocols."""
    return VarianceComparison(
        grr=grr_count_variance(epsilon, domain_size, n),
        oue=oue_count_variance(epsilon, n),
        olh=olh_count_variance(epsilon, n),
    )


def grr_crossover_domain_size(epsilon: float) -> float:
    """Domain size below which GRR beats OUE/OLH in variance.

    Setting Eq. 4 (f=0) equal to Eq. 7 gives ``d = 3e^eps + 2``: GRR wins
    for small domains, unary/hashing encodings win beyond.
    """
    return 3.0 * math.exp(epsilon) + 2.0
