"""Closed-form analysis: protocol variances, attack gains, recovery theory."""

from repro.analysis.gain import (
    expected_gain_from_support,
    mga_expected_gain_grr,
    mga_expected_gain_olh,
    mga_expected_gain_oue,
    users_needed_for_gain,
)
from repro.analysis.theory import (
    eta_mismatch_bias,
    expected_poisoned_frequency,
    learned_sums_by_protocol,
    matched_eta,
    poisoning_bias,
)
from repro.analysis.variance import (
    VarianceComparison,
    compare_protocols,
    generic_count_variance,
    grr_count_variance,
    grr_crossover_domain_size,
    oue_count_variance,
    olh_count_variance,
)

__all__ = [
    "generic_count_variance",
    "grr_count_variance",
    "oue_count_variance",
    "olh_count_variance",
    "compare_protocols",
    "VarianceComparison",
    "grr_crossover_domain_size",
    "expected_poisoned_frequency",
    "poisoning_bias",
    "eta_mismatch_bias",
    "matched_eta",
    "learned_sums_by_protocol",
    "expected_gain_from_support",
    "mga_expected_gain_grr",
    "mga_expected_gain_oue",
    "mga_expected_gain_olh",
    "users_needed_for_gain",
]
