"""Closed-form expected frequency gain of targeted poisoning.

For single-item-encoding attacks the framework gives the expected
poisoned frequency in closed form, hence the expected frequency gain of
the target set before any recovery:

    ``E[gain] = sum_t ( E[f_Z(t)] - f_X(t) )``
              ``= beta * sum_t ( (s_t - q)/(p - q) - f_X(t) )``

where ``s_t`` is the probability that one crafted report supports target
``t``.  For MGA: ``s_t = 1/r`` under GRR (each report names one target),
``s_t = 1`` under OUE (every crafted vector sets all target bits) and
``s_t ~ coverage/r`` under OLH (a searched (seed, value) pair supports a
``coverage``-sized subset of the targets).

These forms back the sanity tests and let users size ``beta`` thresholds
("how many fake users until item X enters the top 10?") analytically.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.protocols.base import ProtocolParams


def expected_gain_from_support(
    support_probs: np.ndarray,
    target_freqs: np.ndarray,
    params: ProtocolParams,
    beta: float,
) -> float:
    """Generic expected gain given per-target crafted support probabilities."""
    if not 0.0 <= beta < 1.0:
        raise InvalidParameterError(f"beta must be in [0, 1), got {beta}")
    s = np.asarray(support_probs, dtype=np.float64)
    f = np.asarray(target_freqs, dtype=np.float64)
    if s.shape != f.shape or s.ndim != 1 or s.size == 0:
        raise InvalidParameterError(
            f"support/frequency vectors must be equal-shape non-empty 1-D, "
            f"got {s.shape} and {f.shape}"
        )
    debiased = (s - params.q) / (params.p - params.q)
    return float(beta * np.sum(debiased - f))


def mga_expected_gain_grr(
    target_freqs: np.ndarray, params: ProtocolParams, beta: float
) -> float:
    """MGA on GRR: each crafted report supports one of the r targets."""
    f = np.asarray(target_freqs, dtype=np.float64)
    support = np.full(f.size, 1.0 / f.size)
    return expected_gain_from_support(support, f, params, beta)


def mga_expected_gain_oue(
    target_freqs: np.ndarray, params: ProtocolParams, beta: float
) -> float:
    """MGA on OUE: every crafted vector sets all target bits."""
    f = np.asarray(target_freqs, dtype=np.float64)
    support = np.ones(f.size)
    return expected_gain_from_support(support, f, params, beta)


def mga_expected_gain_olh(
    target_freqs: np.ndarray,
    params: ProtocolParams,
    beta: float,
    mean_coverage: float,
) -> float:
    """MGA on OLH: a crafted pair supports ``mean_coverage`` of r targets.

    ``mean_coverage`` is the average number of targets the attacker's
    searched (seed, value) pairs cover; per-target support probability is
    ``mean_coverage / r``.
    """
    f = np.asarray(target_freqs, dtype=np.float64)
    if not 0.0 < mean_coverage <= f.size:
        raise InvalidParameterError(
            f"mean_coverage must be in (0, r={f.size}], got {mean_coverage}"
        )
    support = np.full(f.size, mean_coverage / f.size)
    return expected_gain_from_support(support, f, params, beta)


def users_needed_for_gain(
    desired_gain: float,
    target_freqs: np.ndarray,
    params: ProtocolParams,
    support_probs: np.ndarray,
    num_genuine: int,
) -> int:
    """Invert the gain formula: malicious users needed for a desired gain.

    Solves ``gain(beta) = desired_gain`` for ``m`` given ``beta =
    m/(n+m)``.  Returns ``-1`` when the attack cannot reach the desired
    gain for any beta < 1 (per-user gain too small).
    """
    if desired_gain <= 0:
        raise InvalidParameterError(f"desired_gain must be positive, got {desired_gain}")
    unit = expected_gain_from_support(support_probs, target_freqs, params, beta=0.5) / 0.5
    if unit <= 0:
        return -1
    beta = desired_gain / unit
    if beta >= 1.0:
        return -1
    return int(np.ceil(beta * num_genuine / (1.0 - beta)))
