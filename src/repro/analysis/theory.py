"""Theoretical helpers around LDPRecover's constraints.

Collects the paper's closed-form quantities that are about the *recovery*
rather than the protocols: the learned malicious sum per protocol, the
poisoning bias induced by an attack, and the sensitivity of the Eq. 19
estimator to a mis-specified eta — the quantity behind the Figures 5-6
eta sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.core.malicious import learned_malicious_sum
from repro.exceptions import InvalidParameterError
from repro.protocols.base import ProtocolParams


def expected_poisoned_frequency(
    true_freq: np.ndarray, attack_distribution: np.ndarray, params: ProtocolParams, beta: float
) -> np.ndarray:
    """Expected poisoned frequency vector under a single-item-encoding attack.

    Genuine mass contributes its true frequency (unbiased aggregation);
    each crafted report supporting exactly item ``v`` contributes a
    debiased ``(P(v) - q)/(p - q)``.  Mixing with weight ``beta``:

        ``E[f_Z(v)] = (1-beta) f_X(v) + beta (P(v) - q)/(p - q)``
    """
    if not 0.0 <= beta < 1.0:
        raise InvalidParameterError(f"beta must be in [0, 1), got {beta}")
    f = np.asarray(true_freq, dtype=np.float64)
    attack = np.asarray(attack_distribution, dtype=np.float64)
    if f.shape != attack.shape:
        raise InvalidParameterError(
            f"true/attack vectors must match, got {f.shape} vs {attack.shape}"
        )
    debiased_attack = (attack - params.q) / (params.p - params.q)
    return (1.0 - beta) * f + beta * debiased_attack


def poisoning_bias(
    true_freq: np.ndarray, attack_distribution: np.ndarray, params: ProtocolParams, beta: float
) -> np.ndarray:
    """Expected per-item bias the attack adds before any recovery."""
    expected = expected_poisoned_frequency(true_freq, attack_distribution, params, beta)
    return expected - np.asarray(true_freq, dtype=np.float64)


def eta_mismatch_bias(
    true_freq: np.ndarray,
    attack_distribution: np.ndarray,
    params: ProtocolParams,
    beta: float,
    eta: float,
) -> np.ndarray:
    """Expected residual bias of the Eq. 19 estimator with the wrong eta.

    Assumes a perfectly known malicious vector; the residual then is
    ``(1+eta) E[f_Z] - eta E[f_Y] - f_X``.  Zero exactly when
    ``eta = beta/(1-beta)``, which is the "recovery is best when eta
    matches beta" observation of Section VI-D.
    """
    if eta < 0:
        raise InvalidParameterError(f"eta must be >= 0, got {eta}")
    f = np.asarray(true_freq, dtype=np.float64)
    attack = np.asarray(attack_distribution, dtype=np.float64)
    debiased_attack = (attack - params.q) / (params.p - params.q)
    expected_z = (1.0 - beta) * f + beta * debiased_attack
    return (1.0 + eta) * expected_z - eta * debiased_attack - f


def learned_sums_by_protocol(params_list: list[ProtocolParams]) -> dict[str, float]:
    """Eq. 21 constants for a set of protocols (handy in reports/tests)."""
    return {params.name: learned_malicious_sum(params) for params in params_list}


def matched_eta(beta: float) -> float:
    """The eta that matches a malicious fraction: ``eta = beta/(1-beta)``."""
    if not 0.0 <= beta < 1.0:
        raise InvalidParameterError(f"beta must be in [0, 1), got {beta}")
    return beta / (1.0 - beta)
