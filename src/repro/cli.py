"""Command-line interface: regenerate any of the paper's exhibits.

Examples::

    ldprecover list
    ldprecover run --figure fig3 --dataset ipums --workers 4
    ldprecover run --figure fig5 --parameter beta --workers 0
    ldprecover run --figure fig7 --chunk-users 200000
    ldprecover run --figure fig7 --chunk-users 200000 --olh-cohort 256
    ldprecover run --figure table1 --trials 3 --cache-stats
    ldprecover run --figure fig6 --no-cache
    ldprecover run --figure fig8 --trials 2 --target-ci 1e-3 --max-trials 20
    ldprecover run --exhibit kv --trials 3
    ldprecover run --exhibit heavyhitter --workers 0
    ldprecover demo --protocol oue --beta 0.1
    ldprecover serve --protocol grr --epsilon 1.0 --domain-size 128 --port 8080
    ldprecover serve --protocol olh --olh-cohort 256 --retain-reports
    ldprecover lint src/repro tests benchmarks
    ldprecover lint --list-rules
    ldprecover lint --format github --select REP001,REP002
    ldprecover lint --format sarif > repro-lint.sarif
    ldprecover lint --changed-only origin/main
    ldprecover cache ls
    ldprecover cache verify
    ldprecover cache prune --older-than-days 30
    ldprecover shard run --figure fig8 --shard-index 0 --shard-count 2
    ldprecover shard run --figure fig8 --claims
    ldprecover shard status --figure fig8
    ldprecover shard merge --figure fig8 --output fig8.json

Completed experiment cells are cached on disk (see
:mod:`repro.sim.cache`) under ``--cache-dir`` — by default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-ldprecover`` — so interrupted
sweeps resume from where they stopped and warm reruns cost zero
simulation time.  ``--no-cache`` bypasses the store, ``--cache-stats``
prints the hit/miss summary after a run, and the ``cache`` subcommand
inspects (``ls``), garbage-collects (``prune``) and integrity-checks
(``verify``) the store.  With ``--target-ci`` (adaptive CI-targeted
trial allocation, see :class:`repro.sim.engine.TrialBudget`) cells also
persist appendable per-trial blocks, so a later run with a higher
``--max-trials`` resumes every cell from its stored trials instead of
recomputing; ``cache ls`` then shows per-cell block counts and achieved
half-widths, and ``cache verify`` checks block-chain integrity.

The ``shard`` subcommand splits one sweep across machines that share a
cache directory (see :mod:`repro.sim.shard`): ``shard run`` executes one
shard's cells — statically partitioned via ``--shard-index/--shard-count``
or work-stealing via ``--claims`` — ``shard status`` reports progress,
and ``shard merge`` renders the final rows from the fully populated
cache, bit-identical to an unsharded run.

The ``lint`` subcommand runs the determinism & cache-contract analyzer
(:mod:`repro.lint`) over a source tree: every registered ``REPnnn`` rule
(unseeded randomness, wall-clock leaks, fingerprint coverage, trial-task
picklability, unordered iteration, plus the REP2xx whole-program flow
rules: seed provenance, claim leaks, fingerprint mutation, unordered
reductions, entropy re-exports) and the runtime fingerprint contract
scan.  ``--format github`` emits CI workflow annotations, ``--format
sarif`` a SARIF 2.1.0 log for code-scanning upload, ``--changed-only
REF`` narrows reporting to files changed since a git ref, and the
checked-in ``.repro-lint-baseline.json`` absorbs reviewed findings.

The ``serve`` subcommand boots the online recovery service
(:mod:`repro.serve`): an asyncio HTTP endpoint that ingests perturbed
report batches per epoch (``POST /ingest``), serves raw / LDPRecover /
LDPRecover* / Detection frequency views with lazy dirty-epoch
recomputation (``GET /frequencies``), and exposes ``/healthz`` and
``/stats``; ``--snapshot-dir`` enables crash-safe state snapshots
(``POST /snapshot``) that ``--resume`` restores on the next boot.

Beyond the paper's figures, registered *scenario exhibits*
(:mod:`repro.sim.scenarios`) — key-value recovery (``--exhibit kv``) and
heavy-hitter promotion/repair (``--exhibit heavyhitter``) — dispatch
through the same ``run``/``shard`` machinery, caches included.

The same functions back the ``benchmarks/`` suite; the CLI simply prints
the row tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.exceptions import InvalidParameterError, ReproError, ShardIncompleteError
from repro.sim.cache import resolve_cache
from repro.sim.experiment import format_table
from repro.sim.scenarios import SCENARIOS
from repro.sim.shard import (
    DEFAULT_CLAIM_TTL,
    SweepConfig,
    merge_sweep,
    run_shard,
    sweep_status,
)

def _exhibits() -> tuple[str, ...]:
    """The regenerable exhibits (``--figure``/``--exhibit`` choices of
    ``run`` and ``shard``): the paper figures plus the scenario sweeps
    registered *at call time* — computed lazily so a scenario registered
    after this module imported still dispatches through the CLI."""
    return SweepConfig.exhibit_names()


def _sweep_config(args: argparse.Namespace) -> SweepConfig:
    """The :class:`SweepConfig` described by parsed ``run``/``shard`` flags."""
    return SweepConfig(
        figure=args.figure,
        dataset=args.dataset,
        parameter=args.parameter,
        num_users=args.num_users,
        trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        chunk_users=args.chunk_users,
        olh_cohort=args.olh_cohort,
        target_ci=args.target_ci,
        max_trials=args.max_trials,
        trial_batch=args.trial_batch,
    )

_FIGURE_DESCRIPTIONS = {
    "fig3": "MSE of LDPRecover / LDPRecover* / Detection per attack-protocol cell",
    "fig4": "frequency gain of MGA before/after recovery",
    "fig5": "parameter sweeps (beta / epsilon / eta) under AA on IPUMS",
    "fig6": "parameter sweeps (beta / epsilon / eta) under AA on Fire",
    "fig7": "MSE of estimated vs true malicious frequencies",
    "fig8": "MGA vs MGA-IPA poisoning strength",
    "fig9": "LDPRecover-KM vs plain k-means under MGA-IPA",
    "fig10": "multi-attacker adaptive attacks",
    "table1": "LDPRecover on unpoisoned frequencies",
}


def _descriptions() -> dict[str, str]:
    """One-line descriptions per exhibit (``list`` output), registry-fresh."""
    return {
        **_FIGURE_DESCRIPTIONS,
        **{name: exhibit.description for name, exhibit in SCENARIOS.items()},
    }


def _chunkless() -> tuple[str, ...]:
    """Exhibits for which ``--chunk-users`` cannot apply: the report-level
    figures (materialized reports required) plus scenario sweeps that do
    not declare the knob."""
    return ("fig3", "fig4", "fig9") + tuple(
        name for name, exhibit in SCENARIOS.items() if not exhibit.uses_chunk_users
    )


def _demo(args: argparse.Namespace) -> int:
    """Single end-to-end poisoning + recovery round, verbosely."""
    import repro
    from repro.sim import figures

    data = figures.load_dataset(args.dataset, args.num_users or 50_000)
    protocol = repro.make_protocol(args.protocol, epsilon=args.epsilon, domain_size=data.domain_size)
    attack = repro.MGAAttack(domain_size=data.domain_size, r=10, rng=args.seed)
    mode = "chunked" if args.chunk_users is not None else "fast"
    trial = repro.run_trial(
        data, protocol, attack, beta=args.beta, mode=mode, rng=args.seed,
        chunk_users=args.chunk_users,
    )
    recovery = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
    star = repro.recover_frequencies(
        trial.poisoned_frequencies, protocol, target_items=attack.target_items
    )
    print(f"dataset={data.name} protocol={protocol.name} beta={args.beta} m={trial.m}")
    print(f"MSE before recovery     : {repro.mse(trial.true_frequencies, trial.poisoned_frequencies):.3e}")
    print(f"MSE after LDPRecover    : {repro.mse(trial.true_frequencies, recovery.frequencies):.3e}")
    print(f"MSE after LDPRecover*   : {repro.mse(trial.true_frequencies, star.frequencies):.3e}")
    fg = repro.frequency_gain(trial.genuine_frequencies, trial.poisoned_frequencies, attack.target_items)
    fg_rec = repro.frequency_gain(trial.genuine_frequencies, recovery.frequencies, attack.target_items)
    print(f"frequency gain          : {fg:+.3f} -> {fg_rec:+.3f} after recovery")
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: boot the online LDP recovery service."""
    import repro
    from repro.serve import RecoveryService, SnapshotStore, run_server

    kwargs: dict[str, object] = {}
    if args.olh_cohort is not None:
        if args.protocol not in ("olh", "blh"):
            print("error: --olh-cohort requires --protocol olh or blh", file=sys.stderr)
            return 2
        kwargs["cohort"] = args.olh_cohort
    protocol = repro.make_protocol(
        args.protocol, epsilon=args.epsilon, domain_size=args.domain_size, **kwargs
    )
    store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir else None
    snapshot = store.latest() if store is not None and args.resume else None
    if snapshot is not None:
        try:
            service = RecoveryService.restore(
                snapshot,
                protocol,
                chunk_users=args.chunk_users,
                retain_reports=args.retain_reports,
            )
        except ReproError as exc:
            print(f"error: cannot resume from snapshot: {exc}", file=sys.stderr)
            return 2
        print(
            f"resumed {service.ingested_reports} reports across "
            f"{len(service.state.epochs)} epochs from {args.snapshot_dir}",
            flush=True,
        )
    else:
        service = RecoveryService(
            protocol,
            eta=args.eta,
            chunk_users=args.chunk_users,
            retain_reports=args.retain_reports,
        )
    run_server(service, host=args.host, port=args.port, snapshot_store=store)
    return 0


def _cache_command(args: argparse.Namespace) -> int:
    """The ``cache`` subcommand: ls / prune / verify the cell store."""
    cache = resolve_cache(cache_dir=args.cache_dir)
    assert cache is not None  # no_cache is not offered on this subcommand
    if args.action == "ls":
        base = cache.cache_dir if args.all_versions else cache.root
        entries = cache.entries(all_tags=args.all_versions)
        if not entries:
            print(f"(no cached cells under {base})")
            return 0
        print(format_table([e.summary_row() for e in entries], float_format="{:g}"))
        total = sum(e.size_bytes for e in entries)
        print(f"{len(entries)} cells, {total} bytes under {base}")
        return 0
    if args.action == "prune":
        removed = cache.prune(
            older_than_days=args.older_than_days, all_tags=args.all_versions
        )
        print(f"pruned {removed} cached cells from {cache.cache_dir}")
        return 0
    if args.action == "verify":
        problems = cache.verify(delete=args.delete)
        healthy = cache.count() - (0 if args.delete else len(problems))
        if not problems:
            print(f"ok: {healthy} cells verified under {cache.root}")
            return 0
        for path, problem in problems:
            print(f"BAD  {path}: {problem}", file=sys.stderr)
        action = "deleted" if args.delete else "found (rerun with --delete to remove)"
        print(f"{len(problems)} bad entries {action}; {healthy} healthy", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled cache action {args.action!r}")  # pragma: no cover


def _shard_command(args: argparse.Namespace) -> int:
    """The ``shard`` subcommand: run / status / merge a sharded sweep."""
    config = _sweep_config(args)
    cache = resolve_cache(cache_dir=args.cache_dir)
    assert cache is not None  # no_cache is not offered on this subcommand
    if args.action == "run":
        try:
            report = run_shard(
                config,
                cache,
                shard_index=args.shard_index,
                shard_count=args.shard_count,
                claims=args.claims,
                claim_ttl=args.claim_ttl,
                label=args.label,
            )
        except InvalidParameterError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.summary())
        if args.cache_stats:
            print(cache.stats.summary())
        return 0
    if args.action == "status":
        try:
            status = sweep_status(config, cache, claim_ttl=args.claim_ttl)
        except InvalidParameterError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(status.summary())
        for report in status.reports:
            print(f"  {report.summary()}")
        return 0 if status.complete else 1
    if args.action == "merge":
        try:
            rows = merge_sweep(config, cache, require_complete=not args.allow_missing)
        except ShardIncompleteError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except InvalidParameterError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_table(rows))
        if args.cache_stats:
            print(cache.stats.summary())
        if args.output:
            _write_rows(rows, args.output)
        return 0
    raise AssertionError(f"unhandled shard action {args.action!r}")  # pragma: no cover


def _lint_command(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand: run the determinism/cache-contract rules."""
    import pathlib

    from repro.lint import RULES, lint_paths

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.name:28s} {rule.summary}")
        return 0
    paths = args.paths
    if not paths:
        # Default to the working tree's src/repro (plus the tests and
        # benchmarks tiers when present) in a checkout, else the
        # installed package directory.
        src = pathlib.Path("src/repro")
        if src.is_dir():
            paths = [src]
            for tier in (pathlib.Path("tests"), pathlib.Path("benchmarks")):
                if tier.is_dir():
                    paths.append(tier)
        else:
            import repro

            paths = [pathlib.Path(repro.__file__).parent]
    select = None
    if args.select:
        select = [
            part.strip()
            for chunk in args.select
            for part in chunk.split(",")
            if part.strip()
        ]
    try:
        report = lint_paths(
            paths,
            select=select,
            baseline_path=pathlib.Path(args.baseline) if args.baseline else None,
            use_baseline=not args.no_baseline,
            run_contracts=not args.no_contracts,
            changed_only=args.changed_only,
        )
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    output = report.render(args.format)
    if output:
        print(output)
    return report.exit_code


def _write_rows(rows: list[dict[str, object]], path: str) -> None:
    """Persist ``rows`` to ``path`` (.json or .csv, by extension)."""
    from repro.sim.reporting import write_csv, write_json

    writer = write_json if str(path).endswith(".json") else write_csv
    written = writer(rows, path)
    print(f"rows written to {written}")


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the sweep-defining flags shared by ``run`` and ``shard``."""
    parser.add_argument("--figure", "--exhibit", dest="figure", required=True,
                        choices=sorted(_exhibits()),
                        help="paper figure or scenario exhibit to regenerate "
                             "(--exhibit is an alias: scenario sweeps like "
                             "'kv'/'heavyhitter' dispatch identically)")
    parser.add_argument("--dataset", default="ipums", choices=["ipums", "fire"])
    parser.add_argument("--parameter", default="beta", choices=["beta", "epsilon", "eta"],
                        help="swept parameter (fig5/fig6 only)")
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--target-ci", type=float, default=None, dest="target_ci",
                        help="adaptive trial allocation: per cell, keep running "
                             "trial batches until every metric's 95%% CI "
                             "half-width is at or below this target (checked at "
                             "--trials, then every --trial-batch up to "
                             "--max-trials); results are bit-identical to a "
                             "fixed --trials run at the final trial count")
    parser.add_argument("--max-trials", type=int, default=None, dest="max_trials",
                        help="adaptive trial allocation: hard per-cell trial cap "
                             "(default: 10x --trials when --target-ci/"
                             "--trial-batch is set); raising it later tops "
                             "cached cells up from their stored trial blocks")
    parser.add_argument("--trial-batch", type=int, default=None, dest="trial_batch",
                        help="adaptive trial allocation: trials added between "
                             "convergence checks (default: --trials)")
    parser.add_argument("--num-users", type=int, default=None, dest="num_users",
                        help="override population (default: exhibit-specific)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="trial-level process parallelism (0 = all cores "
                             "available to this process); results are "
                             "bit-identical to --workers 1")
    parser.add_argument("--chunk-users", type=int, default=None, dest="chunk_users",
                        help="run fast-mode exhibits through the bounded-memory "
                             "exact simulation, this many users per chunk")
    parser.add_argument("--olh-cohort", type=int, default=None, dest="olh_cohort",
                        help="OLH cells draw hash keys from cohorts of this many "
                             "shared seeds per chunk: report-level aggregation "
                             "drops from O(n*d) to O(K*d + n); changes the report "
                             "distribution, so cohort cells cache separately")
    parser.add_argument("--cache-dir", default=None, dest="cache_dir",
                        help="cell cache directory (default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro-ldprecover); completed cells are "
                             "reused across runs")
    parser.add_argument("--cache-stats", action="store_true", dest="cache_stats",
                        help="print cache hit/miss statistics after the run")


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``ldprecover`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="ldprecover",
        description="LDPRecover (ICDE 2024) reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures/tables")

    run = sub.add_parser("run", help="regenerate one figure/table")
    _add_sweep_arguments(run)
    run.add_argument("--no-cache", action="store_true", dest="no_cache",
                     help="neither read nor write the cell cache")
    run.add_argument("--output", default=None,
                     help="also write the rows to this .csv or .json file")

    shard = sub.add_parser(
        "shard",
        help="split one sweep across machines sharing a cache directory",
    )
    shard.add_argument("action", choices=["run", "status", "merge"],
                       help="run: execute this shard's cells; status: report "
                            "done/claimed/missing cells; merge: render the "
                            "final rows from the fully populated cache")
    _add_sweep_arguments(shard)
    shard.add_argument("--shard-index", type=int, default=None, dest="shard_index",
                       help="static partitioning: this shard's index in "
                            "[0, shard-count)")
    shard.add_argument("--shard-count", type=int, default=None, dest="shard_count",
                       help="static partitioning: total number of shards "
                            "(cells are assigned by canonical-key hash mod N)")
    shard.add_argument("--claims", action="store_true",
                       help="dynamic partitioning: claim cells first-come-"
                            "first-served via atomic .claim files in the "
                            "shared cache dir (work stealing)")
    shard.add_argument("--claim-ttl", type=float, default=DEFAULT_CLAIM_TTL,
                       dest="claim_ttl",
                       help="seconds after which an unreleased claim counts "
                            "as crashed and may be stolen (pick larger than "
                            "the slowest cell)")
    shard.add_argument("--label", default=None,
                       help="shard identity for claims and the status report "
                            "(default: static index or host-pid; in claims "
                            "mode the process identity is appended, so "
                            "duplicate labels still contend correctly)")
    shard.add_argument("--allow-missing", action="store_true", dest="allow_missing",
                       help="merge only: compute missing cells locally instead "
                            "of failing when the cache is incomplete")
    shard.add_argument("--output", default=None,
                       help="merge only: also write the rows to this .csv or "
                            ".json file")

    demo = sub.add_parser("demo", help="one verbose poisoning+recovery round")
    demo.add_argument("--protocol", default="grr", choices=["grr", "oue", "olh"])
    demo.add_argument("--dataset", default="ipums", choices=["ipums", "fire"])
    demo.add_argument("--epsilon", type=float, default=0.5)
    demo.add_argument("--beta", type=float, default=0.05)
    demo.add_argument("--num-users", type=int, default=None, dest="num_users")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--chunk-users", type=int, default=None, dest="chunk_users",
                     help="simulate the round report-exactly in chunks of this size")

    serve = sub.add_parser(
        "serve",
        help="boot the online LDP recovery service (repro.serve)",
    )
    serve.add_argument("--protocol", default="grr",
                       choices=["grr", "oue", "olh", "sue", "blh"],
                       help="frequency oracle the clients perturb with")
    serve.add_argument("--epsilon", type=float, default=1.0,
                       help="privacy budget of the served protocol")
    serve.add_argument("--domain-size", type=int, default=128, dest="domain_size",
                       help="item domain size d")
    serve.add_argument("--eta", type=float, default=0.2,
                       help="LDPRecover frequency-sum tuning parameter")
    serve.add_argument("--olh-cohort", type=int, default=None, dest="olh_cohort",
                       help="OLH/BLH only: draw hash keys from cohorts of this "
                            "many shared seeds per ingest batch (enables the "
                            "grouped O(K*d + n) aggregation path)")
    serve.add_argument("--chunk-users", type=int, default=None, dest="chunk_users",
                       help="reports folded per slice during ingest (bounds "
                            "transient memory; cannot change results)")
    serve.add_argument("--retain-reports", action="store_true", dest="retain_reports",
                       help="keep raw reports in memory so the detection view "
                            "is available (O(total reports) memory)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 binds an ephemeral port, announced "
                            "on stdout as 'serving on http://HOST:PORT'")
    serve.add_argument("--snapshot-dir", default=None, dest="snapshot_dir",
                       help="directory for POST /snapshot persistence "
                            "(atomic-replace JSON files)")
    serve.add_argument("--resume", action="store_true",
                       help="restore the latest snapshot from --snapshot-dir "
                            "before serving (never double-counts: snapshots "
                            "hold folded partial sums, not batches)")

    lint = sub.add_parser(
        "lint",
        help="run the determinism & cache-contract analyzer (repro.lint)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories to scan (default: src/repro in a "
                           "checkout, else the installed repro package)")
    lint.add_argument("--format", default="text",
                      choices=["text", "github", "sarif"],
                      help="text: path:line:col lines for humans; github: "
                           "::error workflow annotations for CI; sarif: "
                           "a SARIF 2.1.0 log for code-scanning upload")
    lint.add_argument("--changed-only", default=None, metavar="REF",
                      dest="changed_only",
                      help="only report findings in files changed since the "
                           "given git ref (plus untracked files); analysis "
                           "still spans the full tree so cross-module flow "
                           "rules see every alias")
    lint.add_argument("--select", action="append", default=None, metavar="RULES",
                      help="comma-separated rule ids to run (default: all); "
                           "may repeat")
    lint.add_argument("--baseline", default=None,
                      help="baseline file of accepted findings (default: "
                           ".repro-lint-baseline.json if present)")
    lint.add_argument("--no-baseline", action="store_true", dest="no_baseline",
                      help="report findings the baseline would absorb")
    lint.add_argument("--no-contracts", action="store_true", dest="no_contracts",
                      help="skip the runtime fingerprint-coverage scan "
                           "(REP003's live half)")
    lint.add_argument("--list-rules", action="store_true", dest="list_rules",
                      help="print the registered rule catalog and exit")

    cache = sub.add_parser("cache", help="inspect or clean the cell cache")
    cache.add_argument("action", choices=["ls", "prune", "verify"],
                       help="ls: list cached cells; prune: delete cells; "
                            "verify: integrity-check every entry")
    cache.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="cell cache directory (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-ldprecover)")
    cache.add_argument("--older-than-days", type=float, default=None,
                       dest="older_than_days",
                       help="prune only: keep cells younger than this horizon")
    cache.add_argument("--all-versions", action="store_true", dest="all_versions",
                       help="extend ls/prune to entries of other cache/package "
                            "versions")
    cache.add_argument("--delete", action="store_true",
                       help="verify only: delete entries that fail the check")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        descriptions = _descriptions()
        for name in sorted(_exhibits()):
            print(f"{name:12s} {descriptions.get(name, '(registered scenario)')}")
        return 0
    if args.command == "demo":
        return _demo(args)
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "cache":
        return _cache_command(args)
    if args.command == "lint":
        return _lint_command(args)
    if args.chunk_users is not None and args.figure in _chunkless():
        print(
            f"note: --chunk-users is ignored for {args.figure} "
            f"(this exhibit never runs the chunked report-level simulation)",
            file=sys.stderr,
        )
    if args.command == "shard":
        return _shard_command(args)
    cache = resolve_cache(cache_dir=args.cache_dir, no_cache=args.no_cache)
    rows = _sweep_config(args).run(cache)
    print(format_table(rows))
    if cache is not None and args.cache_stats:
        print(cache.stats.summary())
    if args.output:
        _write_rows(rows, args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
