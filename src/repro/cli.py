"""Command-line interface: regenerate any of the paper's exhibits.

Examples::

    ldprecover list
    ldprecover run --figure fig3 --dataset ipums --workers 4
    ldprecover run --figure fig5 --parameter beta --workers 0
    ldprecover run --figure fig7 --chunk-users 200000
    ldprecover run --figure fig7 --chunk-users 200000 --olh-cohort 256
    ldprecover run --figure table1 --trials 3 --cache-stats
    ldprecover run --figure fig6 --no-cache
    ldprecover demo --protocol oue --beta 0.1
    ldprecover cache ls
    ldprecover cache verify
    ldprecover cache prune --older-than-days 30

Completed experiment cells are cached on disk (see
:mod:`repro.sim.cache`) under ``--cache-dir`` — by default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-ldprecover`` — so interrupted
sweeps resume from where they stopped and warm reruns cost zero
simulation time.  ``--no-cache`` bypasses the store, ``--cache-stats``
prints the hit/miss summary after a run, and the ``cache`` subcommand
inspects (``ls``), garbage-collects (``prune``) and integrity-checks
(``verify``) the store.

The same functions back the ``benchmarks/`` suite; the CLI simply prints
the row tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from repro.sim import figures
from repro.sim.cache import CellCache, resolve_cache
from repro.sim.experiment import format_table

_FigureFn = Callable[..., list[dict[str, object]]]


def _run_fig3(args: argparse.Namespace, cache: Optional[CellCache]) -> list[dict[str, object]]:
    return figures.figure3_rows(
        dataset_name=args.dataset,
        num_users=args.num_users,
        trials=args.trials,
        rng=args.seed,
        workers=args.workers,
        olh_cohort=args.olh_cohort,
        cache=cache,
    )


def _run_fig4(args: argparse.Namespace, cache: Optional[CellCache]) -> list[dict[str, object]]:
    return figures.figure4_rows(
        dataset_name=args.dataset,
        num_users=args.num_users,
        trials=args.trials,
        rng=args.seed,
        workers=args.workers,
        olh_cohort=args.olh_cohort,
        cache=cache,
    )


def _run_sweep(args: argparse.Namespace, cache: Optional[CellCache]) -> list[dict[str, object]]:
    dataset = {"fig5": "ipums", "fig6": "fire"}[args.figure]
    return figures.sweep_rows(
        dataset_name=dataset,
        parameter=args.parameter,
        num_users=args.num_users,
        trials=args.trials,
        rng=args.seed,
        workers=args.workers,
        chunk_users=args.chunk_users,
        olh_cohort=args.olh_cohort,
        cache=cache,
    )


def _run_fig7(args: argparse.Namespace, cache: Optional[CellCache]) -> list[dict[str, object]]:
    return figures.figure7_rows(
        num_users=args.num_users, trials=args.trials, rng=args.seed,
        workers=args.workers, chunk_users=args.chunk_users,
        olh_cohort=args.olh_cohort, cache=cache,
    )


def _run_fig8(args: argparse.Namespace, cache: Optional[CellCache]) -> list[dict[str, object]]:
    return figures.figure8_rows(
        num_users=args.num_users, trials=args.trials, rng=args.seed,
        workers=args.workers, chunk_users=args.chunk_users,
        olh_cohort=args.olh_cohort, cache=cache,
    )


def _run_fig9(args: argparse.Namespace, cache: Optional[CellCache]) -> list[dict[str, object]]:
    return figures.figure9_rows(
        num_users=args.num_users, trials=args.trials, rng=args.seed,
        workers=args.workers, olh_cohort=args.olh_cohort, cache=cache,
    )


def _run_fig10(args: argparse.Namespace, cache: Optional[CellCache]) -> list[dict[str, object]]:
    return figures.figure10_rows(
        num_users=args.num_users, trials=args.trials, rng=args.seed,
        workers=args.workers, chunk_users=args.chunk_users,
        olh_cohort=args.olh_cohort, cache=cache,
    )


def _run_table1(args: argparse.Namespace, cache: Optional[CellCache]) -> list[dict[str, object]]:
    return figures.table1_rows(
        num_users=args.num_users, trials=args.trials, rng=args.seed,
        workers=args.workers, chunk_users=args.chunk_users,
        olh_cohort=args.olh_cohort, cache=cache,
    )


_FIGURES: dict[str, Callable[[argparse.Namespace, Optional[CellCache]], list[dict[str, object]]]] = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_sweep,
    "fig6": _run_sweep,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "table1": _run_table1,
}

_DESCRIPTIONS = {
    "fig3": "MSE of LDPRecover / LDPRecover* / Detection per attack-protocol cell",
    "fig4": "frequency gain of MGA before/after recovery",
    "fig5": "parameter sweeps (beta / epsilon / eta) under AA on IPUMS",
    "fig6": "parameter sweeps (beta / epsilon / eta) under AA on Fire",
    "fig7": "MSE of estimated vs true malicious frequencies",
    "fig8": "MGA vs MGA-IPA poisoning strength",
    "fig9": "LDPRecover-KM vs plain k-means under MGA-IPA",
    "fig10": "multi-attacker adaptive attacks",
    "table1": "LDPRecover on unpoisoned frequencies",
}


def _demo(args: argparse.Namespace) -> int:
    """Single end-to-end poisoning + recovery round, verbosely."""
    import repro

    data = figures.load_dataset(args.dataset, args.num_users or 50_000)
    protocol = repro.make_protocol(args.protocol, epsilon=args.epsilon, domain_size=data.domain_size)
    attack = repro.MGAAttack(domain_size=data.domain_size, r=10, rng=args.seed)
    mode = "chunked" if args.chunk_users is not None else "fast"
    trial = repro.run_trial(
        data, protocol, attack, beta=args.beta, mode=mode, rng=args.seed,
        chunk_users=args.chunk_users,
    )
    recovery = repro.recover_frequencies(trial.poisoned_frequencies, protocol)
    star = repro.recover_frequencies(
        trial.poisoned_frequencies, protocol, target_items=attack.target_items
    )
    print(f"dataset={data.name} protocol={protocol.name} beta={args.beta} m={trial.m}")
    print(f"MSE before recovery     : {repro.mse(trial.true_frequencies, trial.poisoned_frequencies):.3e}")
    print(f"MSE after LDPRecover    : {repro.mse(trial.true_frequencies, recovery.frequencies):.3e}")
    print(f"MSE after LDPRecover*   : {repro.mse(trial.true_frequencies, star.frequencies):.3e}")
    fg = repro.frequency_gain(trial.genuine_frequencies, trial.poisoned_frequencies, attack.target_items)
    fg_rec = repro.frequency_gain(trial.genuine_frequencies, recovery.frequencies, attack.target_items)
    print(f"frequency gain          : {fg:+.3f} -> {fg_rec:+.3f} after recovery")
    return 0


def _cache_command(args: argparse.Namespace) -> int:
    """The ``cache`` subcommand: ls / prune / verify the cell store."""
    cache = resolve_cache(cache_dir=args.cache_dir)
    assert cache is not None  # no_cache is not offered on this subcommand
    if args.action == "ls":
        base = cache.cache_dir if args.all_versions else cache.root
        entries = cache.entries(all_tags=args.all_versions)
        if not entries:
            print(f"(no cached cells under {base})")
            return 0
        print(format_table([e.summary_row() for e in entries], float_format="{:g}"))
        total = sum(e.size_bytes for e in entries)
        print(f"{len(entries)} cells, {total} bytes under {base}")
        return 0
    if args.action == "prune":
        removed = cache.prune(
            older_than_days=args.older_than_days, all_tags=args.all_versions
        )
        print(f"pruned {removed} cached cells from {cache.cache_dir}")
        return 0
    if args.action == "verify":
        problems = cache.verify(delete=args.delete)
        healthy = cache.count() - (0 if args.delete else len(problems))
        if not problems:
            print(f"ok: {healthy} cells verified under {cache.root}")
            return 0
        for path, problem in problems:
            print(f"BAD  {path}: {problem}", file=sys.stderr)
        action = "deleted" if args.delete else "found (rerun with --delete to remove)"
        print(f"{len(problems)} bad entries {action}; {healthy} healthy", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled cache action {args.action!r}")  # pragma: no cover


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``ldprecover`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="ldprecover",
        description="LDPRecover (ICDE 2024) reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures/tables")

    run = sub.add_parser("run", help="regenerate one figure/table")
    run.add_argument("--figure", required=True, choices=sorted(_FIGURES))
    run.add_argument("--dataset", default="ipums", choices=["ipums", "fire"])
    run.add_argument("--parameter", default="beta", choices=["beta", "epsilon", "eta"],
                     help="swept parameter (fig5/fig6 only)")
    run.add_argument("--trials", type=int, default=5)
    run.add_argument("--num-users", type=int, default=None, dest="num_users",
                     help="override population (default: exhibit-specific)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--workers", type=int, default=1,
                     help="trial-level process parallelism (0 = all cores); "
                          "results are bit-identical to --workers 1")
    run.add_argument("--chunk-users", type=int, default=None, dest="chunk_users",
                     help="run fast-mode exhibits through the bounded-memory "
                          "exact simulation, this many users per chunk")
    run.add_argument("--olh-cohort", type=int, default=None, dest="olh_cohort",
                     help="OLH cells draw hash keys from cohorts of this many "
                          "shared seeds per chunk: report-level aggregation "
                          "drops from O(n*d) to O(K*d + n); changes the report "
                          "distribution, so cohort cells cache separately")
    run.add_argument("--cache-dir", default=None, dest="cache_dir",
                     help="cell cache directory (default: $REPRO_CACHE_DIR or "
                          "~/.cache/repro-ldprecover); completed cells are "
                          "reused across runs")
    run.add_argument("--no-cache", action="store_true", dest="no_cache",
                     help="neither read nor write the cell cache")
    run.add_argument("--cache-stats", action="store_true", dest="cache_stats",
                     help="print cache hit/miss statistics after the run")
    run.add_argument("--output", default=None,
                     help="also write the rows to this .csv or .json file")

    demo = sub.add_parser("demo", help="one verbose poisoning+recovery round")
    demo.add_argument("--protocol", default="grr", choices=["grr", "oue", "olh"])
    demo.add_argument("--dataset", default="ipums", choices=["ipums", "fire"])
    demo.add_argument("--epsilon", type=float, default=0.5)
    demo.add_argument("--beta", type=float, default=0.05)
    demo.add_argument("--num-users", type=int, default=None, dest="num_users")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--chunk-users", type=int, default=None, dest="chunk_users",
                     help="simulate the round report-exactly in chunks of this size")

    cache = sub.add_parser("cache", help="inspect or clean the cell cache")
    cache.add_argument("action", choices=["ls", "prune", "verify"],
                       help="ls: list cached cells; prune: delete cells; "
                            "verify: integrity-check every entry")
    cache.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="cell cache directory (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-ldprecover)")
    cache.add_argument("--older-than-days", type=float, default=None,
                       dest="older_than_days",
                       help="prune only: keep cells younger than this horizon")
    cache.add_argument("--all-versions", action="store_true", dest="all_versions",
                       help="extend ls/prune to entries of other cache/package "
                            "versions")
    cache.add_argument("--delete", action="store_true",
                       help="verify only: delete entries that fail the check")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(_FIGURES):
            print(f"{name:8s} {_DESCRIPTIONS[name]}")
        return 0
    if args.command == "demo":
        return _demo(args)
    if args.command == "cache":
        return _cache_command(args)
    if args.chunk_users is not None and args.figure in ("fig3", "fig4", "fig9"):
        print(
            f"note: --chunk-users is ignored for {args.figure} "
            f"(report-level defenses need materialized reports)",
            file=sys.stderr,
        )
    cache = resolve_cache(cache_dir=args.cache_dir, no_cache=args.no_cache)
    rows = _FIGURES[args.figure](args, cache)
    print(format_table(rows))
    if cache is not None and args.cache_stats:
        print(cache.stats.summary())
    if args.output:
        from repro.sim.reporting import write_csv, write_json

        path = args.output
        writer = write_json if str(path).endswith(".json") else write_csv
        written = writer(rows, path)
        print(f"rows written to {written}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
