"""Random number generation helpers.

The whole library accepts ``rng`` arguments that may be ``None`` (use a
fresh non-deterministic generator), an ``int`` seed, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three
so that every stochastic entry point is reproducible when the caller wants
it to be.

Child streams are derived through :class:`numpy.random.SeedSequence`
spawning (:func:`spawn_sequences` / :func:`spawn`), the only construction
numpy guarantees to produce statistically independent, collision-free
streams.  This matters doubly for the parallel experiment engine
(:mod:`repro.sim.engine`): a :class:`~numpy.random.SeedSequence` is small
and picklable, so per-trial children can be shipped to worker processes
while the serial path builds identical generators from the same sequences.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a fresh OS-seeded generator, an integer seed, or an
        existing generator (returned unchanged so that state is shared).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int or numpy Generator, got {type(rng)!r}")


def spawn_sequences(rng: RngLike, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child :class:`~numpy.random.SeedSequence`.

    The parent sequence is resolved as follows:

    * ``int`` seed / ``None`` — the seed sequence of the generator
      :func:`as_generator` would build (``SeedSequence(seed)`` / a fresh
      OS-entropy sequence);
    * existing :class:`~numpy.random.Generator` — the generator's own
      ``bit_generator.seed_seq``, so repeated calls keep yielding fresh,
      non-overlapping children (numpy's spawn counter advances);
    * generators whose bit generator carries no seed sequence fall back to
      a sequence derived from entropy drawn off the generator's stream.

    Children are genuine ``SeedSequence.spawn`` descendants, which is what
    rules out stream overlap/collision across children — unlike drawing raw
    integer seeds from the parent stream.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    parent = as_generator(rng)
    seq = getattr(parent.bit_generator, "seed_seq", None)
    if not isinstance(seq, np.random.SeedSequence):
        entropy = [int(x) for x in parent.integers(0, 2**63 - 1, size=4, dtype=np.int64)]
        seq = np.random.SeedSequence(entropy)
    return list(seq.spawn(n))


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning
    (see :func:`spawn_sequences`) so that parallel consumers never share
    streams.
    """
    return [np.random.default_rng(seq) for seq in spawn_sequences(rng, n)]


def derive_seed(rng: RngLike) -> int:
    """Derive a single 63-bit seed from ``rng`` (for child processes/logs).

    The seed is the first state word of a spawned child sequence, so it is
    derived through the same ``SeedSequence`` machinery as :func:`spawn`.
    Note the consumer re-keys from a raw integer, which numpy does not
    guarantee disjoint from spawned descendants — treat the resulting
    stream as statistically independent, not provably non-overlapping;
    prefer passing :func:`spawn_sequences` children where possible.
    """
    [seq] = spawn_sequences(rng, 1)
    return int(seq.generate_state(1, np.uint64)[0] >> np.uint64(1))
