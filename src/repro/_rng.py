"""Random number generation helpers.

The whole library accepts ``rng`` arguments that may be ``None`` (use a
fresh non-deterministic generator), an ``int`` seed, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three
so that every stochastic entry point is reproducible when the caller wants
it to be.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a fresh OS-seeded generator, an integer seed, or an
        existing generator (returned unchanged so that state is shared).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int or numpy Generator, got {type(rng)!r}")


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning
    so that parallel consumers never share streams.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: RngLike) -> int:
    """Draw a single 63-bit seed from ``rng`` (for child processes/logs)."""
    return int(as_generator(rng).integers(0, 2**63 - 1, dtype=np.int64))
