"""Simulation: the poisoning pipeline, metrics and experiment harness."""

from repro.sim.cache import (
    CacheEntry,
    CacheStats,
    CellCache,
    canonical_key,
    default_cache_dir,
    evaluation_cell_spec,
    resolve_cache,
    row_cell_spec,
)
from repro.sim.engine import (
    DEFAULT_CHUNK_USERS,
    TASK_COUNTER,
    CallCounter,
    MetricStats,
    TrialTask,
    Welford,
    chunked_genuine_counts,
    chunked_malicious_counts,
    chunked_support_counts,
    parallel_map,
    run_chunked_trial,
    trial_metrics,
)
from repro.sim.experiment import (
    RecoveryEvaluation,
    SweepResult,
    evaluate_recovery,
    format_table,
    resolve_star_targets,
    sweep_parameter,
)
from repro.sim.history import History, simulate_history
from repro.sim.metrics import frequency_gain, l1_distance, max_abs_error, mse
from repro.sim.outliers import ZScoreOutlierDetector, top_increase_items
from repro.sim.pipeline import TrialResult, malicious_count, run_trial
from repro.sim.reporting import read_rows, write_csv, write_json

__all__ = [
    "run_trial",
    "TrialResult",
    "malicious_count",
    "CacheEntry",
    "CacheStats",
    "CellCache",
    "CallCounter",
    "TASK_COUNTER",
    "canonical_key",
    "default_cache_dir",
    "evaluation_cell_spec",
    "resolve_cache",
    "row_cell_spec",
    "DEFAULT_CHUNK_USERS",
    "MetricStats",
    "TrialTask",
    "Welford",
    "chunked_genuine_counts",
    "chunked_malicious_counts",
    "chunked_support_counts",
    "parallel_map",
    "run_chunked_trial",
    "trial_metrics",
    "mse",
    "l1_distance",
    "max_abs_error",
    "frequency_gain",
    "top_increase_items",
    "ZScoreOutlierDetector",
    "evaluate_recovery",
    "RecoveryEvaluation",
    "sweep_parameter",
    "SweepResult",
    "resolve_star_targets",
    "format_table",
    "simulate_history",
    "History",
    "write_csv",
    "write_json",
    "read_rows",
]
