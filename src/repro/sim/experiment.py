"""Experiment harness: multi-trial recovery evaluation and sweeps.

This is the layer the benchmarks and CLI sit on.  One call to
:func:`evaluate_recovery` reproduces one cell of the paper's figures:
it runs ``trials`` independent poisoning rounds, applies every recovery
method under evaluation (before-recovery, LDPRecover, LDPRecover*,
Detection) and averages the metrics — exactly the paper's protocol of
averaging MSE/FG over 10 trials (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro._rng import RngLike, spawn
from repro.attacks.base import PoisoningAttack
from repro.core.detection import detect_and_aggregate
from repro.core.recover import recover_frequencies
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle
from repro.sim.metrics import frequency_gain, mse
from repro.sim.outliers import top_increase_items
from repro.sim.pipeline import SimulationMode, TrialResult, run_trial


def _mean(values: list[float]) -> Optional[float]:
    return float(np.mean(values)) if values else None


@dataclass
class RecoveryEvaluation:
    """Averaged metrics of one experimental cell (one figure bar/point)."""

    dataset: str
    protocol: str
    attack: str
    beta: float
    eta: float
    trials: int
    #: MSE vs. the true frequencies (Eq. 36), averaged over trials.
    mse_before: float = 0.0
    mse_recover: float = 0.0
    mse_recover_star: Optional[float] = None
    mse_detection: Optional[float] = None
    #: Frequency gain of the target items (Eq. 37 convention; targeted only).
    fg_before: Optional[float] = None
    fg_recover: Optional[float] = None
    fg_recover_star: Optional[float] = None
    fg_detection: Optional[float] = None
    #: MSE of the estimated vs. true malicious frequencies (Figure 7).
    mse_malicious_estimate: Optional[float] = None
    mse_malicious_estimate_star: Optional[float] = None

    def as_row(self) -> dict[str, object]:
        """Flat dict for table printing / CSV dumps."""
        return {
            "dataset": self.dataset,
            "protocol": self.protocol,
            "attack": self.attack,
            "beta": self.beta,
            "eta": self.eta,
            "mse_before": self.mse_before,
            "mse_recover": self.mse_recover,
            "mse_recover_star": self.mse_recover_star,
            "mse_detection": self.mse_detection,
            "fg_before": self.fg_before,
            "fg_recover": self.fg_recover,
            "fg_recover_star": self.fg_recover_star,
            "fg_detection": self.fg_detection,
        }


def resolve_star_targets(
    attack: PoisoningAttack, trial: TrialResult, aa_top_k: int
) -> Optional[np.ndarray]:
    """The attacker-selected items LDPRecover* assumes (Section VI-A4).

    MGA (and any targeted attack): the explicit target items.  AA: the
    top-``aa_top_k`` items by frequency increase relative to the server's
    historical estimate (we use the genuine aggregate as the history
    stand-in).  Untargeted Manip: the same top-increase rule applies, since
    the server cannot distinguish attack types a priori.
    """
    explicit = attack.target_items
    if explicit is not None:
        return explicit
    if trial.genuine_frequencies is None:
        return None
    k = min(aa_top_k, trial.true_frequencies.size)
    return top_increase_items(trial.genuine_frequencies, trial.poisoned_frequencies, k)


def evaluate_recovery(
    dataset: Dataset,
    protocol: FrequencyOracle,
    attack: Optional[PoisoningAttack],
    beta: float = 0.05,
    eta: float = 0.2,
    trials: int = 10,
    mode: SimulationMode = "fast",
    with_star: bool = True,
    with_detection: bool = False,
    aa_top_k: int = 5,
    rng: RngLike = None,
) -> RecoveryEvaluation:
    """Run one experimental cell and average over ``trials``.

    ``with_detection`` requires ``mode="sampled"`` because the Detection
    baseline filters individual reports.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    if with_detection and mode != "sampled":
        raise InvalidParameterError("Detection requires mode='sampled'")
    rngs = spawn(rng, trials)

    mse_before: list[float] = []
    mse_rec: list[float] = []
    mse_star: list[float] = []
    mse_det: list[float] = []
    fg_before: list[float] = []
    fg_rec: list[float] = []
    fg_star: list[float] = []
    fg_det: list[float] = []
    mal_mse: list[float] = []
    mal_mse_star: list[float] = []

    for trial_rng in rngs:
        trial = run_trial(dataset, protocol, attack, beta=beta, mode=mode, rng=trial_rng)
        truth = trial.true_frequencies
        mse_before.append(mse(truth, trial.poisoned_frequencies))

        recovery = recover_frequencies(trial.poisoned_frequencies, protocol, eta=eta)
        mse_rec.append(mse(truth, recovery.frequencies))
        if trial.malicious_frequencies is not None:
            mal_mse.append(mse(trial.malicious_frequencies, recovery.malicious.frequencies))

        star_targets = None
        if attack is not None and with_star:
            star_targets = resolve_star_targets(attack, trial, aa_top_k)
        if star_targets is not None and star_targets.size:
            star = recover_frequencies(
                trial.poisoned_frequencies, protocol, eta=eta, target_items=star_targets
            )
            mse_star.append(mse(truth, star.frequencies))
            if trial.malicious_frequencies is not None:
                mal_mse_star.append(
                    mse(trial.malicious_frequencies, star.malicious.frequencies)
                )
        else:
            star = None

        detection_freq = None
        if with_detection and star_targets is not None and star_targets.size:
            detection = detect_and_aggregate(protocol, trial.reports, star_targets)
            detection_freq = detection.frequencies
            mse_det.append(mse(truth, detection_freq))

        measured_targets = attack.target_items if attack is not None else None
        if measured_targets is not None and measured_targets.size:
            genuine = trial.genuine_frequencies
            fg_before.append(
                frequency_gain(genuine, trial.poisoned_frequencies, measured_targets)
            )
            fg_rec.append(frequency_gain(genuine, recovery.frequencies, measured_targets))
            if star is not None:
                fg_star.append(frequency_gain(genuine, star.frequencies, measured_targets))
            if detection_freq is not None:
                fg_det.append(frequency_gain(genuine, detection_freq, measured_targets))

    return RecoveryEvaluation(
        dataset=dataset.name,
        protocol=protocol.name,
        attack=attack.describe() if attack is not None else "none",
        beta=beta,
        eta=eta,
        trials=trials,
        mse_before=_mean(mse_before) or 0.0,
        mse_recover=_mean(mse_rec) or 0.0,
        mse_recover_star=_mean(mse_star),
        mse_detection=_mean(mse_det),
        fg_before=_mean(fg_before),
        fg_recover=_mean(fg_rec),
        fg_recover_star=_mean(fg_star),
        fg_detection=_mean(fg_det),
        mse_malicious_estimate=_mean(mal_mse),
        mse_malicious_estimate_star=_mean(mal_mse_star),
    )


@dataclass
class SweepResult:
    """One varied parameter value and its evaluation."""

    parameter: str
    value: float
    evaluation: RecoveryEvaluation


def sweep_parameter(
    parameter: str,
    values: Iterable[float],
    evaluate: Callable[[float, RngLike], RecoveryEvaluation],
    rng: RngLike = None,
) -> list[SweepResult]:
    """Evaluate over a parameter grid with independent child RNGs.

    ``evaluate(value, rng)`` builds and runs one cell; Figures 5-6's
    beta/epsilon/eta sweeps are thin closures over
    :func:`evaluate_recovery`.
    """
    values = list(values)
    rngs = spawn(rng, len(values))
    return [
        SweepResult(parameter=parameter, value=float(v), evaluation=evaluate(v, child))
        for v, child in zip(values, rngs)
    ]


def format_table(rows: Sequence[dict[str, object]], float_format: str = "{:.3e}") -> str:
    """Render rows as an aligned text table (the benches' output format)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col)
            if value is None:
                cells.append("-")
            elif isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    divider = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rendered)
    return f"{header}\n{divider}\n{body}"
