"""Experiment harness: multi-trial recovery evaluation and sweeps.

This is the layer the benchmarks and CLI sit on.  One call to
:func:`evaluate_recovery` reproduces one cell of the paper's figures:
it runs ``trials`` independent poisoning rounds, applies every recovery
method under evaluation (before-recovery, LDPRecover, LDPRecover*,
Detection) and averages the metrics — exactly the paper's protocol of
averaging MSE/FG over 10 trials (Section VI-B).

Execution is delegated to :mod:`repro.sim.engine`: trials become picklable
:class:`~repro.sim.engine.TrialTask` units with ``SeedSequence``-spawned
child streams, run inline (``workers=1``) or across a fork-safe process
pool (``workers=N``) with bit-identical results, and metrics accumulate
through streaming :class:`~repro.sim.engine.Welford` statistics so every
cell also carries variance/CI information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro._rng import RngLike, spawn, spawn_sequences
from repro.attacks.base import PoisoningAttack
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle
from repro.sim.engine import (
    MetricStats,
    TrialTask,
    aggregate_metrics,
    parallel_map,
    resolve_star_targets,
    trial_metrics,
)
from repro.sim.pipeline import SimulationMode, malicious_count

__all__ = [
    "RecoveryEvaluation",
    "SweepResult",
    "evaluate_recovery",
    "format_table",
    "resolve_star_targets",
    "sweep_parameter",
]


@dataclass
class RecoveryEvaluation:
    """Averaged metrics of one experimental cell (one figure bar/point)."""

    dataset: str
    protocol: str
    attack: str
    beta: float
    eta: float
    trials: int
    #: MSE vs. the true frequencies (Eq. 36), averaged over trials.
    mse_before: float = 0.0
    mse_recover: float = 0.0
    mse_recover_star: Optional[float] = None
    mse_detection: Optional[float] = None
    #: Frequency gain of the target items (Eq. 37 convention; targeted only).
    fg_before: Optional[float] = None
    fg_recover: Optional[float] = None
    fg_recover_star: Optional[float] = None
    fg_detection: Optional[float] = None
    #: MSE of the estimated vs. true malicious frequencies (Figure 7).
    mse_malicious_estimate: Optional[float] = None
    mse_malicious_estimate_star: Optional[float] = None
    #: Streaming per-metric statistics (mean/variance/stderr/count) keyed by
    #: metric name, for confidence intervals over the trial average.
    stats: dict[str, MetricStats] = field(default_factory=dict)

    def ci95(self, metric: str) -> Optional[float]:
        """95% CI half-width of a metric's trial average, if estimable."""
        entry = self.stats.get(metric)
        return entry.ci95_halfwidth if entry is not None else None

    def as_row(self) -> dict[str, object]:
        """Flat dict for table printing / CSV dumps (every metric column)."""
        return {
            "dataset": self.dataset,
            "protocol": self.protocol,
            "attack": self.attack,
            "beta": self.beta,
            "eta": self.eta,
            "trials": self.trials,
            "mse_before": self.mse_before,
            "mse_recover": self.mse_recover,
            "mse_recover_star": self.mse_recover_star,
            "mse_detection": self.mse_detection,
            "fg_before": self.fg_before,
            "fg_recover": self.fg_recover,
            "fg_recover_star": self.fg_recover_star,
            "fg_detection": self.fg_detection,
            "mse_malicious_estimate": self.mse_malicious_estimate,
            "mse_malicious_estimate_star": self.mse_malicious_estimate_star,
        }


def evaluate_recovery(
    dataset: Dataset,
    protocol: FrequencyOracle,
    attack: Optional[PoisoningAttack],
    beta: float = 0.05,
    eta: float = 0.2,
    trials: int = 10,
    mode: SimulationMode = "fast",
    with_star: bool = True,
    with_detection: bool = False,
    aa_top_k: int = 5,
    rng: RngLike = None,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    strict_beta: bool = False,
) -> RecoveryEvaluation:
    """Run one experimental cell and average over ``trials``.

    ``with_detection`` requires ``mode="sampled"`` because the Detection
    baseline filters individual reports.  ``workers`` fans trials out over
    a process pool (``None``/``0`` = all cores) with results bit-identical
    to the serial ``workers=1`` path under the same seed.  Passing
    ``chunk_users`` selects the bounded-memory exact simulation (it
    upgrades ``mode="fast"`` to ``"chunked"``); ``strict_beta`` turns the
    "beta rounds to zero malicious users" warning into an error.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    if with_detection and mode != "sampled":
        raise InvalidParameterError("Detection requires mode='sampled'")
    if chunk_users is not None and mode == "fast":
        mode = "chunked"
    if chunk_users is not None and mode == "sampled":
        raise InvalidParameterError(
            "chunk_users is incompatible with mode='sampled' (chunked simulation "
            "does not retain reports); use mode='chunked' without detection"
        )
    if attack is not None:
        # Surface the m=0 rounding problem at the cell level — under
        # strict_beta this fails fast before any worker spawns, and the
        # warning fires here even when pooled workers' stderr is lost.
        # (Trials may re-warn from run_trial in their own processes.)
        malicious_count(dataset.num_users, beta, strict=strict_beta)

    tasks = [
        TrialTask(
            dataset=dataset,
            protocol=protocol,
            attack=attack,
            seed=seed,
            beta=beta,
            eta=eta,
            mode=mode,
            with_star=with_star,
            with_detection=with_detection,
            aa_top_k=aa_top_k,
            chunk_users=chunk_users,
        )
        for seed in spawn_sequences(rng, trials)
    ]
    stats = aggregate_metrics(parallel_map(trial_metrics, tasks, workers=workers))

    def _mean(metric: str) -> Optional[float]:
        entry = stats.get(metric)
        return entry.mean if entry is not None else None

    return RecoveryEvaluation(
        dataset=dataset.name,
        protocol=protocol.name,
        attack=attack.describe() if attack is not None else "none",
        beta=beta,
        eta=eta,
        trials=trials,
        mse_before=_mean("mse_before") or 0.0,
        mse_recover=_mean("mse_recover") or 0.0,
        mse_recover_star=_mean("mse_recover_star"),
        mse_detection=_mean("mse_detection"),
        fg_before=_mean("fg_before"),
        fg_recover=_mean("fg_recover"),
        fg_recover_star=_mean("fg_recover_star"),
        fg_detection=_mean("fg_detection"),
        mse_malicious_estimate=_mean("mse_malicious_estimate"),
        mse_malicious_estimate_star=_mean("mse_malicious_estimate_star"),
        stats=stats,
    )


@dataclass
class SweepResult:
    """One varied parameter value and its evaluation."""

    parameter: str
    value: float
    evaluation: RecoveryEvaluation


def sweep_parameter(
    parameter: str,
    values: Iterable[float],
    evaluate: Callable[[float, RngLike], RecoveryEvaluation],
    rng: RngLike = None,
) -> list[SweepResult]:
    """Evaluate over a parameter grid with independent child RNGs.

    ``evaluate(value, rng)`` builds and runs one cell; Figures 5-6's
    beta/epsilon/eta sweeps are thin closures over
    :func:`evaluate_recovery`.
    """
    values = list(values)
    rngs = spawn(rng, len(values))
    return [
        SweepResult(parameter=parameter, value=float(v), evaluation=evaluate(v, child))
        for v, child in zip(values, rngs)
    ]


def format_table(rows: Sequence[dict[str, object]], float_format: str = "{:.3e}") -> str:
    """Render rows as an aligned text table (the benches' output format)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col)
            if value is None:
                cells.append("-")
            elif isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    divider = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rendered)
    return f"{header}\n{divider}\n{body}"
